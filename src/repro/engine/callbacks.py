"""Event-based callbacks for the training engine.

The :class:`~repro.engine.trainer.Trainer` emits a fixed set of events —
``on_fit_start`` / ``on_epoch_start`` / ``on_batch_end`` /
``on_backward_end`` / ``on_epoch_end`` / ``on_fit_end`` — and every
cross-cutting training capability in the repo is a :class:`Callback`
responding to them.  Stock callbacks cover the needs of the paper's
protocol: loss-history recording, progress logging, LR scheduling, early
stopping on the contrastive losses, gradient clipping, gradient
accumulation, and mid-run checkpointing for the long multi-source pre-train.
"""

from __future__ import annotations

import numpy as np

from repro.engine.history import History
from repro.nn.schedulers import LRScheduler
from repro.utils.validation import check_positive


class Callback:
    """Base class: override any subset of the event hooks.

    Every hook receives the trainer, so callbacks can reach the loop, the
    optimizer, the scheduler and the mutable
    :class:`~repro.engine.state.TrainState`.
    """

    def on_fit_start(self, trainer) -> None:
        """Called once when :meth:`Trainer.fit` starts."""

    def on_epoch_start(self, trainer, epoch: int) -> None:
        """Called before each epoch's first batch."""

    def on_batch_end(self, trainer, logs: dict) -> None:
        """Called after each batch; ``logs`` holds the batch's metric floats."""

    def on_backward_end(self, trainer) -> None:
        """Called when gradients are complete, right before ``optimizer.step()``."""

    def on_epoch_end(self, trainer, logs: dict) -> None:
        """Called after each epoch; ``logs`` holds the epoch-mean metrics."""

    def on_fit_end(self, trainer) -> None:
        """Called once when the run finishes (normally or via early stop)."""


class LossHistory(Callback):
    """Records the epoch-end metric logs into a :class:`History`.

    Pass an existing ``history`` to accumulate across several ``fit`` calls
    (the pre-trainer does this so repeated fits keep appending, exactly like
    the seed implementation).
    """

    def __init__(self, history: History | None = None):
        self.history = history if history is not None else History()

    def on_epoch_end(self, trainer, logs: dict) -> None:
        self.history.append(logs)


class ProgressLogger(Callback):
    """Prints one line per epoch, reproducing the seed loops' verbose output.

    ``fields`` maps printed labels to metric names, e.g. the pre-trainer uses
    ``{"loss": "loss", "proto": "prototype", "si": "series_image"}`` to print
    ``[pretrain] epoch 1/2 loss=… proto=… si=…``.
    """

    def __init__(self, prefix: str, *, fields: dict[str, str] | None = None, every: int = 1):
        check_positive("every", every)
        self.prefix = prefix
        self.fields = dict(fields) if fields else {"loss": "loss"}
        self.every = int(every)

    def on_epoch_end(self, trainer, logs: dict) -> None:
        epoch = trainer.state.epoch
        if epoch % self.every and epoch != trainer.target_epochs:
            return
        rendered = " ".join(
            f"{label}={logs[metric]:.4f}"
            for label, metric in self.fields.items()
            if metric in logs
        )
        print(f"[{self.prefix}] epoch {epoch}/{trainer.target_epochs} {rendered}")


class LRSchedulerCallback(Callback):
    """Steps a :mod:`repro.nn.schedulers` schedule once per epoch.

    The epoch logs are assembled (learning rate included) *before* callbacks
    fire, so the recorded ``learning_rate`` is the rate the epoch actually
    trained with, matching the seed loops.
    """

    def __init__(self, scheduler: LRScheduler):
        self.scheduler = scheduler

    def on_epoch_end(self, trainer, logs: dict) -> None:
        self.scheduler.step()


class EarlyStopping(Callback):
    """Stops the run when a monitored metric plateaus.

    Parameters
    ----------
    monitor:
        Metric name in the epoch logs (``"loss"`` for the single-objective
        loops; the pre-trainer also logs ``"prototype"`` and
        ``"series_image"``, so either contrastive loss can be monitored).
    patience:
        Number of consecutive non-improving epochs tolerated before stopping.
    min_delta:
        Minimum improvement (in ``mode`` direction) that resets the counter.
    mode:
        ``"min"`` (losses) or ``"max"`` (accuracies).
    """

    def __init__(
        self,
        monitor: str = "loss",
        *,
        patience: int = 3,
        min_delta: float = 0.0,
        mode: str = "min",
    ):
        check_positive("patience", patience)
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: float | None = None
        self.wait = 0

    def on_fit_start(self, trainer) -> None:
        self.best = None
        self.wait = 0

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_epoch_end(self, trainer, logs: dict) -> None:
        value = logs.get(self.monitor)
        if value is None:
            return
        if self._improved(float(value)):
            self.best = float(value)
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            trainer.state.stop_training = True
            trainer.state.stop_reason = (
                f"early stopping: {self.monitor} did not improve for "
                f"{self.patience} epochs (best {self.best:.6f})"
            )


class GradClip(Callback):
    """Clips the global gradient norm right before every optimizer step."""

    def __init__(self, max_norm: float):
        check_positive("max_norm", max_norm)
        self.max_norm = float(max_norm)
        #: gradient norm observed at the most recent step (for logging/tests)
        self.last_norm: float | None = None

    def on_backward_end(self, trainer) -> None:
        grads = [p.grad for p in trainer.optimizer.parameters if p.grad is not None]
        if not grads:
            return
        norm = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
        self.last_norm = norm
        if norm > self.max_norm:
            scale = self.max_norm / (norm + 1e-12)
            for grad in grads:
                grad *= scale


class GradAccumulation(Callback):
    """Declares gradient accumulation over ``steps`` micro-batches.

    The trainer reads ``steps`` at ``fit`` time: gradients are cleared every
    ``steps`` batches, unscaled micro-batch gradients are summed, and at each
    window boundary they are averaged over the *actual* window size before
    the optimizer steps — so a window of equally-sized micro-batches is
    equivalent to one full batch over the same samples, including a leftover
    partial window at the end of an epoch.  ``steps=1`` is exactly the
    unaccumulated loop.
    """

    def __init__(self, steps: int):
        check_positive("steps", steps)
        self.steps = int(steps)


class Checkpointer(Callback):
    """Saves a resumable trainer checkpoint every ``every`` epochs.

    The checkpoint is a full bundle (see :mod:`repro.api.bundle`) holding the
    loop's module weights, the optimizer moments, the scheduler step, every
    named RNG stream and the history — everything
    :meth:`~repro.engine.trainer.Trainer.resume` needs to continue a killed
    run bit-identically.  Every save is atomic (tmp + ``os.replace``), so a
    crash mid-save never corrupts the previous checkpoint.

    With the default ``keep_last=None`` the file at ``path`` is overwritten
    in place so it always holds the latest completed epoch.  With
    ``keep_last=N`` each save lands in an epoch-stamped sibling
    (``model.epoch0003.npz``) and only the newest ``N`` are retained —
    a bad epoch can be rolled back past the most recent save.
    """

    def __init__(
        self, path, *, every: int = 1, save_on_fit_end: bool = True, keep_last: int | None = None
    ):
        check_positive("every", every)
        if keep_last is not None:
            check_positive("keep_last", keep_last)
        self.path = path
        self.every = int(every)
        self.save_on_fit_end = bool(save_on_fit_end)
        self.keep_last = int(keep_last) if keep_last is not None else None
        #: path written by the most recent save (None until one happens)
        self.last_path: str | None = None
        #: retained epoch-stamped paths, oldest first (``keep_last`` mode)
        self.kept_paths: list[str] = []

    def _save(self, trainer) -> None:
        if self.keep_last is None:
            self.last_path = trainer.save_checkpoint(self.path)
            return
        import os

        from repro.utils.paths import normalize_npz_path

        base = normalize_npz_path(self.path)
        stamped = f"{base[:-len('.npz')]}.epoch{trainer.state.epoch:04d}.npz"
        self.last_path = trainer.save_checkpoint(stamped)
        self.kept_paths.append(self.last_path)
        while len(self.kept_paths) > self.keep_last:
            stale = self.kept_paths.pop(0)
            try:
                os.unlink(stale)
            except OSError:  # already gone: retention is best-effort
                pass

    def on_epoch_end(self, trainer, logs: dict) -> None:
        if trainer.state.epoch % self.every == 0:
            self._save(trainer)

    def on_fit_end(self, trainer) -> None:
        if self.save_on_fit_end and trainer.state.epoch % self.every != 0:
            self._save(trainer)
