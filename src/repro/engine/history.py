"""Structured per-epoch training history shared by every loop in the repo.

One :class:`History` instance records the engine's epoch-end metric logs as
named curves.  The legacy return shapes of the migrated loops are kept alive
as thin views over it: :class:`~repro.core.pretrainer.PretrainHistory`
(attribute access) and :class:`LossCurve` (a ``list[float]`` subclass), so
code written against the seed API keeps working unchanged.
"""

from __future__ import annotations


class History:
    """Named per-epoch metric curves with a structured summary.

    Metrics are appended one epoch at a time from the trainer's epoch logs;
    every value is stored as a plain Python float so histories serialize
    losslessly through the JSON checkpoint manifest (``repr`` round-trip).
    """

    def __init__(self, metrics: dict[str, list[float]] | None = None):
        self.metrics: dict[str, list[float]] = {
            key: [float(v) for v in values] for key, values in (metrics or {}).items()
        }

    def append(self, logs: dict[str, float]) -> None:
        """Record one epoch of metric values."""
        for key, value in logs.items():
            self.metrics.setdefault(key, []).append(float(value))

    def curve(self, name: str) -> list[float]:
        """The per-epoch values of one metric (empty list if never logged)."""
        return self.metrics.setdefault(name, [])

    def last(self) -> dict[str, float]:
        """Final-epoch value of every metric (empty dict if no epoch ran)."""
        return {key: values[-1] for key, values in self.metrics.items() if values}

    def clear(self) -> None:
        """Drop every recorded epoch (used when a checkpoint is restored)."""
        self.metrics.clear()

    def load(self, metrics: dict[str, list[float]]) -> "History":
        """Replace the recorded curves (checkpoint restore path)."""
        self.metrics.clear()
        for key, values in metrics.items():
            self.metrics[key] = [float(v) for v in values]
        return self

    def __len__(self) -> int:
        """Number of recorded epochs (longest curve)."""
        return max((len(values) for values in self.metrics.values()), default=0)

    def __contains__(self, name: str) -> bool:
        return name in self.metrics

    def __getitem__(self, name: str) -> list[float]:
        return self.metrics[name]

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}[{len(values)}]" for key, values in self.metrics.items())
        return f"History({inner})"


class LossCurve(list):
    """A ``list[float]`` of per-epoch losses that also carries the full history.

    Deprecation shim: ``FineTuner.fit`` and ``SelfSupervisedBaseline.pretrain``
    historically returned a bare ``list[float]``; they now return this class,
    which *is* that list (indexing, ``len``, equality all unchanged) while also
    exposing the engine's structured :attr:`history` and :meth:`last` like
    ``AimTSPretrainer.fit`` does.  Prefer the structured accessors — the bare
    list shape is kept only for backward compatibility.
    """

    def __init__(self, values, history: History, metric: str = "loss"):
        super().__init__(float(v) for v in values)
        #: the full engine history this curve is one metric of
        self.history = history
        #: the metric name this list holds
        self.metric = metric

    def last(self) -> dict[str, float]:
        """Final-epoch value of every recorded metric."""
        return self.history.last()
