"""The :class:`TrainLoop` contract every migrated loop implements.

A loop owns *what* is trained (modules, batches, the loss); the
:class:`~repro.engine.trainer.Trainer` owns *how* (epochs, optimizer steps,
gradient accumulation, callbacks, checkpoints).  A loop implements two
methods — ``make_batches(rng, epoch)`` and ``batch_loss(batch)`` — plus the
introspection hooks the trainer needs for checkpointing.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class TrainLoop:
    """Base class / contract for one trainable objective.

    Subclasses implement:

    ``make_batches(rng, epoch)``
        Yield the epoch's mini-batches in order.  Any shuffling must draw
        from ``rng`` (or from a generator that *shares* it), so the trainer
        can snapshot and restore the stream for bit-identical resume.
    ``batch_loss(batch)``
        Return the scalar loss :class:`~repro.nn.tensor.Tensor` for one
        batch, or a dict whose ``"loss"`` entry is that tensor; extra dict
        entries (tensors or floats) are logged as additional metrics.

    and the checkpointing hooks:

    ``named_modules()``
        Stable name → :class:`~repro.nn.module.Module` mapping of everything
        the optimizer trains (names become checkpoint key prefixes).
    ``named_rngs()``
        Stable name → :class:`numpy.random.Generator` mapping of every RNG
        stream the loop consumes (batch shuffling, augmentations, mixup,
        dropout); all are snapshotted into checkpoints and restored by
        :meth:`~repro.engine.trainer.Trainer.resume`.

    Loops that support sharded data-parallel training (``Trainer(...,
    n_workers=N)``) additionally provide ``worker_factory`` — a picklable
    ``factory(worker_index, n_workers)`` that rebuilds a replica with
    ``parameters()`` / ``batch_loss()`` / ``named_modules()`` inside a spawn
    worker — and may tune :attr:`shard_min_samples` / :meth:`shard_batch`.

    Loops that support pipelined pre-training (``Trainer(..., n_producers=N)``)
    provide the producer hooks: :meth:`producer_factory` (a picklable
    ``factory(producer_index)`` building an object with ``produce(epoch,
    step, payload)``), :meth:`pipeline_batches` (the *stateless* per-epoch
    payload schedule, keyed by ``SeedSequence([seed, epoch])`` so producers
    never consume shared iterator state) and :meth:`consume_batch` (the loss
    on a produced batch).  The contract: ``produce`` derives every stochastic
    stream from ``derive_step_seed(seed, epoch, step)``, so running the same
    schedule inline, or through any number of producer processes, yields
    bit-identical losses.
    """

    #: smallest shard :meth:`shard_batch` will produce (contrastive
    #: objectives need at least a pair of samples per shard)
    shard_min_samples = 1

    def named_modules(self) -> dict[str, Module]:  # pragma: no cover - interface
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        """Every trainable parameter, in stable :meth:`named_modules` order."""
        for module in self.named_modules().values():
            yield from module.parameters()

    def make_batches(self, rng: np.random.Generator, epoch: int) -> Iterable:  # pragma: no cover
        raise NotImplementedError

    def batch_loss(self, batch) -> Tensor | dict:  # pragma: no cover - interface
        raise NotImplementedError

    def named_rngs(self) -> dict[str, np.random.Generator]:
        """RNG streams to snapshot in checkpoints (none by default)."""
        return {}

    def metric_names(self) -> tuple[str, ...]:
        """Metrics every epoch must record, even with zero usable batches.

        An epoch whose batches were all filtered out (e.g. a pool too small
        for the contrastive two-sample minimum) logs ``0.0`` for each of
        these, keeping curve lengths equal across metrics.
        """
        return ("loss",)

    # ------------------------------------------------------------------ sharding
    def worker_factory(self):
        """Picklable ``factory(worker_index, n_workers)`` building a replica.

        Returns ``None`` (the default) when the loop does not support
        sharded training; the trainer then rejects ``n_workers > 1``.
        """
        return None

    def shard_batch(self, batch, n_shards: int) -> list[tuple]:
        """Split one batch into ``[(sub_batch, n_samples), ...]`` shards."""
        return shard_arrays(batch, n_shards, min_samples=self.shard_min_samples)

    # ---------------------------------------------------------------- pipeline
    def producer_factory(self):
        """Picklable ``factory(producer_index)`` building a batch producer.

        Returns ``None`` (the default) when the loop does not support
        pipelined training; the trainer then rejects ``n_producers >= 1``.
        """
        return None

    def pipeline_batches(self, epoch: int) -> Iterable:  # pragma: no cover - interface
        """Lazily yield the epoch's produce payloads in schedule (step) order.

        Must be *stateless in epoch*: the schedule derives from
        ``SeedSequence([seed, epoch])``, not from a shared mutable iterator —
        so any producer (or a resumed run) can regenerate it exactly.
        """
        raise NotImplementedError

    def consume_batch(self, produced):
        """Loss for one produced batch (defaults to :meth:`batch_loss`).

        ``produced`` may hold zero-copy views into the producer ring; they
        are valid for the duration of this step only.
        """
        return self.batch_loss(produced)

    def pipeline_slot_nbytes(self) -> int:
        """Estimated bytes of one produced batch (ring slot sizing hint).

        ``0`` lets the pool pick a generic default; oversize batches still
        work via the pickle fallback, just slower.
        """
        return 0

    def pipeline_seed(self):
        """The base seed of the step-keyed pipeline streams (checkpoint metadata)."""
        return None


def shard_arrays(batch, n_shards: int, *, min_samples: int = 1) -> list[tuple]:
    """Split a batch structure into contiguous in-order sub-batches.

    ``batch`` may be one ``(B, ...)`` array or a tuple/list mixing arrays
    (split along axis 0 when their leading size matches ``B``), ``None`` and
    scalars (passed through).  Shards are contiguous index ranges — the order
    is part of the parallel determinism contract — and never smaller than
    ``min_samples`` (the shard count shrinks instead).  Returns
    ``[(sub_batch, n_samples), ...]``.
    """
    leaves = batch if isinstance(batch, (tuple, list)) else (batch,)
    batch_size = next(
        (leaf.shape[0] for leaf in leaves if isinstance(leaf, np.ndarray)), None
    )
    if batch_size is None:
        raise ValueError("shard_arrays found no ndarray leaf to split on")
    n_effective = max(1, min(int(n_shards), batch_size // max(int(min_samples), 1)))
    bounds = np.linspace(0, batch_size, n_effective + 1).astype(int)

    def take(leaf, start, stop):
        if isinstance(leaf, np.ndarray) and leaf.ndim >= 1 and leaf.shape[0] == batch_size:
            return leaf[start:stop]
        return leaf

    shards = []
    for start, stop in zip(bounds[:-1], bounds[1:]):
        if stop <= start:
            continue
        if isinstance(batch, (tuple, list)):
            sub = type(batch)(take(leaf, start, stop) for leaf in batch)
        else:
            sub = take(batch, start, stop)
        shards.append((sub, int(stop - start)))
    return shards


def dropout_rngs(module: Module, prefix: str = "dropout") -> dict[str, np.random.Generator]:
    """Collect the RNGs of every :class:`~repro.nn.layers.Dropout` in ``module``.

    Keys are ``{prefix}.{i}`` in module-traversal order, which is stable for a
    fixed architecture — good enough for checkpoint round-trips.
    """
    from repro.nn.layers import Dropout

    rngs: dict[str, np.random.Generator] = {}
    index = 0
    for child in module.modules():
        if isinstance(child, Dropout):
            rngs[f"{prefix}.{index}"] = child._rng
            index += 1
    return rngs
