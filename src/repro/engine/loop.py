"""The :class:`TrainLoop` contract every migrated loop implements.

A loop owns *what* is trained (modules, batches, the loss); the
:class:`~repro.engine.trainer.Trainer` owns *how* (epochs, optimizer steps,
gradient accumulation, callbacks, checkpoints).  A loop implements two
methods — ``make_batches(rng, epoch)`` and ``batch_loss(batch)`` — plus the
introspection hooks the trainer needs for checkpointing.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class TrainLoop:
    """Base class / contract for one trainable objective.

    Subclasses implement:

    ``make_batches(rng, epoch)``
        Yield the epoch's mini-batches in order.  Any shuffling must draw
        from ``rng`` (or from a generator that *shares* it), so the trainer
        can snapshot and restore the stream for bit-identical resume.
    ``batch_loss(batch)``
        Return the scalar loss :class:`~repro.nn.tensor.Tensor` for one
        batch, or a dict whose ``"loss"`` entry is that tensor; extra dict
        entries (tensors or floats) are logged as additional metrics.

    and the checkpointing hooks:

    ``named_modules()``
        Stable name → :class:`~repro.nn.module.Module` mapping of everything
        the optimizer trains (names become checkpoint key prefixes).
    ``named_rngs()``
        Stable name → :class:`numpy.random.Generator` mapping of every RNG
        stream the loop consumes (batch shuffling, augmentations, mixup,
        dropout); all are snapshotted into checkpoints and restored by
        :meth:`~repro.engine.trainer.Trainer.resume`.
    """

    def named_modules(self) -> dict[str, Module]:  # pragma: no cover - interface
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        """Every trainable parameter, in stable :meth:`named_modules` order."""
        for module in self.named_modules().values():
            yield from module.parameters()

    def make_batches(self, rng: np.random.Generator, epoch: int) -> Iterable:  # pragma: no cover
        raise NotImplementedError

    def batch_loss(self, batch) -> Tensor | dict:  # pragma: no cover - interface
        raise NotImplementedError

    def named_rngs(self) -> dict[str, np.random.Generator]:
        """RNG streams to snapshot in checkpoints (none by default)."""
        return {}

    def metric_names(self) -> tuple[str, ...]:
        """Metrics every epoch must record, even with zero usable batches.

        An epoch whose batches were all filtered out (e.g. a pool too small
        for the contrastive two-sample minimum) logs ``0.0`` for each of
        these, keeping curve lengths equal across metrics.
        """
        return ("loss",)


def dropout_rngs(module: Module, prefix: str = "dropout") -> dict[str, np.random.Generator]:
    """Collect the RNGs of every :class:`~repro.nn.layers.Dropout` in ``module``.

    Keys are ``{prefix}.{i}`` in module-traversal order, which is stable for a
    fixed architecture — good enough for checkpoint round-trips.
    """
    from repro.nn.layers import Dropout

    rngs: dict[str, np.random.Generator] = {}
    index = 0
    for child in module.modules():
        if isinstance(child, Dropout):
            rngs[f"{prefix}.{index}"] = child._rng
            index += 1
    return rngs
