"""Per-step phase profiling for the training engine.

:class:`PhaseProfiler` attributes wall time to named phases of the training
step (``fetch`` / ``render`` / ``augment`` / ``forward`` / ``backward`` /
``optimizer``) with *exclusive* accounting: entering a nested phase pauses
the enclosing one, so a ``render`` interval timed inside ``forward`` is
charged to ``render`` only and the per-epoch phase columns sum to the
instrumented wall time without double counting.

The profiler reaches the instrumented code the same way the
:class:`~repro.nn.arena.StepArena` does — through a scoped module global.
Instrumentation sites call :func:`profiled_phase`, which is a no-op (one
``None`` check) when no profiler is active, so the default training path
pays nothing.  The :class:`~repro.engine.trainer.Trainer` enters
:func:`use_profiler` around ``fit`` when constructed with ``profile=True``
and surfaces per-epoch deltas as ``profile_<phase>_seconds`` history
columns.
"""

from __future__ import annotations

import contextlib
import time

_ACTIVE_PROFILER: "PhaseProfiler | None" = None


def active_profiler() -> "PhaseProfiler | None":
    """The profiler timing the current training scope (None = disabled)."""
    return _ACTIVE_PROFILER


def set_active_profiler(profiler: "PhaseProfiler | None") -> "PhaseProfiler | None":
    """Install ``profiler`` as the ambient phase timer; returns the previous one."""
    global _ACTIVE_PROFILER
    previous = _ACTIVE_PROFILER
    _ACTIVE_PROFILER = profiler
    return previous


@contextlib.contextmanager
def use_profiler(profiler: "PhaseProfiler | None"):
    """Scope within which :func:`profiled_phase` reports to ``profiler``.

    ``None`` is valid and keeps phase timing disabled, so callers can thread
    an optional profiler without branching.
    """
    previous = set_active_profiler(profiler)
    try:
        yield profiler
    finally:
        set_active_profiler(previous)


@contextlib.contextmanager
def profiled_phase(name: str):
    """Attribute the enclosed wall time to phase ``name`` (no-op when idle)."""
    profiler = _ACTIVE_PROFILER
    if profiler is None:
        yield
        return
    profiler.enter(name)
    try:
        yield
    finally:
        profiler.exit()


class PhaseProfiler:
    """Accumulates exclusive wall time per named phase.

    Attributes
    ----------
    totals:
        Phase name → cumulative exclusive seconds.
    counts:
        Phase name → number of completed intervals.
    """

    __slots__ = ("totals", "counts", "_stack")

    def __init__(self):
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._stack: list[list] = []

    def enter(self, name: str) -> None:
        """Start a phase; pauses the enclosing phase's clock."""
        now = time.perf_counter()
        if self._stack:
            parent = self._stack[-1]
            self.totals[parent[0]] = self.totals.get(parent[0], 0.0) + (now - parent[1])
        self._stack.append([name, now])

    def exit(self) -> None:
        """Finish the innermost phase; resumes the enclosing phase's clock."""
        now = time.perf_counter()
        name, started = self._stack.pop()
        self.totals[name] = self.totals.get(name, 0.0) + (now - started)
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._stack:
            self._stack[-1][1] = now

    def snapshot(self) -> dict[str, float]:
        """Copy of the cumulative phase totals (plain floats, JSON-safe)."""
        return {name: float(seconds) for name, seconds in self.totals.items()}

    def reset(self) -> None:
        """Drop all accumulated totals (open phases keep running)."""
        self.totals.clear()
        self.counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self.totals.items()))
        return f"PhaseProfiler({inner})"
