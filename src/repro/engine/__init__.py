"""``repro.engine`` — the unified training engine behind every loop.

One :class:`Trainer` drives AimTS multi-source pre-training, downstream
fine-tuning and every self-supervised baseline, so cross-cutting training
capabilities are implemented exactly once as callbacks:

* :class:`TrainLoop` — the objective contract: ``make_batches(rng, epoch)``
  + ``batch_loss(batch)`` plus checkpointing introspection.
* :class:`TrainState` — epoch/step counters, history and RNG snapshots.
* :class:`Callback` — the event protocol (``on_fit_start`` /
  ``on_epoch_start`` / ``on_batch_end`` / ``on_backward_end`` /
  ``on_epoch_end`` / ``on_fit_end``) with stock implementations:
  :class:`LossHistory`, :class:`ProgressLogger`, :class:`LRSchedulerCallback`,
  :class:`EarlyStopping`, :class:`GradClip`, :class:`GradAccumulation` and
  :class:`Checkpointer`.
* :class:`Trainer` — the epoch/step mechanics, gradient accumulation and
  resumable full-bundle checkpoints (``Trainer.resume(path)`` continues a
  killed run bit-identically: optimizer moments, scheduler step and every
  per-epoch RNG stream restored).
* :mod:`repro.engine.parallel` — sharded data-parallel gradient workers:
  ``Trainer(..., n_workers=N)`` splits every batch across a persistent
  spawn-safe :class:`GradientWorkerPool` with shared-memory parameter
  broadcast and fixed-order gradient reduction (``n_workers=1`` stays the
  bit-exact sequential path) — and pipelined batch producers:
  ``Trainer(..., n_producers=N)`` renders + augments ahead of the gradient
  step through a :class:`ProducerPool` publishing into a bounded
  shared-memory :class:`RingArena`, with per-batch streams keyed by
  :func:`derive_step_seed` so the curve is bit-identical at any producer
  count (``n_producers=0`` stays the bit-exact synchronous path).

A custom training capability is one small class::

    from repro.engine import Callback

    class NaNGuard(Callback):
        def on_batch_end(self, trainer, logs):
            if not np.isfinite(logs["loss"]):
                trainer.state.stop_training = True
                trainer.state.stop_reason = "loss diverged"

    model.pretrain(corpus, callbacks=[NaNGuard()])
"""

from repro.engine.callbacks import (
    Callback,
    Checkpointer,
    EarlyStopping,
    GradAccumulation,
    GradClip,
    LossHistory,
    LRSchedulerCallback,
    ProgressLogger,
)
from repro.engine.history import History, LossCurve
from repro.engine.loop import TrainLoop, dropout_rngs, shard_arrays
from repro.engine.parallel import (
    GradientWorkerPool,
    ProducerPool,
    RestartPolicy,
    RingArena,
    WorkerError,
    derive_step_seed,
    derive_worker_seed,
    derive_worker_step_seed,
)
from repro.engine.state import DtypePolicy, TrainState, get_rng_state, set_rng_state
from repro.engine.trainer import CHECKPOINT_KIND, CHECKPOINT_TAG, Trainer

__all__ = [
    "Trainer",
    "TrainLoop",
    "GradientWorkerPool",
    "ProducerPool",
    "RestartPolicy",
    "RingArena",
    "WorkerError",
    "derive_worker_seed",
    "derive_step_seed",
    "derive_worker_step_seed",
    "shard_arrays",
    "TrainState",
    "DtypePolicy",
    "History",
    "LossCurve",
    "Callback",
    "LossHistory",
    "ProgressLogger",
    "LRSchedulerCallback",
    "EarlyStopping",
    "GradClip",
    "GradAccumulation",
    "Checkpointer",
    "dropout_rngs",
    "get_rng_state",
    "set_rng_state",
    "CHECKPOINT_TAG",
    "CHECKPOINT_KIND",
]
