"""Trainer state: epoch/step counters, RNG snapshots and the dtype policy.

:class:`TrainState` is the mutable progress record one :class:`~repro.engine.
trainer.Trainer` advances; everything needed to continue a killed run
bit-identically — completed epochs, optimizer steps, the history and every
named RNG stream — round-trips through the checkpoint bundle (see
:meth:`~repro.engine.trainer.Trainer.save_checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.history import History


@dataclass
class TrainState:
    """Mutable progress of one training run.

    Attributes
    ----------
    epoch:
        Number of *completed* epochs (``Trainer.fit(n)`` runs epochs
        ``epoch .. n-1``, so a state restored at ``epoch=k`` resumes with
        epoch ``k``).
    step:
        Optimizer steps taken (differs from ``batch`` under gradient
        accumulation).
    batch:
        Mini-batches consumed.
    history:
        The structured per-epoch metric curves recorded so far.
    stop_training:
        Set by callbacks (e.g. :class:`~repro.engine.callbacks.EarlyStopping`)
        to end the run after the current epoch.
    stop_reason:
        Human-readable reason the run stopped early, if it did.
    """

    epoch: int = 0
    step: int = 0
    batch: int = 0
    history: History = field(default_factory=History)
    stop_training: bool = False
    stop_reason: str | None = None

    def progress(self) -> dict[str, int]:
        """The JSON-serializable counter block stored in checkpoints."""
        return {"epoch": self.epoch, "step": self.step, "batch": self.batch}

    def restore_progress(self, progress: dict) -> None:
        """Restore the counters saved by :meth:`progress`."""
        self.epoch = int(progress["epoch"])
        self.step = int(progress["step"])
        self.batch = int(progress.get("batch", 0))
        self.stop_training = False
        self.stop_reason = None


@dataclass(frozen=True)
class DtypePolicy:
    """The precision policy a trainer (and its loop) runs under.

    Configured once on the trainer instead of per loop: ``compute_dtype`` is
    the autograd/parameter precision — "float64" is the bit-exact reference
    path, "float32" halves the compute core's memory traffic (parameters,
    activations, gradients and optimizer moments all stay float32; see
    ``AimTSConfig.compute_dtype``) — and ``image_dtype`` selects the
    rasteriser fast path ("float32" halves image memory, "float64" is
    bit-exact against the reference renderer — see
    ``AimTSConfig.image_dtype``).

    :meth:`Trainer.fit <repro.engine.trainer.Trainer.fit>` and the
    estimators' serving surfaces apply ``compute_dtype`` through the
    :func:`repro.nn.tensor.default_dtype` scope.
    """

    compute_dtype: str = "float64"
    image_dtype: str = "float64"

    def __post_init__(self) -> None:
        for field_name in ("compute_dtype", "image_dtype"):
            value = getattr(self, field_name)
            if value not in ("float32", "float64"):
                raise ValueError(
                    f"{field_name} must be 'float32' or 'float64', got {value!r}"
                )

    @property
    def np_compute_dtype(self) -> np.dtype:
        """The compute precision as a NumPy dtype."""
        return np.dtype(self.compute_dtype)

    @property
    def np_image_dtype(self) -> np.dtype:
        """The imaging precision as a NumPy dtype."""
        return np.dtype(self.image_dtype)


def get_rng_state(generator: np.random.Generator) -> dict:
    """Snapshot a NumPy generator as a JSON-serializable state dict."""
    return generator.bit_generator.state


def set_rng_state(generator: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`get_rng_state` *in place*.

    The generator object keeps its identity, so every component sharing it
    (batch iterators, mixup, augmentations) sees the restored stream.
    """
    generator.bit_generator.state = state
