"""The :class:`Trainer` — the one training driver behind every loop.

Every epoch loop in the repo (AimTS pre-training, downstream fine-tuning and
all self-supervised baseline pre-training) runs through this class: the loop
supplies batches and a loss (:class:`~repro.engine.loop.TrainLoop`), the
trainer supplies the epoch/step mechanics — optimizer stepping, gradient
accumulation, callback events, and resumable checkpoints through the same
bundle format estimators persist with (:mod:`repro.api.bundle`).

Bit-exact guarantees: with no accumulation/clipping callbacks the batch
schedule is ``zero_grad → batch_loss → backward → step`` per batch, exactly
the seed loops' order, and the loop's RNG streams are only consumed by the
loop itself — so migrated loops reproduce their seed loss curves to the last
bit, and :meth:`Trainer.resume` continues a killed run as if it had never
stopped.
"""

from __future__ import annotations

import numpy as np

from repro.engine.callbacks import (
    Callback,
    GradAccumulation,
    LossHistory,
    LRSchedulerCallback,
)
from repro.engine.history import History
from repro.engine.loop import TrainLoop
from repro.engine.profiler import PhaseProfiler, profiled_phase, use_profiler
from repro.engine.state import DtypePolicy, TrainState, get_rng_state, set_rng_state
from repro.nn.arena import StepArena, use_arena
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler
from repro.nn.tensor import Tensor, default_dtype

#: manifest ``estimator`` tag marking a trainer checkpoint bundle
CHECKPOINT_TAG = "trainer-checkpoint"

#: manifest ``kind`` tag for trainer checkpoints
CHECKPOINT_KIND = "train-state"


class Trainer:
    """Drives a :class:`~repro.engine.loop.TrainLoop` for a number of epochs.

    Parameters
    ----------
    loop:
        The objective: batches, loss, modules and RNG streams.
    optimizer:
        Optimizer over ``loop.parameters()`` (already constructed, so the
        caller controls parameter ordering).
    scheduler:
        Optional LR schedule; stepped once per epoch via an auto-appended
        :class:`~repro.engine.callbacks.LRSchedulerCallback` unless one is
        already in ``callbacks``.
    callbacks:
        Event subscribers, run in order.  A
        :class:`~repro.engine.callbacks.LossHistory` is inserted at the front
        when none is supplied.
    history:
        Existing :class:`~repro.engine.history.History` for the auto-inserted
        ``LossHistory`` to append into — pass the same instance across
        several ``fit`` calls to accumulate one continuous history.
        Mutually exclusive with supplying your own ``LossHistory`` callback.
    rng:
        Generator handed to ``loop.make_batches``; defaults to a fresh
        unseeded generator when omitted (loops that own their stream ignore
        it).
    dtype_policy:
        The precision policy (see :class:`~repro.engine.state.DtypePolicy`),
        configured once here instead of per loop.
    n_workers:
        Sharded data-parallel training: with ``n_workers >= 2`` every batch
        is split by ``loop.shard_batch`` across a persistent
        :class:`~repro.engine.parallel.GradientWorkerPool` (the loop must
        provide a ``worker_factory``); gradients are reduced in fixed worker
        order before each optimizer step.  ``n_workers=1`` (default) is the
        sequential path, bit-identical to previous releases.
    worker_pool:
        An already-running :class:`~repro.engine.parallel.GradientWorkerPool`
        to borrow instead of spawning one per ``fit`` — estimators keep one
        alive across fits so worker startup is paid once.  The caller owns
        (and closes) a borrowed pool; a trainer-spawned one is closed when
        ``fit`` returns.
    n_producers:
        Pipelined pre-training: with ``n_producers >= 1`` every epoch runs
        the loop's *stateless* pipeline schedule, producing batches (render +
        augment) in producer processes ahead of the gradient step through a
        bounded shared-memory ring (see
        :class:`~repro.engine.parallel.ProducerPool`).  Per-batch streams are
        keyed by ``derive_step_seed(seed, epoch, step)``, so the loss curve
        is bit-identical at any producer count — and ``prefetch_depth=0``
        runs the identical schedule inline (no processes), the sequential
        reference the pipelined runs are asserted against.  ``n_producers=0``
        (default) is the classic synchronous path, bit-exact with earlier
        releases.  Mutually exclusive with ``n_workers >= 2``.  The count can
        be changed between epochs (``trainer.n_producers = k`` from a
        callback): the pool grows/shrinks without touching the curve.
    prefetch_depth:
        Ring slots, i.e. the produce-ahead bound (>= 2, double-buffered
        minimum; ``0`` = inline synchronous reference mode).
    producer_pool:
        An already-running :class:`~repro.engine.parallel.ProducerPool` to
        borrow instead of spawning one per ``fit`` (estimators keep one alive
        across fits).  The caller owns and closes it.
    restart_policy:
        Optional :class:`~repro.engine.parallel.RestartPolicy` passed to
        trainer-spawned pools: crashed producers/workers are respawned and
        their steps replayed bit-identically (step-keyed streams).  When the
        restart budget runs out, a pipelined fit *degrades* to the inline
        sequential path with a ``RuntimeWarning`` (recorded in
        ``degradation_events``) instead of raising — the curve is unchanged,
        only the prefetch is lost.  ``None`` keeps fail-fast semantics.
    step_arena:
        Pools every steady-state training allocation in a
        :class:`~repro.nn.arena.StepArena` (default ``True``): forward
        intermediates, im2col patch matrices, gradient buffers and VJP
        scratch all reuse plan-once buffers, keyed per step by a generation
        counter that the trainer advances after every batch.  Bit-identical
        to the allocate-fresh path (the arena only changes *where* arrays
        live, never their values).  Pass ``None``/``False`` for the
        allocate-fresh escape hatch, or a ready ``StepArena`` to share one.
        Sharded workers build a private arena per replica (see
        :class:`~repro.engine.parallel.GradientWorkerPool`).
    profile:
        Time the phases of every training step (``fetch`` / ``forward`` /
        ``backward`` / ``optimizer``, plus loop-reported phases such as
        ``render`` and ``augment``) with exclusive accounting and record the
        per-epoch seconds as ``profile_<phase>_seconds`` history columns;
        totals also appear in :meth:`pipeline_summary`.  Off by default —
        the instrumented sites cost one ``None`` check when disabled.
    """

    def __init__(
        self,
        loop: TrainLoop,
        optimizer: Optimizer,
        *,
        scheduler: LRScheduler | None = None,
        callbacks: list[Callback] | tuple = (),
        history: History | None = None,
        rng: np.random.Generator | None = None,
        dtype_policy: DtypePolicy | None = None,
        state: TrainState | None = None,
        n_workers: int = 1,
        worker_pool=None,
        n_producers: int = 0,
        prefetch_depth: int = 2,
        producer_pool=None,
        restart_policy=None,
        step_arena: StepArena | bool | None = True,
        profile: bool = False,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if n_producers < 0:
            raise ValueError(f"n_producers must be >= 0, got {n_producers}")
        if prefetch_depth != 0 and prefetch_depth < 2:
            raise ValueError(
                f"prefetch_depth must be 0 (inline) or >= 2 (double-buffered), "
                f"got {prefetch_depth}"
            )
        if producer_pool is not None:
            n_producers = producer_pool.n_producers
            prefetch_depth = producer_pool.prefetch_depth
        if n_producers >= 1 and (n_workers > 1 or worker_pool is not None):
            raise ValueError(
                "pipelined producers (n_producers >= 1) require the sequential "
                "gradient path (n_workers=1); combine one or the other"
            )
        self.loop = loop
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.n_workers = int(n_workers if worker_pool is None else worker_pool.n_workers)
        self.worker_pool = worker_pool
        self.n_producers = int(n_producers)
        self.prefetch_depth = int(prefetch_depth)
        self.producer_pool = producer_pool
        #: per-epoch pipeline counters of the most recent fit (pipelined runs
        #: only): produce/stall seconds, occupancy, steps — see
        #: :meth:`pipeline_summary`
        self.pipeline_stats: list[dict] = []
        self._inline_producer = None
        self.restart_policy = restart_policy
        #: one record per producer-pool degradation (epoch, restarts, error)
        self.degradation_events: list[dict] = []
        self._degraded = False
        if step_arena is True:
            step_arena = StepArena()
        elif step_arena is False:
            step_arena = None
        #: the training-step buffer pool (None = allocate-fresh reference)
        self.step_arena: StepArena | None = step_arena
        #: per-phase wall-time accounting (None unless ``profile=True``)
        self.profiler: PhaseProfiler | None = PhaseProfiler() if profile else None
        self.callbacks: list[Callback] = list(callbacks)
        self.rng = rng
        self.dtype_policy = dtype_policy or DtypePolicy()
        self.state = state or TrainState()
        self._loss_history = next(
            (cb for cb in self.callbacks if isinstance(cb, LossHistory)), None
        )
        if self._loss_history is None:
            self._loss_history = LossHistory(
                history if history is not None else self.state.history
            )
            self.callbacks.insert(0, self._loss_history)
        elif history is not None and self._loss_history.history is not history:
            raise ValueError(
                "pass either history= or a LossHistory callback, not both"
            )
        self.state.history = self._loss_history.history
        if scheduler is not None and not any(
            isinstance(cb, LRSchedulerCallback) for cb in self.callbacks
        ):
            # insert right after the LossHistory so the schedule steps before
            # user callbacks run — a Checkpointer then snapshots the post-step
            # learning rate the next epoch resumes with
            position = self.callbacks.index(self._loss_history) + 1
            self.callbacks.insert(position, LRSchedulerCallback(scheduler))
        #: total epoch target of the active ``fit`` call (for progress display)
        self.target_epochs: int = 0

    # ------------------------------------------------------------------ events
    @property
    def history(self) -> History:
        """The structured per-epoch metric history."""
        return self._loss_history.history

    def _emit(self, event: str, *args) -> None:
        for callback in self.callbacks:
            getattr(callback, event)(self, *args)

    @staticmethod
    def _normalize_losses(result) -> dict:
        if isinstance(result, Tensor):
            return {"loss": result}
        if isinstance(result, dict):
            if "loss" not in result:
                raise KeyError(
                    "batch_loss returned a dict without the required 'loss' entry"
                )
            return result
        raise TypeError(
            f"batch_loss must return a Tensor or a dict with a 'loss' entry, "
            f"got {type(result).__name__}"
        )

    # --------------------------------------------------------------------- fit
    def _finish_step(self, accumulation: int, window: int) -> None:
        """Average the window's gradients, clip (callbacks) and step."""
        if accumulation > 1:
            # unscaled micro-batch gradients were summed; averaging over the
            # *actual* window size keeps partial end-of-epoch windows
            # equivalent to one full batch over the same samples
            for param in self.optimizer.parameters:
                if param.grad is not None:
                    param.grad /= window
        self._emit("on_backward_end")
        with profiled_phase("optimizer"):
            self.optimizer.step()
        self.state.step += 1

    def fit(self, epochs: int) -> History:
        """Train until ``epochs`` total epochs are complete.

        ``epochs`` is the *total* target: a trainer restored at epoch ``k``
        (via :meth:`resume`) runs only the remaining ``epochs - k``.
        Returns the structured history.

        Stopping: a callback setting ``state.stop_training`` from
        ``on_epoch_end`` ends the run after that epoch; setting it from
        ``on_batch_end`` aborts the epoch immediately — pending accumulated
        gradients are discarded and the partial epoch is *not* recorded in
        the history (so a ``Checkpointer`` never snapshots it).

        The whole run executes under the trainer's
        :class:`~repro.engine.state.DtypePolicy` compute dtype, so every
        tensor the loop creates (inputs, masks, losses) and every gradient
        follows the configured precision.
        """
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        with (
            default_dtype(self.dtype_policy.np_compute_dtype),
            use_arena(self.step_arena),
            use_profiler(self.profiler),
        ):
            return self._fit(int(epochs))

    def _make_worker_pool(self):
        """Spin up the gradient worker pool for ``n_workers >= 2`` runs."""
        from repro.engine.parallel import GradientWorkerPool

        factory = self.loop.worker_factory()
        if factory is None:
            raise ValueError(
                f"{type(self.loop).__name__} does not support sharded training "
                "(worker_factory() returned None); use n_workers=1"
            )
        return GradientWorkerPool(
            factory,
            list(self.loop.parameters()),
            n_workers=self.n_workers,
            compute_dtype=self.dtype_policy.compute_dtype,
            restart_policy=self.restart_policy,
            step_arena=self.step_arena is not None,
        )

    def _make_producer_pool(self):
        """Spin up the batch-producer pool for pipelined (``n_producers >= 1``) runs."""
        from repro.engine.parallel import ProducerPool

        return ProducerPool(
            self._producer_factory(),
            n_producers=self.n_producers,
            prefetch_depth=self.prefetch_depth,
            compute_dtype=self.dtype_policy.compute_dtype,
            restart_policy=self.restart_policy,
        )

    def _producer_factory(self):
        factory = self.loop.producer_factory()
        if factory is None:
            raise ValueError(
                f"{type(self.loop).__name__} does not support pipelined training "
                "(producer_factory() returned None); use n_producers=0"
            )
        return factory

    def _fit(self, epochs: int) -> History:
        own_producers = None
        producers = self.producer_pool
        if self.n_producers >= 1 and producers is None:
            if self.prefetch_depth == 0:
                # inline sequential reference: the identical schedule and
                # step-keyed streams, executed synchronously on the parent
                self._inline_producer = self._producer_factory()(0)
            else:
                producers = own_producers = self._make_producer_pool()
        try:
            if self.worker_pool is not None:  # borrowed: the owner closes it
                return self._fit_epochs(int(epochs), self.worker_pool, producers)
            pool = self._make_worker_pool() if self.n_workers > 1 else None
            try:
                return self._fit_epochs(int(epochs), pool, producers)
            finally:
                if pool is not None:
                    pool.close()
        finally:
            if own_producers is not None:
                own_producers.close()

    def _inline_epoch_batches(self, epoch: int, payloads, *, start_step: int = 0):
        """Produce ``payloads`` synchronously on the parent, step-keyed.

        Used for the ``prefetch_depth=0`` sequential reference *and* as the
        degradation target when a producer pool exhausts its restart budget
        — the step keying makes both bit-identical to the pipelined run.
        """
        import time as time_module

        if self._inline_producer is None:
            self._inline_producer = self._producer_factory()(0)
        stats = {"steps": 0, "produce_seconds": 0.0, "stall_seconds": 0.0,
                 "oversize_arrays": 0, "restarts": 0, "replayed_steps": 0,
                 "n_producers": 0.0, "prefetch_depth": 0.0}
        wall_start = time_module.perf_counter()
        try:
            for offset, payload in enumerate(payloads):
                start = time_module.perf_counter()
                produced = self._inline_producer.produce(epoch, start_step + offset, payload)
                stats["produce_seconds"] += time_module.perf_counter() - start
                stats["steps"] += 1
                yield produced
        finally:
            wall = time_module.perf_counter() - wall_start
            stats["wall_seconds"] = wall
            stats["occupancy"] = stats["produce_seconds"] / wall if wall > 0 else 0.0
            self.pipeline_stats.append({"epoch": epoch, **stats})

    def _degrade(self, epoch: int, producers, error) -> None:
        """Record a producer-pool failure and switch this fit to inline mode."""
        import warnings

        restarts = int(getattr(producers, "restart_count", 0))
        self._degraded = True
        self.degradation_events.append(
            {"epoch": int(epoch), "restarts": restarts, "error": str(error)}
        )
        warnings.warn(
            f"batch producers unrecoverable after {restarts} restart(s); "
            "continuing on the inline sequential path — the loss curve is "
            "unchanged (step-keyed streams), only the prefetch overlap is lost",
            RuntimeWarning,
            stacklevel=2,
        )

    def _pipeline_epoch_batches(self, epoch: int, producers):
        """Produced batches of one pipelined epoch, in schedule order."""
        from repro.engine.parallel import WorkerError

        payloads = self.loop.pipeline_batches(epoch)
        if producers is None or self._degraded:
            # inline sequential reference (prefetch_depth=0) or degraded mode
            yield from self._inline_epoch_batches(epoch, payloads)
            return
        if producers.n_producers != self.n_producers:
            # elastic producers: a callback moved the knob between epochs
            producers.resize(self.n_producers)
        consumed = 0
        failure = None
        try:
            try:
                for batch in producers.stream(
                    epoch, payloads, slot_nbytes=self.loop.pipeline_slot_nbytes()
                ):
                    yield batch
                    consumed += 1
            finally:
                if producers.last_stream_stats is not None:
                    self.pipeline_stats.append(
                        {"epoch": epoch, **producers.last_stream_stats}
                    )
        except WorkerError as error:
            failure = error
        if failure is None:
            return
        # restart budget exhausted mid-epoch: the schedule is stateless, so
        # regenerate it, skip the consumed prefix and continue inline — the
        # remaining steps land bit-identically under their (epoch, step) keys
        import itertools

        self._degrade(epoch, producers, failure)
        remaining = itertools.islice(iter(self.loop.pipeline_batches(epoch)), consumed, None)
        yield from self._inline_epoch_batches(epoch, remaining, start_step=consumed)

    def pipeline_summary(self) -> dict[str, float]:
        """Aggregate produce/stall/occupancy stats over the recorded epochs.

        When the trainer was built with ``profile=True`` the cumulative
        per-phase seconds are appended as ``profile_<phase>_seconds`` keys.
        """
        summary: dict[str, float] = {}
        if self.pipeline_stats:
            produce = sum(entry["produce_seconds"] for entry in self.pipeline_stats)
            stall = sum(entry["stall_seconds"] for entry in self.pipeline_stats)
            wall = sum(entry["wall_seconds"] for entry in self.pipeline_stats)
            occupancies = [entry["occupancy"] for entry in self.pipeline_stats]
            summary = {
                "produce_seconds": produce,
                "consumer_stall_seconds": stall,
                "wall_seconds": wall,
                "producer_occupancy": sum(occupancies) / len(occupancies),
                "oversize_arrays": sum(
                    entry["oversize_arrays"] for entry in self.pipeline_stats
                ),
                "steps": sum(entry["steps"] for entry in self.pipeline_stats),
                "restarts": sum(entry.get("restarts", 0) for entry in self.pipeline_stats),
                "replayed_steps": sum(
                    entry.get("replayed_steps", 0) for entry in self.pipeline_stats
                ),
            }
        if self.profiler is not None:
            for phase, seconds in self.profiler.snapshot().items():
                summary[f"profile_{phase}_seconds"] = seconds
        return summary

    def arena_stats(self) -> dict[str, int]:
        """Hit/miss/bytes counters of the step arena ({} when disabled)."""
        if self.step_arena is None:
            return {}
        return self.step_arena.stats()

    def _fit_epochs(self, epochs: int, pool, producers=None) -> History:
        accumulation = next(
            (cb.steps for cb in self.callbacks if isinstance(cb, GradAccumulation)), 1
        )
        self.target_epochs = int(epochs)
        self.state.stop_training = False
        self.state.stop_reason = None
        self._emit("on_fit_start")
        for epoch in range(self.state.epoch, int(epochs)):
            self._emit("on_epoch_start", epoch)
            if self.n_producers >= 1:
                batches = self._pipeline_epoch_batches(epoch, producers)
                loss_fn = self.loop.consume_batch
            else:
                batches = self.loop.make_batches(self.rng, epoch)
                loss_fn = self.loop.batch_loss
            totals: dict[str, float] = {}
            n_batches = 0
            micro = 0
            aborted = False
            profile_start = (
                self.profiler.snapshot() if self.profiler is not None else None
            )
            batch_iter = enumerate(batches)
            while True:
                with profiled_phase("fetch"):
                    try:
                        step_in_epoch, batch = next(batch_iter)
                    except StopIteration:
                        break
                if micro == 0:
                    self.optimizer.zero_grad()
                if pool is not None:
                    with profiled_phase("workers"):
                        logs = pool.step(
                            self.loop.shard_batch(batch, pool.n_workers),
                            accumulate=micro > 0,
                            step_key=(epoch, step_in_epoch),
                        )
                else:
                    with profiled_phase("forward"):
                        losses = self._normalize_losses(loss_fn(batch))
                    with profiled_phase("backward"):
                        losses["loss"].backward()
                    logs = {
                        key: float(value.item()) if isinstance(value, Tensor) else float(value)
                        for key, value in losses.items()
                    }
                micro += 1
                self.state.batch += 1
                if micro >= accumulation:
                    self._finish_step(accumulation, micro)
                    micro = 0
                for key, value in logs.items():
                    totals[key] = totals.get(key, 0.0) + value
                n_batches += 1
                self._emit("on_batch_end", logs)
                if self.step_arena is not None:
                    # roll the pool generation: every per-step buffer becomes
                    # reusable (parameter gradients live in private buffers
                    # and survive accumulation windows)
                    self.step_arena.advance()
                if self.state.stop_training:
                    aborted = True
                    break
            if pool is not None and n_batches:
                # BN running stats only advance inside the workers; merge the
                # first shard's before epoch-end callbacks (or, on a mid-epoch
                # abort, the caller) observe the modules
                pool.sync_module_buffers(self.loop.named_modules())
            if aborted:
                if self.n_producers >= 1:
                    # close the produced-batch generator now (not at GC) so
                    # in-flight ring slots drain before anything else runs
                    batches.close()
                break
            if micro > 0:  # leftover partial accumulation window still steps
                self._finish_step(accumulation, micro)
            epoch_logs = {
                key: value / max(n_batches, 1) for key, value in totals.items()
            }
            epoch_logs["learning_rate"] = self.optimizer.lr
            if self.profiler is not None:
                for phase, seconds in self.profiler.snapshot().items():
                    epoch_logs[f"profile_{phase}_seconds"] = seconds - profile_start.get(
                        phase, 0.0
                    )
            for name in self.loop.metric_names():
                # an epoch with zero usable batches still records every
                # declared metric (as 0.0), keeping the seed loops' fixed
                # curve shape
                epoch_logs.setdefault(name, 0.0)
            self.state.epoch = epoch + 1
            self._emit("on_epoch_end", epoch_logs)
            if self.state.stop_training:
                break
        self._emit("on_fit_end")
        return self.history

    # ------------------------------------------------------------- checkpoints
    def save_checkpoint(self, path) -> str:
        """Write a resumable checkpoint bundle; returns the path written.

        The bundle holds the loop's module weights (``model.*``), the
        optimizer's moment arrays (``optimizer.*``) and, in the manifest, the
        progress counters, the scheduler state, the history and a snapshot of
        every RNG stream the loop consumes — restoring all of them via
        :meth:`resume` continues the run bit-identically.
        """
        from repro.api.bundle import save_bundle

        arrays: dict[str, np.ndarray] = {}
        for name, module in self.loop.named_modules().items():
            for key, value in module.state_dict().items():
                arrays[f"model.{name}.{key}"] = value
        optimizer_meta: dict = {}
        for key, value in self.optimizer.state_dict().items():
            if isinstance(value, list):
                optimizer_meta[key] = {"__arrays__": len(value)}
                for index, array in enumerate(value):
                    arrays[f"optimizer.{key}.{index}"] = array
            else:
                optimizer_meta[key] = value
        manifest = {
            "estimator": CHECKPOINT_TAG,
            "kind": CHECKPOINT_KIND,
            "train_state": self.state.progress(),
            "history": self.history.metrics,
            "optimizer": optimizer_meta,
            "scheduler": None if self.scheduler is None else self.scheduler.state_dict(),
            "rngs": {
                name: get_rng_state(generator)
                for name, generator in self.loop.named_rngs().items()
            },
            # the pipeline cursor: epoch/step live in train_state; recording
            # the mode + seed keying here lets resume re-arm the *same* batch
            # schedule and per-step producer streams (SeedSequence([seed,
            # epoch, step]) needs nothing else to replay bit-identically)
            "pipeline": None
            if self.n_producers == 0
            else {
                "n_producers": self.n_producers,
                "prefetch_depth": self.prefetch_depth,
                "seed": self.loop.pipeline_seed(),
                "seed_keying": "SeedSequence([seed, epoch, step])",
            },
        }
        return save_bundle(path, arrays, manifest)

    def load_checkpoint(self, path) -> TrainState:
        """Restore trainer + loop state from a checkpoint written by
        :meth:`save_checkpoint` (without continuing training)."""
        from repro.api.bundle import BundleFormatError, load_bundle, sub_state

        if self.n_workers > 1:
            import warnings

            # checkpoints snapshot the parent-side streams only; worker
            # replicas restart their derived streams from position zero, so
            # a sharded resume is deterministic but NOT bit-identical to the
            # uninterrupted run (sequential resume keeps the full guarantee)
            warnings.warn(
                "resuming a sharded run (n_workers > 1): worker RNG streams "
                "restart from their derived seeds, so the continued run is "
                "not bit-identical to an uninterrupted one; resume with "
                "n_workers=1 for the bit-exact guarantee",
                RuntimeWarning,
                stacklevel=2,
            )

        arrays, manifest = load_bundle(path)
        if manifest.get("kind") != CHECKPOINT_KIND:
            raise BundleFormatError(
                f"{str(path)!r} is not a trainer checkpoint "
                f"(kind={manifest.get('kind')!r}); estimator bundles load via "
                "repro.api.load_estimator"
            )
        for name, module in self.loop.named_modules().items():
            module.load_state_dict(sub_state(arrays, f"model.{name}"))
        optimizer_state: dict = {}
        for key, value in manifest.get("optimizer", {}).items():
            if isinstance(value, dict) and "__arrays__" in value:
                optimizer_state[key] = [
                    arrays[f"optimizer.{key}.{index}"]
                    for index in range(int(value["__arrays__"]))
                ]
            else:
                optimizer_state[key] = value
        self.optimizer.load_state_dict(optimizer_state)
        scheduler_state = manifest.get("scheduler")
        if self.scheduler is not None and scheduler_state is not None:
            self.scheduler.load_state_dict(scheduler_state)
        rngs = self.loop.named_rngs()
        for name, stored in (manifest.get("rngs") or {}).items():
            if name in rngs:
                set_rng_state(rngs[name], stored)
        self.history.load(manifest.get("history") or {})
        self.state.restore_progress(manifest["train_state"])
        # the checkpoint's pipeline mode wins: pipelined and sequential paths
        # key their per-batch RNG streams differently, so resuming in the
        # other mode would silently break the bit-identical-resume guarantee.
        # The producer *count* itself is curve-free — restoring it (and the
        # prefetch depth) just reproduces the recorded configuration.
        pipeline = manifest.get("pipeline")
        if pipeline is None:
            self.n_producers = 0
        elif self.n_workers == 1:  # sharded trainers keep their (warned) path
            self.n_producers = int(pipeline["n_producers"])
            if self.producer_pool is None:
                self.prefetch_depth = int(pipeline["prefetch_depth"])
        return self.state

    def resume(self, path, *, epochs: int | None = None) -> History:
        """Restore a checkpoint and, when ``epochs`` is given, continue to it.

        ``epochs`` is the total epoch target (as in :meth:`fit`); omit it to
        just restore state and call :meth:`fit` separately.  Optimizer
        moments, scheduler step and every per-epoch RNG stream come back
        exactly as saved, so the continued run is bit-identical to one that
        was never interrupted.
        """
        self.load_checkpoint(path)
        if epochs is not None:
            return self.fit(epochs)
        return self.history
