"""Sharded data-parallel gradient workers and pipelined batch producers.

A :class:`GradientWorkerPool` keeps ``n_workers`` **persistent** spawn-safe
``multiprocessing`` processes alive across the whole ``fit``.  Each worker
builds one replica of the training loop's modules (via the loop's picklable
``worker_factory``), and every optimizer step then runs as:

1. the parent packs the current parameters into a shared-memory buffer
   (one contiguous block per dtype — see :class:`repro.nn.flat.FlatLayout`);
2. each worker receives its batch shard through a shared-memory input arena
   (arrays are written once and read as views — cached render-cache images
   are never pickled per batch), refreshes its replica's parameters from the
   shared buffer, computes ``batch_loss`` and backpropagates;
3. each worker packs its gradients into its own shared segment, and the
   parent reduces them in **fixed ascending worker order** with per-shard
   weights ``n_w / n_total`` before stepping the optimizer as usual.

Determinism contract
--------------------
* ``n_workers=1`` never reaches this module: the trainer runs the plain
  sequential path, bit-identical to earlier PRs.
* Multi-worker runs are deterministic *at a fixed worker count*: shards are
  contiguous in-order splits, every worker's stochastic components draw from
  per-shard streams derived as ``SeedSequence([seed, worker_index,
  n_workers])``, and the gradient reduction order is fixed — a float64 run
  repeated with the same ``n_workers`` reproduces its loss curve exactly.
* Contrastive objectives see per-shard negatives (as in standard data-
  parallel contrastive training), so a 2-worker curve is not the 1-worker
  curve — only reproducible against itself.

Pipelined producers (PR 8)
--------------------------
:class:`ProducerPool` runs the *produce* side of a training step (render +
augment) in ``n_producers`` persistent spawn processes ahead of the gradient
step.  Finished batches are published through a bounded shared-memory
:class:`RingArena` (``prefetch_depth`` slots, per-slot acquire/release
handshake on the parent), so the consumer reads zero-copy views while the
producers already work on later steps.  Determinism is *step-keyed*: every
per-batch stochastic stream derives from ``SeedSequence([seed, epoch,
step])`` (:func:`derive_step_seed`), never from arrival order or producer
identity — the pipelined loss curve is bit-identical at any producer count,
and producers can grow/shrink between epochs without changing it.

Self-healing (PR 9)
-------------------
Both pools accept a :class:`RestartPolicy`.  With one armed, a crashed
producer or gradient worker is respawned (bounded restarts, exponential
backoff with deterministic jitter) and the in-flight steps are replayed:
producers re-run exactly the steps whose results were never consumed (their
streams are step-keyed, so the replay is bit-identical), and a respawned
gradient worker re-receives its shard message and reseeds per
:func:`derive_worker_step_seed` before recomputing — the reduced gradient
matches the no-crash run bit for bit.  Exhausting the restart budget raises
:class:`WorkerError` as before (the trainer then degrades to the inline
path).  Fault-injection sites ``producer.step`` and ``worker.reduce``
(:mod:`repro.utils.faults`) sit inside the child step handlers so chaos
tests can kill children at exact step indices.
"""

from __future__ import annotations

import atexit
import pickle
import random
import time
import traceback
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.nn.flat import FlatLayout
from repro.utils.faults import fault_point

#: spawn is the one start method that is safe everywhere (threads, BLAS);
#: fork would duplicate the parent's whole heap including the render cache
DEFAULT_START_METHOD = "spawn"

#: seconds to wait for a worker reply before declaring it dead
DEFAULT_TIMEOUT = 120.0


class WorkerError(RuntimeError):
    """A gradient worker raised; carries the remote traceback."""


class RestartPolicy:
    """Bounded-restart policy with deterministic exponential backoff.

    The delay before the ``k``-th restart (0-based) is ``backoff_base_s *
    backoff_factor**k * (1 + jitter * u_k)`` where ``u_k`` is drawn from
    ``random.Random(f"{seed}:{k}")`` — the backoff schedule is a pure function
    of the policy, so chaos runs replay exactly.  ``sleep`` is injectable:
    tier-1 chaos tests pass a recording fake so no real time is spent.
    """

    def __init__(
        self,
        max_restarts: int = 2,
        *,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        sleep=None,
    ):
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.max_restarts = int(max_restarts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_factor = float(backoff_factor)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.sleep = time.sleep if sleep is None else sleep

    def delay_s(self, restart_index: int) -> float:
        """Backoff delay before restart ``restart_index`` (deterministic)."""
        fraction = random.Random(f"{self.seed}:{int(restart_index)}").random()
        return (
            self.backoff_base_s
            * self.backoff_factor ** int(restart_index)
            * (1.0 + self.jitter * fraction)
        )

    def pause(self, restart_index: int) -> float:
        """Sleep out the backoff for ``restart_index``; returns the delay."""
        delay = self.delay_s(restart_index)
        self.sleep(delay)
        return delay


def derive_worker_seed(seed: int, worker_index: int, n_workers: int) -> np.random.SeedSequence:
    """The per-shard RNG root: deterministic in (seed, shard, worker count)."""
    return np.random.SeedSequence([int(seed), int(worker_index), int(n_workers)])


def derive_worker_step_seed(
    seed: int, worker_index: int, n_workers: int, epoch: int, step: int
) -> np.random.SeedSequence:
    """The per-(shard, step) RNG root of the sharded gradient path.

    Replicas that expose ``reseed_for_step(epoch, step)`` re-derive their
    stochastic streams from this key before every ``batch_loss`` — making
    each sharded step a pure function of ``(seed, shard, worker count,
    epoch, step)`` instead of the worker's stream *history*.  That is what
    lets a respawned worker replay a step bit-identically.
    """
    return np.random.SeedSequence(
        [int(seed), int(worker_index), int(n_workers), int(epoch), int(step)]
    )


def derive_step_seed(seed: int, epoch: int, step: int) -> np.random.SeedSequence:
    """The per-batch RNG root of the pipelined path.

    Keyed by *schedule position*, never by which producer runs the batch or
    when it finishes — so the pipelined loss curve is invariant to the
    producer count, the prefetch depth and mid-training producer resizes,
    and a resume at ``(epoch, step)`` replays the identical streams.
    """
    return np.random.SeedSequence([int(seed), int(epoch), int(step)])


# --------------------------------------------------------------------------- #
# shared-memory helpers
# --------------------------------------------------------------------------- #
class _SharedBlock:
    """One shared-memory segment holding per-dtype 1-D arrays."""

    def __init__(self, nbytes_by_dtype: dict[str, int], *, create: bool, name: str | None = None):
        offsets, total = {}, 0
        for key, nbytes in sorted(nbytes_by_dtype.items()):
            offsets[key] = total
            total += max(int(nbytes), 0)
        self._shm = (
            SharedMemory(create=True, size=max(total, 1))
            if create
            else SharedMemory(name=name)
        )
        self.name = self._shm.name
        self.arrays: dict[str, np.ndarray] = {}
        for key, nbytes in nbytes_by_dtype.items():
            count = int(nbytes) // np.dtype(key).itemsize
            self.arrays[key] = np.ndarray(
                (count,), dtype=key, buffer=self._shm.buf, offset=offsets[key]
            )

    def close(self, *, unlink: bool) -> None:
        self.arrays = {}
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover - teardown race
            pass


class InputArena:
    """A byte arena batch arrays are written into (writer side).

    Arrays travel as ``(offset, dtype, shape)`` descriptors in the step
    message; the worker maps them back as views on its attached segment.  A
    batch larger than the arena (only possible if later batches exceed the
    first, which sizing with ``growth`` head-room avoids) falls back to
    pickling those arrays through the queue — correct, just slower.

    The arena is transport-agnostic: the gradient workers attach to it across
    a process boundary by segment ``name``, while same-process readers (e.g.
    the serving micro-batcher, :mod:`repro.serving`) map descriptors straight
    back through :meth:`view` — zero-copy either way.
    """

    def __init__(self, growth: float = 1.5):
        self.growth = growth
        self._shm: SharedMemory | None = None
        self.name: str | None = None
        self.capacity = 0
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def ensure(self, nbytes: int) -> None:
        if nbytes <= self.capacity:
            return
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
        self.capacity = int(nbytes * self.growth) + 64
        self._shm = SharedMemory(create=True, size=self.capacity)
        self.name = self._shm.name

    def write(self, array: np.ndarray):
        """Write one array; returns its descriptor or None if it cannot fit."""
        array = np.ascontiguousarray(array)
        offset = self._cursor
        if self._shm is None or offset + array.nbytes > self.capacity:
            return None
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf, offset=offset)
        view[...] = array
        self._cursor = offset + array.nbytes
        return (offset, array.dtype.name, tuple(array.shape))

    def view(self, descriptor) -> np.ndarray:
        """Map a :meth:`write` descriptor back to an array view (same process).

        The returned array aliases the arena segment: it stays valid until the
        arena is :meth:`reset` (and rewritten) or closed.  Descriptors from
        consecutive ``write`` calls are laid out back to back, so a descriptor
        whose shape is extended by a leading batch axis views all of them at
        once — the serving path's zero-copy batch assembly.
        """
        if self._shm is None:
            raise ValueError("arena holds no segment; write() something first")
        offset, dtype, shape = descriptor
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)

    def close(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - teardown race
                pass
            self._shm = None


#: backwards-compatible private alias (the arena predates its public name)
_InputArena = InputArena


class _SlotWriter:
    """Writer over one ring slot; duck-types ``InputArena.write`` for
    :func:`_encode_batch`.  Arrays that do not fit the remaining slot space
    get ``None`` back (→ pickle fallback through the result queue)."""

    def __init__(self, buf, start: int, limit: int):
        self._buf = buf
        self._start = start
        self._limit = limit
        self._cursor = start

    def write(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        offset = self._cursor
        if offset + array.nbytes > self._limit:
            return None
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._buf, offset=offset)
        view[...] = array
        self._cursor = offset + array.nbytes
        return (offset, array.dtype.name, tuple(array.shape))


class RingArena:
    """A bounded multi-slot shared-memory ring for produced batches.

    The multi-slot generalisation of :class:`InputArena`: one segment of
    ``depth`` equal slots, where step ``s`` of an epoch always lands in slot
    ``s % depth`` (:meth:`slot_of`).  The parent owns the free/ready
    handshake — :meth:`acquire` marks a step's slot busy before the produce
    message is sent, :meth:`release` frees it once the consumer finishes the
    step — so a slot is only ever rewritten after its previous occupant was
    fully consumed.  Producers attach by ``name`` and write through
    :meth:`writer`; descriptors are absolute ``(offset, dtype, shape)``
    triples the consumer maps back as zero-copy views via :meth:`view`.

    A batch larger than ``slot_nbytes`` does not deadlock the ring: the
    writer rejects the overflowing arrays and they travel pickled through the
    result queue instead (correct, just slower — counted per stream).
    """

    #: slot sizes are rounded up to this multiple so every slot start is
    #: cache-line aligned
    ALIGN = 64

    def __init__(
        self, depth: int, slot_nbytes: int, *, create: bool = True, name: str | None = None
    ):
        if depth < 2:
            raise ValueError(f"RingArena needs depth >= 2 (double-buffered), got {depth}")
        if slot_nbytes < 1:
            raise ValueError(f"slot_nbytes must be positive, got {slot_nbytes}")
        self.depth = int(depth)
        self.slot_nbytes = -(-int(slot_nbytes) // self.ALIGN) * self.ALIGN
        self._shm = (
            SharedMemory(create=True, size=self.depth * self.slot_nbytes)
            if create
            else SharedMemory(name=name)
        )
        self.name = self._shm.name
        self._busy: set[int] = set()

    @classmethod
    def attach(cls, name: str, depth: int, slot_nbytes: int) -> "RingArena":
        """Map an existing ring by name (producer side)."""
        return cls(depth, slot_nbytes, create=False, name=name)

    @property
    def spec(self) -> tuple[str, int, int]:
        """``(name, depth, slot_nbytes)`` — enough for a producer to attach."""
        return (self.name, self.depth, self.slot_nbytes)

    def slot_of(self, step: int) -> int:
        return int(step) % self.depth

    # ------------------------------------------------------- parent handshake
    def acquire(self, step: int) -> int | None:
        """Claim ``step``'s slot for writing; ``None`` while it is still busy.

        Backpressure lives here: with every slot busy (consumer stalled),
        acquire keeps returning ``None`` and the submitter must wait for a
        :meth:`release` before dispatching more work.
        """
        slot = self.slot_of(step)
        if slot in self._busy:
            return None
        self._busy.add(slot)
        return slot

    def release(self, step: int) -> None:
        """Free ``step``'s slot after its batch was fully consumed."""
        self._busy.discard(self.slot_of(step))

    @property
    def n_busy(self) -> int:
        return len(self._busy)

    # --------------------------------------------------------------- data I/O
    def writer(self, slot: int) -> _SlotWriter:
        """A fresh bounded writer over one slot (producer side)."""
        if not 0 <= int(slot) < self.depth:
            raise ValueError(f"slot {slot} out of range for depth {self.depth}")
        start = int(slot) * self.slot_nbytes
        return _SlotWriter(self._shm.buf, start, start + self.slot_nbytes)

    def view(self, descriptor) -> np.ndarray:
        """Map a writer descriptor back to a zero-copy array view.

        Valid until the slot holding it is :meth:`release`-d and rewritten —
        the consumer must finish (or copy) before releasing.
        """
        offset, dtype, shape = descriptor
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)

    def close(self, *, unlink: bool) -> None:
        self._busy.clear()
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover - teardown race
            pass


def _encode_batch(batch, arena: InputArena | None):
    """Replace ndarrays in a (possibly nested) batch with arena descriptors."""
    if isinstance(batch, np.ndarray):
        descriptor = arena.write(batch) if arena is not None else None
        if descriptor is None:
            return ("pickle", batch)
        return ("shm", descriptor)
    if isinstance(batch, (tuple, list)):
        return ("seq", type(batch).__name__, [_encode_batch(item, arena) for item in batch])
    return ("raw", batch)


def _decode_batch(encoded, shm_buf, *, copy: bool = True):
    """Rebuild a batch from :func:`_encode_batch` output.

    With ``copy=True`` (the gradient-worker default) shared-memory arrays are
    **copied** out of the arena so the parent can start writing the next step
    while the worker still computes.  ``copy=False`` returns views — the ring
    consumer's zero-copy path, safe because a ring slot is only released
    (and thus rewritten) after the consumer finishes the step.
    """
    kind = encoded[0]
    if kind == "shm":
        offset, dtype, shape = encoded[1]
        view = np.ndarray(shape, dtype=dtype, buffer=shm_buf, offset=offset)
        return view.copy() if copy else view
    if kind == "pickle":
        return encoded[1]
    if kind == "seq":
        items = [_decode_batch(item, shm_buf, copy=copy) for item in encoded[2]]
        return tuple(items) if encoded[1] == "tuple" else items
    return encoded[1]


def _count_pickled(encoded) -> int:
    """Arrays in an encoded batch that overflowed shared memory into pickles."""
    kind = encoded[0]
    if kind == "pickle":
        return 1
    if kind == "seq":
        return sum(_count_pickled(item) for item in encoded[2])
    return 0


def _estimate_nbytes(batch) -> int:
    if isinstance(batch, np.ndarray):
        return batch.nbytes
    if isinstance(batch, (tuple, list)):
        return sum(_estimate_nbytes(item) for item in batch)
    return 0


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _module_buffer_state(named_modules: dict) -> dict[str, np.ndarray]:
    """Non-parameter state (e.g. BN running stats) of every named module."""
    state: dict[str, np.ndarray] = {}
    for name, module in named_modules.items():
        parameter_keys = {key for key, _ in module.named_parameters()}
        for key, value in module.state_dict().items():
            if key not in parameter_keys:
                state[f"{name}.{key}"] = value
    return state


def _apply_module_buffers(module, updates: dict[str, np.ndarray], prefix: str = "") -> None:
    """Set only the buffer entries of ``updates`` on ``module``, recursively.

    The targeted counterpart of :func:`_module_buffer_state` — parameters are
    untouched (the parent's are authoritative), so merging worker buffers
    costs a handful of small array copies instead of a full ``state_dict``
    round-trip per module per epoch.
    """
    for key in module._buffers():
        value = updates.get(f"{prefix}{key}")
        if value is not None:
            setattr(module, key, np.asarray(value).copy())
    for child_name, child in module._modules.items():
        _apply_module_buffers(child, updates, f"{prefix}{child_name}.")


def _worker_main(
    worker_index: int,
    n_workers: int,
    factory,
    compute_dtype: str,
    signature,
    param_block_spec,
    grad_block_spec,
    command_queue,
    result_queue,
    step_arena: bool = True,
) -> None:
    """Entry point of one gradient worker process."""
    from repro.nn.arena import StepArena, set_active_arena
    from repro.nn.tensor import Tensor, set_default_dtype

    arenas: dict[str, SharedMemory] = {}
    param_block = grad_block = None
    try:
        set_default_dtype(np.dtype(compute_dtype))
        # each replica owns a private training-step buffer pool — arenas are
        # process-local, so shards pool independently and stay bit-identical
        # to the sequential path (pooling never changes values)
        buffer_pool = StepArena() if step_arena else None
        set_active_arena(buffer_pool)
        replica = factory(worker_index, n_workers)
        layout = FlatLayout(replica.parameters())
        if layout.signature() != signature:
            raise RuntimeError(
                f"worker {worker_index}: replica parameters do not match the "
                f"parent layout ({len(layout.signature())} vs {len(signature)} slots)"
            )
        param_block = _SharedBlock(param_block_spec[1], create=False, name=param_block_spec[0])
        grad_block = _SharedBlock(grad_block_spec[1], create=False, name=grad_block_spec[0])
        seen_version = -1
        result_queue.put((worker_index, "ready", None))
        while True:
            message = command_queue.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "step":
                _, version, encoded, arena_name, step_key = message
                shm_buf = None
                if arena_name is not None:
                    arena = arenas.get(arena_name)
                    if arena is None:
                        # a new name supersedes this worker's one arena —
                        # close the stale mapping so the parent's unlink can
                        # actually reclaim the old segment's memory
                        for stale in arenas.values():
                            stale.close()
                        arenas.clear()
                        arena = SharedMemory(name=arena_name)
                        arenas[arena_name] = arena
                    shm_buf = arena.buf
                if version != seen_version:  # params only move on optimizer steps
                    layout.unpack_data(param_block.arrays)
                    seen_version = version
                if step_key is not None:
                    # step-keyed streams (not stream history) — a respawned
                    # worker replays this step bit-identically
                    reseed = getattr(replica, "reseed_for_step", None)
                    if reseed is not None:
                        reseed(int(step_key[0]), int(step_key[1]))
                batch = _decode_batch(encoded, shm_buf)
                for param in layout.parameters:
                    param.grad = None
                losses = replica.batch_loss(batch)
                if isinstance(losses, Tensor):
                    losses = {"loss": losses}
                losses["loss"].backward()
                fault_point("worker.reduce")
                layout.pack_grads(grad_block.arrays)
                logs = {
                    key: float(value.item()) if isinstance(value, Tensor) else float(value)
                    for key, value in losses.items()
                }
                if buffer_pool is not None:
                    buffer_pool.advance()
                result_queue.put((worker_index, "ok", logs))
            elif kind == "buffers":
                result_queue.put(
                    (worker_index, "buffers", _module_buffer_state(replica.named_modules()))
                )
    except Exception:  # pragma: no cover - exercised via WorkerError tests
        result_queue.put((worker_index, "error", traceback.format_exc()))
    finally:
        for arena in arenas.values():
            arena.close()
        if param_block is not None:
            param_block.close(unlink=False)
        if grad_block is not None:
            grad_block.close(unlink=False)


# --------------------------------------------------------------------------- #
# parent-side pool
# --------------------------------------------------------------------------- #
class GradientWorkerPool:
    """Persistent pool of sharded gradient workers (parent side).

    Parameters
    ----------
    factory:
        Picklable callable ``factory(worker_index, n_workers)`` returning a
        replica object with ``parameters()``, ``batch_loss(batch)`` and
        ``named_modules()`` (see ``TrainLoop.worker_factory``).
    parameters:
        The parent's parameters, in the same order the replica yields them.
    n_workers:
        Number of worker processes (must be >= 2; ``n_workers=1`` is the
        sequential trainer path by contract).
    compute_dtype:
        Tensor default dtype installed in every worker (the trainer's
        ``DtypePolicy.compute_dtype``), so shards compute in the same
        precision as the sequential path.
    restart_policy:
        Optional :class:`RestartPolicy`.  When set, a worker that dies (or
        errors) mid-step is respawned under the same shard index and its
        step message is re-sent; replicas exposing ``reseed_for_step`` then
        recompute the identical gradient.  ``None`` keeps the historical
        fail-fast behaviour.
    step_arena:
        Give every worker replica a private
        :class:`~repro.nn.arena.StepArena` so its forward/backward passes
        pool buffers like the sequential trainer's (default on; values are
        unchanged either way).
    """

    def __init__(
        self,
        factory,
        parameters,
        *,
        n_workers: int,
        compute_dtype: str = "float64",
        start_method: str = DEFAULT_START_METHOD,
        timeout: float = DEFAULT_TIMEOUT,
        restart_policy: RestartPolicy | None = None,
        step_arena: bool = True,
    ):
        if n_workers < 2:
            raise ValueError(f"GradientWorkerPool needs n_workers >= 2, got {n_workers}")
        try:
            pickle.dumps(factory)
        except Exception as error:
            raise ValueError(
                f"worker_factory must be picklable for spawn-based workers: {error}"
            ) from error
        self.n_workers = int(n_workers)
        self.timeout = float(timeout)
        self._layout = FlatLayout(parameters)
        nbytes = self._layout.nbytes()
        self._param_block = _SharedBlock(nbytes, create=True)
        self._grad_blocks = [_SharedBlock(nbytes, create=True) for _ in range(self.n_workers)]
        self._arenas = [InputArena() for _ in range(self.n_workers)]
        self._param_version = 0
        self._closed = False
        self._broken = False
        self._restart_policy = restart_policy
        self._restarts_used = 0
        #: workers respawned over the pool's lifetime (observability)
        self.restart_count = 0

        context = get_context(start_method)
        self._context = context
        self._factory = factory
        self._compute_dtype = str(compute_dtype)
        self._step_arena = bool(step_arena)
        self._nbytes = nbytes
        self._command_queues = [context.Queue() for _ in range(self.n_workers)]
        self._result_queue = context.Queue()
        signature = self._layout.signature()
        self._signature = signature
        self._processes = []
        for index in range(self.n_workers):
            process = context.Process(
                target=_worker_main,
                args=(
                    index,
                    self.n_workers,
                    factory,
                    compute_dtype,
                    signature,
                    (self._param_block.name, nbytes),
                    (self._grad_blocks[index].name, nbytes),
                    self._command_queues[index],
                    self._result_queue,
                    self._step_arena,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._collect({index: "ready" for index in range(self.n_workers)})
        # an abandoned pool (estimator dropped without shutdown_workers())
        # must never leave the interpreter hanging on live worker processes
        # or queue feeder threads; close() unregisters this again
        atexit.register(self.close)

    # ----------------------------------------------------------------- plumbing
    @property
    def usable(self) -> bool:
        """True while the pool can still run steps (not closed, not broken)."""
        return not self._closed and not self._broken

    def _may_restart(self, count: int = 1) -> bool:
        policy = self._restart_policy
        return policy is not None and self._restarts_used + count <= policy.max_restarts

    def _respawn_worker(self, index: int) -> None:
        """Reap a dead worker and bring up a replacement under the same shard.

        The replacement attaches to the same shared param/grad blocks and the
        same command queue; its first step message re-broadcasts parameters
        (``seen_version`` starts at -1), so no extra sync is needed.
        """
        import queue as queue_module

        process = self._processes[index]
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - hung worker
            process.terminate()
            process.join(timeout=5.0)
        # a worker that died before reading its command would leave the step
        # message queued — drain so the replacement does not run it twice
        while True:
            try:
                self._command_queues[index].get_nowait()
            except (queue_module.Empty, OSError):
                break
        replacement = self._context.Process(
            target=_worker_main,
            args=(
                index,
                self.n_workers,
                self._factory,
                self._compute_dtype,
                self._signature,
                (self._param_block.name, self._nbytes),
                (self._grad_blocks[index].name, self._nbytes),
                self._command_queues[index],
                self._result_queue,
                self._step_arena,
            ),
            daemon=True,
        )
        replacement.start()
        self._processes[index] = replacement
        self.restart_count += 1

    def _collect(
        self, expected: dict[int, str], *, resend: dict[int, tuple] | None = None
    ) -> dict[int, object]:
        """Gather one reply per expected worker, surfacing remote errors.

        Without ``resend`` (or without a restart policy) any failure marks
        the pool *broken*: replies from workers that were still in flight
        stay in the result queue, so a later ``step`` could otherwise pair a
        stale gradient with a new batch.

        With ``resend`` (the step path) a dead or errored worker is
        respawned — backoff, same shard index — and its original step
        message from ``resend`` is re-sent once the replacement reports
        ready; collection then continues until every shard replied.
        """
        import queue as queue_module

        remaining = dict(expected)
        replies: dict[int, object] = {}
        while remaining:
            failed: list[int] = []
            try:
                worker_index, kind, payload = self._result_queue.get(timeout=self.timeout)
            except queue_module.Empty:
                dead = [i for i in remaining if not self._processes[i].is_alive()]
                if not dead or resend is None or not self._may_restart(len(dead)):
                    self._broken = True
                    raise WorkerError(
                        f"timed out waiting for gradient workers (dead: {dead or 'none'})"
                    ) from None
                failed = dead
            else:
                if kind == "error":
                    if (
                        resend is None
                        or worker_index not in resend
                        or not self._may_restart()
                    ):
                        self._broken = True
                        raise WorkerError(f"gradient worker {worker_index} failed:\n{payload}")
                    failed = [worker_index]
                elif kind != remaining.get(worker_index):
                    self._broken = True
                    raise WorkerError(
                        f"protocol error: worker {worker_index} sent {kind!r}, "
                        f"expected {remaining.get(worker_index)!r}"
                    )
                elif kind == "ready" and resend is not None and worker_index in resend:
                    # replacement is up: replay its shard, then await the "ok"
                    self._command_queues[worker_index].put(resend[worker_index])
                    remaining[worker_index] = "ok"
                    continue
                else:
                    replies[worker_index] = payload
                    del remaining[worker_index]
                    continue
            for worker_index in failed:
                self._restarts_used += 1
                self._restart_policy.pause(self._restarts_used - 1)
                self._respawn_worker(worker_index)
                remaining[worker_index] = "ready"
        return replies

    # --------------------------------------------------------------------- step
    def step(
        self, shards, *, accumulate: bool = False, step_key: tuple[int, int] | None = None
    ) -> dict[str, float]:
        """Run one sharded forward/backward; deposit gradients on the parent.

        ``shards`` is ``[(batch, weight), ...]`` from ``TrainLoop.
        shard_batch`` (weights are shard sample counts).  Returns the
        shard-weighted metric logs.  Gradients land in each parameter's
        ``.grad`` — reduced in fixed worker order — ready for callbacks and
        ``optimizer.step()`` exactly like a sequential backward.

        ``step_key`` is the ``(epoch, step)`` schedule position: replicas
        exposing ``reseed_for_step`` re-derive their streams from it each
        step (:func:`derive_worker_step_seed`), which is what makes a
        respawn-and-replay under a :class:`RestartPolicy` bit-identical.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if self._broken:
            raise RuntimeError(
                "worker pool is broken after a prior worker error; "
                "close it and create a new pool"
            )
        shards = [(batch, float(weight)) for batch, weight in shards if weight > 0]
        if not shards:
            raise ValueError("step() requires at least one non-empty shard")
        if len(shards) > self.n_workers:
            raise ValueError(f"got {len(shards)} shards for {self.n_workers} workers")
        if not accumulate:
            # parameters only change at optimizer steps, so micro-batches
            # inside an accumulation window reuse the last broadcast
            self._layout.pack_data(self._param_block.arrays)
            self._param_version += 1
        messages: dict[int, tuple] = {}
        for worker_index, (batch, _) in enumerate(shards):
            arena = self._arenas[worker_index]
            arena.ensure(_estimate_nbytes(batch))
            arena.reset()
            encoded = _encode_batch(batch, arena)
            message = ("step", self._param_version, encoded, arena.name, step_key)
            messages[worker_index] = message
            self._command_queues[worker_index].put(message)
        replies = self._collect(
            {index: "ok" for index in range(len(shards))},
            resend=messages if self._restart_policy is not None else None,
        )

        total_weight = sum(weight for _, weight in shards)
        weights = [weight / total_weight for _, weight in shards]
        self._layout.reduce_grads(
            [self._grad_blocks[index].arrays for index in range(len(shards))],
            weights,
            accumulate=accumulate,
        )
        logs: dict[str, float] = {}
        for worker_index, weight in enumerate(weights):
            for key, value in replies[worker_index].items():
                logs[key] = logs.get(key, 0.0) + weight * value
        return logs

    # ------------------------------------------------------------------ buffers
    def sync_module_buffers(self, named_modules: dict) -> None:
        """Pull non-parameter module state (BN running stats) from worker 0.

        Parameters are authoritative on the parent (it owns the optimizer);
        running statistics are only updated by worker-side forwards, so they
        are fetched from the first shard's replica — deterministic at a fixed
        worker count — and merged into the parent modules before epoch-end
        callbacks (checkpoints, serving) observe them.
        """
        if self._closed or self._broken:
            return
        self._command_queues[0].put(("buffers",))
        payload = self._collect({0: "buffers"})[0]
        for name, module in named_modules.items():
            prefix = f"{name}."
            updates = {
                key[len(prefix) :]: value
                for key, value in payload.items()
                if key.startswith(prefix)
            }
            if updates:
                _apply_module_buffers(module, updates)

    # -------------------------------------------------------------------- close
    def close(self) -> None:
        """Stop the workers and release every shared-memory segment.

        Idempotent: a second call (or a call racing interpreter shutdown) is
        a silent no-op.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for queue in self._command_queues:
            try:
                queue.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for queue in self._command_queues:
            queue.close()
        self._result_queue.close()
        self._param_block.close(unlink=True)
        for block in self._grad_blocks:
            block.close(unlink=True)
        for arena in self._arenas:
            arena.close()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------------- #
# pipelined batch producers
# --------------------------------------------------------------------------- #
def _producer_main(producer_index, factory, compute_dtype, work_queue, result_queue) -> None:
    """Entry point of one batch-producer process.

    Producers are homogeneous pullers on one shared work queue: any producer
    may run any step, because every stochastic stream a step consumes is
    derived from the step key (:func:`derive_step_seed`) inside ``produce``
    itself — producer identity never reaches the curve.
    """
    import time as time_module

    from repro.nn.tensor import set_default_dtype

    rings: dict[str, RingArena] = {}
    try:
        set_default_dtype(np.dtype(compute_dtype))
        producer = factory(producer_index)
        result_queue.put((producer_index, "ready", None))
        while True:
            message = work_queue.get()
            if message[0] == "stop":
                break
            _, generation, epoch, step, slot, ring_spec, payload = message
            fault_point("producer.step")
            start = time_module.perf_counter()
            produced = producer.produce(epoch, step, payload)
            name, depth, slot_nbytes = ring_spec
            ring = rings.get(name)
            if ring is None:
                # a new name supersedes the ring — close stale mappings so the
                # parent's unlink can reclaim the old segment
                for stale in rings.values():
                    stale.close(unlink=False)
                rings.clear()
                ring = RingArena.attach(name, depth, slot_nbytes)
                rings[name] = ring
            encoded = _encode_batch(produced, ring.writer(slot))
            seconds = time_module.perf_counter() - start
            result_queue.put(
                (
                    producer_index,
                    "ok",
                    (generation, step, encoded, seconds, _count_pickled(encoded)),
                )
            )
    except Exception:  # pragma: no cover - exercised via WorkerError tests
        result_queue.put((producer_index, "error", traceback.format_exc()))
    finally:
        for ring in rings.values():
            ring.close(unlink=False)


class ProducerPool:
    """Persistent pool of pipelined batch producers (parent side).

    Parameters
    ----------
    factory:
        Picklable ``factory(producer_index)`` returning a producer object
        with ``produce(epoch, step, payload)`` (see
        ``TrainLoop.producer_factory``).  Unlike ``worker_factory`` it takes
        no pool-size argument: per-step streams are keyed by
        :func:`derive_step_seed`, so replicas must not (and cannot) condition
        on the producer count — that is what makes :meth:`resize` curve-safe.
    n_producers:
        Producer process count (>= 1; ``0`` never reaches this class — the
        trainer runs the classic synchronous path).
    prefetch_depth:
        Ring slots, i.e. the maximum number of in-flight produced batches
        (>= 2, double-buffered minimum).
    compute_dtype:
        Tensor default dtype installed in every producer, matching the
        consumer's precision policy.
    restart_policy:
        Optional :class:`RestartPolicy`.  When set, a producer crash during
        :meth:`stream` triggers stop-the-world recovery: the remaining
        producers are cycled, the generation counter fences off stale
        results, and every in-flight step without a consumed result is
        resubmitted — step-keyed streams make the replayed batches
        bit-identical.  ``None`` keeps the historical fail-fast behaviour.
    """

    def __init__(
        self,
        factory,
        *,
        n_producers: int,
        prefetch_depth: int = 2,
        compute_dtype: str = "float64",
        start_method: str = DEFAULT_START_METHOD,
        timeout: float = DEFAULT_TIMEOUT,
        restart_policy: RestartPolicy | None = None,
    ):
        if n_producers < 1:
            raise ValueError(f"ProducerPool needs n_producers >= 1, got {n_producers}")
        if prefetch_depth < 2:
            raise ValueError(
                f"prefetch_depth must be >= 2 (double-buffered), got {prefetch_depth}"
            )
        try:
            pickle.dumps(factory)
        except Exception as error:
            raise ValueError(
                f"producer_factory must be picklable for spawn-based producers: {error}"
            ) from error
        self._factory = factory
        self.prefetch_depth = int(prefetch_depth)
        self.timeout = float(timeout)
        self._compute_dtype = str(compute_dtype)
        self._context = get_context(start_method)
        self._work_queue = self._context.Queue()
        self._result_queue = self._context.Queue()
        self._ring: RingArena | None = None
        self._closed = False
        self._broken = False
        self._processes: dict[int, object] = {}
        self._next_index = 0
        self._restart_policy = restart_policy
        self._restarts_used = 0
        self._target_producers = int(n_producers)
        #: fence for results: bumped on every recovery, pre-crash results are
        #: discarded by generation mismatch
        self._generation = 0
        #: recoveries and replayed steps over the pool's lifetime
        self.restart_count = 0
        self.replayed_steps = 0
        #: per-stream pipeline counters of the most recent epoch (see stream())
        self.last_stream_stats: dict[str, float] | None = None
        self._spawn(int(n_producers))
        atexit.register(self.close)

    @property
    def n_producers(self) -> int:
        return len(self._processes)

    @property
    def usable(self) -> bool:
        """True while the pool can still stream (not closed, not broken)."""
        return not self._closed and not self._broken

    def _may_restart(self) -> bool:
        policy = self._restart_policy
        return policy is not None and self._restarts_used < policy.max_restarts

    # ----------------------------------------------------------------- spawn
    def _spawn(self, count: int) -> None:
        fresh = []
        for _ in range(count):
            index = self._next_index
            self._next_index += 1
            process = self._context.Process(
                target=_producer_main,
                args=(
                    index,
                    self._factory,
                    self._compute_dtype,
                    self._work_queue,
                    self._result_queue,
                ),
                daemon=True,
            )
            process.start()
            self._processes[index] = process
            fresh.append(index)
        pending = set(fresh)
        while pending:
            index, kind, payload = self._wait_result()
            if kind == "ok":
                # a pre-recovery result that survived the drain; the
                # generation fence would discard it anyway
                continue
            if kind != "ready" or index not in pending:
                self._broken = True
                raise WorkerError(
                    f"protocol error: producer {index} sent {kind!r} during startup"
                )
            pending.discard(index)

    def _recover_producers(self) -> None:
        """Stop-the-world producer recovery after a crash.

        Producers are identity-free pullers on one shared work queue, so the
        cheapest correct recovery is to cycle the whole set: drain the work
        queue (no pre-crash produce message may reach a fresh producer),
        stop/reap every process, discard queued results, bump the generation
        fence and respawn to the target count.  The caller then resubmits
        the in-flight steps it still needs.
        """
        import queue as queue_module

        def drain_work_queue():
            while True:
                try:
                    self._work_queue.get_nowait()
                except (queue_module.Empty, OSError):
                    return

        drain_work_queue()
        for process in self._processes.values():
            if process.is_alive():
                try:
                    self._work_queue.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - teardown race
                    pass
        for process in self._processes.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._processes.clear()
        # a producer reaped mid-step may have left its stop unconsumed — a
        # fresh producer must not eat it and exit
        drain_work_queue()
        while True:
            try:
                self._result_queue.get(timeout=0.05)
            except (queue_module.Empty, OSError):
                break
        self._generation += 1
        self._broken = False
        self._spawn(self._target_producers)

    def _wait_result(self):
        """One result-queue message, with liveness-checked timeout.

        Waits in short slices so a crashed producer surfaces as a
        :class:`WorkerError` within a couple of seconds instead of
        deadlocking the ring until the full timeout.
        """
        import queue as queue_module
        import time as time_module

        deadline = time_module.monotonic() + self.timeout
        while True:
            try:
                message = self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [i for i, p in self._processes.items() if not p.is_alive()]
                if dead:
                    # give a queued error traceback one chance to beat the
                    # liveness check (the process may have died right after
                    # reporting)
                    try:
                        message = self._result_queue.get_nowait()
                    except queue_module.Empty:
                        self._broken = True
                        raise WorkerError(
                            f"producer process(es) {dead} died without a reply"
                        ) from None
                else:
                    if time_module.monotonic() > deadline:
                        self._broken = True
                        raise WorkerError(
                            "timed out waiting for batch producers (dead: none)"
                        ) from None
                    continue
            index, kind, payload = message
            if kind == "error":
                self._broken = True
                raise WorkerError(f"batch producer {index} failed:\n{payload}")
            return index, kind, payload

    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError("producer pool is closed")
        if self._broken:
            raise RuntimeError(
                "producer pool is broken after a prior producer error; "
                "close it and create a new pool"
            )

    # ---------------------------------------------------------------- stream
    def _ensure_ring(self, slot_nbytes: int) -> None:
        needed = max(int(slot_nbytes), 1)
        if self._ring is not None and needed <= self._ring.slot_nbytes:
            return
        if self._ring is not None:
            self._ring.close(unlink=True)  # producers drop their stale maps
        self._ring = RingArena(self.prefetch_depth, int(needed * 1.25) + 64)

    def stream(self, epoch: int, payloads, *, slot_nbytes: int = 0):
        """Yield produced batches for ``payloads`` in submission (step) order.

        ``payloads`` is a lazy iterable of per-step produce inputs; at most
        ``prefetch_depth`` are in flight (and thus parent-resident) at once,
        so an out-of-core epoch never materialises.  Yielded batches are
        zero-copy views into the ring — each step's slot is released when the
        generator is resumed for the next step, i.e. after the consumer
        finished its forward/backward.  ``slot_nbytes`` hints the produced
        batch size (the ring grows to fit; oversize arrays still fall back to
        pickling).  On exhaustion (or abandonment) the in-flight tail is
        drained so the pool stays usable; ``last_stream_stats`` then holds
        the epoch's produce/stall/occupancy counters.

        With a :class:`RestartPolicy`, a producer crash mid-epoch recovers
        in place: the pool is cycled (:meth:`_recover_producers`) and every
        in-flight step whose result was not yet received is resubmitted from
        the retained payloads — the yielded batch sequence is unchanged and,
        because produce is step-keyed, bit-identical.  Budget exhaustion
        re-raises :class:`WorkerError` for the caller's degradation ladder.
        """
        import time as time_module

        self._check_usable()
        self._ensure_ring(slot_nbytes)
        ring = self._ring
        payload_iter = iter(payloads)
        stats = {
            "steps": 0,
            "produce_seconds": 0.0,
            "stall_seconds": 0.0,
            "oversize_arrays": 0,
            "restarts": 0,
            "replayed_steps": 0,
            "n_producers": float(self.n_producers),
            "prefetch_depth": float(self.prefetch_depth),
        }
        submitted = consumed = 0
        exhausted = False
        pending: dict[int, tuple] = {}
        # payloads of steps submitted but not yet consumed — the replay
        # source after a recovery (bounded by prefetch_depth entries)
        inflight_payloads: dict[int, object] = {}
        wall_start = time_module.perf_counter()

        def submit_next():
            nonlocal submitted, exhausted
            try:
                payload = next(payload_iter)
            except StopIteration:
                exhausted = True
                return
            slot = ring.acquire(submitted)
            assert slot is not None  # depth-bounded submission keeps slots free
            inflight_payloads[submitted] = payload
            self._work_queue.put(
                ("produce", self._generation, epoch, submitted, slot, ring.spec, payload)
            )
            submitted += 1

        def recover_and_replay():
            self._restarts_used += 1
            self._restart_policy.pause(self._restarts_used - 1)
            self._recover_producers()
            replayed = 0
            for step in range(consumed, submitted):
                if step in pending:
                    continue  # result arrived before the crash; still valid
                self._work_queue.put(
                    (
                        "produce",
                        self._generation,
                        epoch,
                        step,
                        ring.slot_of(step),
                        ring.spec,
                        inflight_payloads[step],
                    )
                )
                replayed += 1
            stats["restarts"] += 1
            stats["replayed_steps"] += replayed
            self.restart_count += 1
            self.replayed_steps += replayed

        def wait_step_result():
            """Fold one same-generation result into ``pending``; self-heal."""
            while True:
                try:
                    _, _, payload = self._wait_result()
                except WorkerError:
                    if not self._may_restart():
                        raise
                    recover_and_replay()
                    continue
                generation, step, encoded, seconds, n_pickled = payload
                if generation != self._generation:
                    continue  # stale pre-recovery result
                pending[step] = (encoded, seconds, n_pickled)
                return

        try:
            while not exhausted and submitted - consumed < self.prefetch_depth:
                submit_next()
            while consumed < submitted:
                wait_start = time_module.perf_counter()
                while consumed not in pending:
                    wait_step_result()
                stats["stall_seconds"] += time_module.perf_counter() - wait_start
                encoded, seconds, n_pickled = pending.pop(consumed)
                stats["produce_seconds"] += seconds
                stats["oversize_arrays"] += n_pickled
                stats["steps"] += 1
                try:
                    yield _decode_batch(encoded, ring._shm.buf, copy=False)
                finally:
                    # runs on normal resume AND on mid-yield abandonment, so
                    # the outer drain never waits for an already-taken reply
                    ring.release(consumed)
                    inflight_payloads.pop(consumed, None)
                    consumed += 1
                if not exhausted:
                    submit_next()
        finally:
            # consumer done or bailed mid-epoch: drain the in-flight tail so
            # slots free up and no stale reply can pair with a future stream
            while consumed < submitted:
                try:
                    if consumed not in pending:
                        _, _, payload = self._wait_result()
                        generation, step, encoded, seconds, n_pickled = payload
                        if generation == self._generation:
                            pending[step] = (encoded, seconds, n_pickled)
                        continue
                except WorkerError:
                    break  # pool already marked broken
                pending.pop(consumed)
                ring.release(consumed)
                inflight_payloads.pop(consumed, None)
                consumed += 1
            wall = time_module.perf_counter() - wall_start
            stats["wall_seconds"] = wall
            stats["occupancy"] = (
                stats["produce_seconds"] / (self.n_producers * wall) if wall > 0 else 0.0
            )
            self.last_stream_stats = stats

    # ---------------------------------------------------------------- resize
    def resize(self, n_producers: int) -> None:
        """Grow or shrink the producer set between epochs.

        Curve-safe by construction: producers are identity-free pullers on a
        shared queue, so the schedule and every per-step stream are unchanged
        — only the produce-side parallelism moves.  Must not be called while
        a :meth:`stream` is active.
        """
        self._check_usable()
        n_producers = int(n_producers)
        if n_producers < 1:
            raise ValueError(f"resize needs n_producers >= 1, got {n_producers}")
        self._target_producers = n_producers
        current = len(self._processes)
        if n_producers > current:
            self._spawn(n_producers - current)
            return
        if n_producers == current:
            return
        import time as time_module

        for _ in range(current - n_producers):
            self._work_queue.put(("stop",))
        deadline = time_module.monotonic() + self.timeout
        while len(self._processes) > n_producers:
            for index, process in list(self._processes.items()):
                process.join(timeout=0.05)
                if not process.is_alive():
                    del self._processes[index]
            if time_module.monotonic() > deadline:  # pragma: no cover - hung producer
                self._broken = True
                raise WorkerError("timed out shrinking the producer pool")

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Stop the producers and release the ring.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for _ in range(len(self._processes)):
            try:
                self._work_queue.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass
        for process in self._processes.values():
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung producer
                process.terminate()
                process.join(timeout=5.0)
        self._work_queue.close()
        self._result_queue.close()
        if self._ring is not None:
            self._ring.close(unlink=True)
            self._ring = None

    def __enter__(self) -> "ProducerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
