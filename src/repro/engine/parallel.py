"""Sharded data-parallel gradient workers for the training engine.

A :class:`GradientWorkerPool` keeps ``n_workers`` **persistent** spawn-safe
``multiprocessing`` processes alive across the whole ``fit``.  Each worker
builds one replica of the training loop's modules (via the loop's picklable
``worker_factory``), and every optimizer step then runs as:

1. the parent packs the current parameters into a shared-memory buffer
   (one contiguous block per dtype — see :class:`repro.nn.flat.FlatLayout`);
2. each worker receives its batch shard through a shared-memory input arena
   (arrays are written once and read as views — cached render-cache images
   are never pickled per batch), refreshes its replica's parameters from the
   shared buffer, computes ``batch_loss`` and backpropagates;
3. each worker packs its gradients into its own shared segment, and the
   parent reduces them in **fixed ascending worker order** with per-shard
   weights ``n_w / n_total`` before stepping the optimizer as usual.

Determinism contract
--------------------
* ``n_workers=1`` never reaches this module: the trainer runs the plain
  sequential path, bit-identical to earlier PRs.
* Multi-worker runs are deterministic *at a fixed worker count*: shards are
  contiguous in-order splits, every worker's stochastic components draw from
  per-shard streams derived as ``SeedSequence([seed, worker_index,
  n_workers])``, and the gradient reduction order is fixed — a float64 run
  repeated with the same ``n_workers`` reproduces its loss curve exactly.
* Contrastive objectives see per-shard negatives (as in standard data-
  parallel contrastive training), so a 2-worker curve is not the 1-worker
  curve — only reproducible against itself.
"""

from __future__ import annotations

import atexit
import pickle
import traceback
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.nn.flat import FlatLayout

#: spawn is the one start method that is safe everywhere (threads, BLAS);
#: fork would duplicate the parent's whole heap including the render cache
DEFAULT_START_METHOD = "spawn"

#: seconds to wait for a worker reply before declaring it dead
DEFAULT_TIMEOUT = 120.0


class WorkerError(RuntimeError):
    """A gradient worker raised; carries the remote traceback."""


def derive_worker_seed(seed: int, worker_index: int, n_workers: int) -> np.random.SeedSequence:
    """The per-shard RNG root: deterministic in (seed, shard, worker count)."""
    return np.random.SeedSequence([int(seed), int(worker_index), int(n_workers)])


# --------------------------------------------------------------------------- #
# shared-memory helpers
# --------------------------------------------------------------------------- #
class _SharedBlock:
    """One shared-memory segment holding per-dtype 1-D arrays."""

    def __init__(self, nbytes_by_dtype: dict[str, int], *, create: bool, name: str | None = None):
        offsets, total = {}, 0
        for key, nbytes in sorted(nbytes_by_dtype.items()):
            offsets[key] = total
            total += max(int(nbytes), 0)
        self._shm = (
            SharedMemory(create=True, size=max(total, 1))
            if create
            else SharedMemory(name=name)
        )
        self.name = self._shm.name
        self.arrays: dict[str, np.ndarray] = {}
        for key, nbytes in nbytes_by_dtype.items():
            count = int(nbytes) // np.dtype(key).itemsize
            self.arrays[key] = np.ndarray(
                (count,), dtype=key, buffer=self._shm.buf, offset=offsets[key]
            )

    def close(self, *, unlink: bool) -> None:
        self.arrays = {}
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover - teardown race
            pass


class InputArena:
    """A byte arena batch arrays are written into (writer side).

    Arrays travel as ``(offset, dtype, shape)`` descriptors in the step
    message; the worker maps them back as views on its attached segment.  A
    batch larger than the arena (only possible if later batches exceed the
    first, which sizing with ``growth`` head-room avoids) falls back to
    pickling those arrays through the queue — correct, just slower.

    The arena is transport-agnostic: the gradient workers attach to it across
    a process boundary by segment ``name``, while same-process readers (e.g.
    the serving micro-batcher, :mod:`repro.serving`) map descriptors straight
    back through :meth:`view` — zero-copy either way.
    """

    def __init__(self, growth: float = 1.5):
        self.growth = growth
        self._shm: SharedMemory | None = None
        self.name: str | None = None
        self.capacity = 0
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def ensure(self, nbytes: int) -> None:
        if nbytes <= self.capacity:
            return
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
        self.capacity = int(nbytes * self.growth) + 64
        self._shm = SharedMemory(create=True, size=self.capacity)
        self.name = self._shm.name

    def write(self, array: np.ndarray):
        """Write one array; returns its descriptor or None if it cannot fit."""
        array = np.ascontiguousarray(array)
        offset = self._cursor
        if self._shm is None or offset + array.nbytes > self.capacity:
            return None
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf, offset=offset)
        view[...] = array
        self._cursor = offset + array.nbytes
        return (offset, array.dtype.name, tuple(array.shape))

    def view(self, descriptor) -> np.ndarray:
        """Map a :meth:`write` descriptor back to an array view (same process).

        The returned array aliases the arena segment: it stays valid until the
        arena is :meth:`reset` (and rewritten) or closed.  Descriptors from
        consecutive ``write`` calls are laid out back to back, so a descriptor
        whose shape is extended by a leading batch axis views all of them at
        once — the serving path's zero-copy batch assembly.
        """
        if self._shm is None:
            raise ValueError("arena holds no segment; write() something first")
        offset, dtype, shape = descriptor
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)

    def close(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - teardown race
                pass
            self._shm = None


#: backwards-compatible private alias (the arena predates its public name)
_InputArena = InputArena


def _encode_batch(batch, arena: InputArena | None):
    """Replace ndarrays in a (possibly nested) batch with arena descriptors."""
    if isinstance(batch, np.ndarray):
        descriptor = arena.write(batch) if arena is not None else None
        if descriptor is None:
            return ("pickle", batch)
        return ("shm", descriptor)
    if isinstance(batch, (tuple, list)):
        return ("seq", type(batch).__name__, [_encode_batch(item, arena) for item in batch])
    return ("raw", batch)


def _decode_batch(encoded, shm_buf):
    """Rebuild a batch from :func:`_encode_batch` output (worker side).

    Shared-memory arrays are **copied** out of the arena so the parent can
    start writing the next step while the worker still computes.
    """
    kind = encoded[0]
    if kind == "shm":
        offset, dtype, shape = encoded[1]
        view = np.ndarray(shape, dtype=dtype, buffer=shm_buf, offset=offset)
        return view.copy()
    if kind == "pickle":
        return encoded[1]
    if kind == "seq":
        items = [_decode_batch(item, shm_buf) for item in encoded[2]]
        return tuple(items) if encoded[1] == "tuple" else items
    return encoded[1]


def _estimate_nbytes(batch) -> int:
    if isinstance(batch, np.ndarray):
        return batch.nbytes
    if isinstance(batch, (tuple, list)):
        return sum(_estimate_nbytes(item) for item in batch)
    return 0


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _module_buffer_state(named_modules: dict) -> dict[str, np.ndarray]:
    """Non-parameter state (e.g. BN running stats) of every named module."""
    state: dict[str, np.ndarray] = {}
    for name, module in named_modules.items():
        parameter_keys = {key for key, _ in module.named_parameters()}
        for key, value in module.state_dict().items():
            if key not in parameter_keys:
                state[f"{name}.{key}"] = value
    return state


def _apply_module_buffers(module, updates: dict[str, np.ndarray], prefix: str = "") -> None:
    """Set only the buffer entries of ``updates`` on ``module``, recursively.

    The targeted counterpart of :func:`_module_buffer_state` — parameters are
    untouched (the parent's are authoritative), so merging worker buffers
    costs a handful of small array copies instead of a full ``state_dict``
    round-trip per module per epoch.
    """
    for key in module._buffers():
        value = updates.get(f"{prefix}{key}")
        if value is not None:
            setattr(module, key, np.asarray(value).copy())
    for child_name, child in module._modules.items():
        _apply_module_buffers(child, updates, f"{prefix}{child_name}.")


def _worker_main(
    worker_index: int,
    n_workers: int,
    factory,
    compute_dtype: str,
    signature,
    param_block_spec,
    grad_block_spec,
    command_queue,
    result_queue,
) -> None:
    """Entry point of one gradient worker process."""
    from repro.nn.tensor import Tensor, set_default_dtype

    arenas: dict[str, SharedMemory] = {}
    param_block = grad_block = None
    try:
        set_default_dtype(np.dtype(compute_dtype))
        replica = factory(worker_index, n_workers)
        layout = FlatLayout(replica.parameters())
        if layout.signature() != signature:
            raise RuntimeError(
                f"worker {worker_index}: replica parameters do not match the "
                f"parent layout ({len(layout.signature())} vs {len(signature)} slots)"
            )
        param_block = _SharedBlock(param_block_spec[1], create=False, name=param_block_spec[0])
        grad_block = _SharedBlock(grad_block_spec[1], create=False, name=grad_block_spec[0])
        seen_version = -1
        result_queue.put((worker_index, "ready", None))
        while True:
            message = command_queue.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "step":
                _, version, encoded, arena_name = message
                shm_buf = None
                if arena_name is not None:
                    arena = arenas.get(arena_name)
                    if arena is None:
                        # a new name supersedes this worker's one arena —
                        # close the stale mapping so the parent's unlink can
                        # actually reclaim the old segment's memory
                        for stale in arenas.values():
                            stale.close()
                        arenas.clear()
                        arena = SharedMemory(name=arena_name)
                        arenas[arena_name] = arena
                    shm_buf = arena.buf
                if version != seen_version:  # params only move on optimizer steps
                    layout.unpack_data(param_block.arrays)
                    seen_version = version
                batch = _decode_batch(encoded, shm_buf)
                for param in layout.parameters:
                    param.grad = None
                losses = replica.batch_loss(batch)
                if isinstance(losses, Tensor):
                    losses = {"loss": losses}
                losses["loss"].backward()
                layout.pack_grads(grad_block.arrays)
                logs = {
                    key: float(value.item()) if isinstance(value, Tensor) else float(value)
                    for key, value in losses.items()
                }
                result_queue.put((worker_index, "ok", logs))
            elif kind == "buffers":
                result_queue.put(
                    (worker_index, "buffers", _module_buffer_state(replica.named_modules()))
                )
    except Exception:  # pragma: no cover - exercised via WorkerError tests
        result_queue.put((worker_index, "error", traceback.format_exc()))
    finally:
        for arena in arenas.values():
            arena.close()
        if param_block is not None:
            param_block.close(unlink=False)
        if grad_block is not None:
            grad_block.close(unlink=False)


# --------------------------------------------------------------------------- #
# parent-side pool
# --------------------------------------------------------------------------- #
class GradientWorkerPool:
    """Persistent pool of sharded gradient workers (parent side).

    Parameters
    ----------
    factory:
        Picklable callable ``factory(worker_index, n_workers)`` returning a
        replica object with ``parameters()``, ``batch_loss(batch)`` and
        ``named_modules()`` (see ``TrainLoop.worker_factory``).
    parameters:
        The parent's parameters, in the same order the replica yields them.
    n_workers:
        Number of worker processes (must be >= 2; ``n_workers=1`` is the
        sequential trainer path by contract).
    compute_dtype:
        Tensor default dtype installed in every worker (the trainer's
        ``DtypePolicy.compute_dtype``), so shards compute in the same
        precision as the sequential path.
    """

    def __init__(
        self,
        factory,
        parameters,
        *,
        n_workers: int,
        compute_dtype: str = "float64",
        start_method: str = DEFAULT_START_METHOD,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        if n_workers < 2:
            raise ValueError(f"GradientWorkerPool needs n_workers >= 2, got {n_workers}")
        try:
            pickle.dumps(factory)
        except Exception as error:
            raise ValueError(
                f"worker_factory must be picklable for spawn-based workers: {error}"
            ) from error
        self.n_workers = int(n_workers)
        self.timeout = float(timeout)
        self._layout = FlatLayout(parameters)
        nbytes = self._layout.nbytes()
        self._param_block = _SharedBlock(nbytes, create=True)
        self._grad_blocks = [_SharedBlock(nbytes, create=True) for _ in range(self.n_workers)]
        self._arenas = [InputArena() for _ in range(self.n_workers)]
        self._param_version = 0
        self._closed = False
        self._broken = False

        context = get_context(start_method)
        self._command_queues = [context.Queue() for _ in range(self.n_workers)]
        self._result_queue = context.Queue()
        signature = self._layout.signature()
        self._processes = []
        for index in range(self.n_workers):
            process = context.Process(
                target=_worker_main,
                args=(
                    index,
                    self.n_workers,
                    factory,
                    compute_dtype,
                    signature,
                    (self._param_block.name, nbytes),
                    (self._grad_blocks[index].name, nbytes),
                    self._command_queues[index],
                    self._result_queue,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._collect({index: "ready" for index in range(self.n_workers)})
        # an abandoned pool (estimator dropped without shutdown_workers())
        # must never leave the interpreter hanging on live worker processes
        # or queue feeder threads; close() unregisters this again
        atexit.register(self.close)

    # ----------------------------------------------------------------- plumbing
    def _collect(self, expected: dict[int, str]) -> dict[int, object]:
        """Gather one reply per expected worker, surfacing remote errors.

        Any failure marks the pool *broken*: replies from workers that were
        still in flight stay in the result queue, so a later ``step`` could
        otherwise pair a stale gradient with a new batch.
        """
        import queue as queue_module

        replies: dict[int, object] = {}
        while len(replies) < len(expected):
            try:
                worker_index, kind, payload = self._result_queue.get(timeout=self.timeout)
            except queue_module.Empty:
                self._broken = True
                dead = [i for i, p in enumerate(self._processes) if not p.is_alive()]
                raise WorkerError(
                    f"timed out waiting for gradient workers (dead: {dead or 'none'})"
                ) from None
            if kind == "error":
                self._broken = True
                raise WorkerError(f"gradient worker {worker_index} failed:\n{payload}")
            if kind != expected.get(worker_index):
                self._broken = True
                raise WorkerError(
                    f"protocol error: worker {worker_index} sent {kind!r}, "
                    f"expected {expected.get(worker_index)!r}"
                )
            replies[worker_index] = payload
        return replies

    # --------------------------------------------------------------------- step
    def step(self, shards, *, accumulate: bool = False) -> dict[str, float]:
        """Run one sharded forward/backward; deposit gradients on the parent.

        ``shards`` is ``[(batch, weight), ...]`` from ``TrainLoop.
        shard_batch`` (weights are shard sample counts).  Returns the
        shard-weighted metric logs.  Gradients land in each parameter's
        ``.grad`` — reduced in fixed worker order — ready for callbacks and
        ``optimizer.step()`` exactly like a sequential backward.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if self._broken:
            raise RuntimeError(
                "worker pool is broken after a prior worker error; "
                "close it and create a new pool"
            )
        shards = [(batch, float(weight)) for batch, weight in shards if weight > 0]
        if not shards:
            raise ValueError("step() requires at least one non-empty shard")
        if len(shards) > self.n_workers:
            raise ValueError(f"got {len(shards)} shards for {self.n_workers} workers")
        if not accumulate:
            # parameters only change at optimizer steps, so micro-batches
            # inside an accumulation window reuse the last broadcast
            self._layout.pack_data(self._param_block.arrays)
            self._param_version += 1
        for worker_index, (batch, _) in enumerate(shards):
            arena = self._arenas[worker_index]
            arena.ensure(_estimate_nbytes(batch))
            arena.reset()
            encoded = _encode_batch(batch, arena)
            self._command_queues[worker_index].put(
                ("step", self._param_version, encoded, arena.name)
            )
        replies = self._collect({index: "ok" for index in range(len(shards))})

        total_weight = sum(weight for _, weight in shards)
        weights = [weight / total_weight for _, weight in shards]
        self._layout.reduce_grads(
            [self._grad_blocks[index].arrays for index in range(len(shards))],
            weights,
            accumulate=accumulate,
        )
        logs: dict[str, float] = {}
        for worker_index, weight in enumerate(weights):
            for key, value in replies[worker_index].items():
                logs[key] = logs.get(key, 0.0) + weight * value
        return logs

    # ------------------------------------------------------------------ buffers
    def sync_module_buffers(self, named_modules: dict) -> None:
        """Pull non-parameter module state (BN running stats) from worker 0.

        Parameters are authoritative on the parent (it owns the optimizer);
        running statistics are only updated by worker-side forwards, so they
        are fetched from the first shard's replica — deterministic at a fixed
        worker count — and merged into the parent modules before epoch-end
        callbacks (checkpoints, serving) observe them.
        """
        if self._closed or self._broken:
            return
        self._command_queues[0].put(("buffers",))
        payload = self._collect({0: "buffers"})[0]
        for name, module in named_modules.items():
            prefix = f"{name}."
            updates = {
                key[len(prefix) :]: value
                for key, value in payload.items()
                if key.startswith(prefix)
            }
            if updates:
                _apply_module_buffers(module, updates)

    # -------------------------------------------------------------------- close
    def close(self) -> None:
        """Stop the workers and release every shared-memory segment.

        Idempotent: a second call (or a call racing interpreter shutdown) is
        a silent no-op.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for queue in self._command_queues:
            try:
                queue.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for queue in self._command_queues:
            queue.close()
        self._result_queue.close()
        self._param_block.close(unlink=True)
        for block in self._grad_blocks:
            block.close(unlink=True)
        for arena in self._arenas:
            arena.close()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
