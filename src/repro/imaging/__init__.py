"""``repro.imaging`` — converting time series into RGB line-chart images.

The paper plots each variable of a sample as a line chart ('*' markers joined
by straight lines), standardises the per-variable panels to the same square
size, assigns each variable a distinct colour and stitches the panels into one
image (Section IV-C1).  matplotlib is unavailable offline, so
:mod:`repro.imaging.line_chart` implements a small rasteriser directly on
NumPy arrays.
"""

from repro.imaging.line_chart import VARIABLE_COLORS, LineChartRenderer, render_series_image

__all__ = ["LineChartRenderer", "render_series_image", "VARIABLE_COLORS"]
