"""``repro.imaging`` — converting time series into RGB line-chart images.

The paper plots each variable of a sample as a line chart ('*' markers joined
by straight lines), standardises the per-variable panels to the same square
size, assigns each variable a distinct colour and stitches the panels into one
image (Section IV-C1).  matplotlib is unavailable offline, so
:mod:`repro.imaging.line_chart` implements a small rasteriser directly on
NumPy arrays — vectorized over whole batches, with the original scalar
implementation retained as a ``reference=True`` slow path.

Because rendering is deterministic, :mod:`repro.imaging.cache` memoises the
images across epochs: :class:`RenderCache.precompute_pool` renders the
pre-training pool once and every subsequent epoch is served from memory.
"""

from repro.imaging.cache import RenderCache, content_hash
from repro.imaging.line_chart import (
    VARIABLE_COLORS,
    LineChartRenderer,
    fill_non_finite,
    render_series_image,
)

__all__ = [
    "LineChartRenderer",
    "RenderCache",
    "content_hash",
    "fill_non_finite",
    "render_series_image",
    "VARIABLE_COLORS",
]
