"""A pure-NumPy line-chart rasteriser.

:class:`LineChartRenderer` turns a multivariate time series ``(M, T)`` into an
RGB image ``(3, H, W)`` in ``[0, 1]``:

* each variable is drawn in its own square panel (the paper standardises the
  per-variable sub-images to the same size),
* observed points are marked with a small star and joined by straight lines,
* each variable gets a distinct colour,
* the panels are stitched into a near-square grid and the result is returned
  channel-first so it can be fed straight into the image encoder.

The rasteriser draws lines by super-sampling each segment and splatting the
samples onto the pixel grid, which produces smooth-enough anti-aliased strokes
without any external dependency.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_positive

#: default colour cycle for the per-variable panels (RGB in [0, 1]).
VARIABLE_COLORS: tuple[tuple[float, float, float], ...] = (
    (0.12, 0.47, 0.71),  # blue
    (1.00, 0.50, 0.05),  # orange
    (0.17, 0.63, 0.17),  # green
    (0.84, 0.15, 0.16),  # red
    (0.58, 0.40, 0.74),  # purple
    (0.55, 0.34, 0.29),  # brown
    (0.89, 0.47, 0.76),  # pink
    (0.50, 0.50, 0.50),  # grey
)


class LineChartRenderer:
    """Render time-series samples as standardized RGB line-chart images.

    Parameters
    ----------
    panel_size:
        Side length (pixels) of each per-variable square panel.
    line_width:
        Stroke thickness in pixels.
    marker_every:
        Draw a star marker every ``marker_every`` observations (1 marks every
        point like the paper; larger values keep small panels readable).
    margin:
        Fraction of the panel left blank around the chart area.
    """

    def __init__(
        self,
        panel_size: int = 32,
        *,
        line_width: float = 1.0,
        marker_every: int = 4,
        margin: float = 0.08,
    ):
        self.panel_size = int(check_positive("panel_size", panel_size))
        self.line_width = check_positive("line_width", line_width)
        self.marker_every = int(check_positive("marker_every", marker_every))
        if not 0.0 <= margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {margin}")
        self.margin = margin

    # ------------------------------------------------------------ panel level
    def _render_panel(self, series: np.ndarray) -> np.ndarray:
        """Render a single variable as a grayscale intensity panel ``(S, S)``."""
        size = self.panel_size
        canvas = np.zeros((size, size), dtype=np.float64)
        length = series.shape[0]
        if length == 1:
            series = np.repeat(series, 2)
            length = 2

        low, high = float(series.min()), float(series.max())
        if math.isclose(low, high):
            normalised = np.full(length, 0.5)
        else:
            normalised = (series - low) / (high - low)

        pad = self.margin * (size - 1)
        usable = (size - 1) - 2 * pad
        xs = pad + np.linspace(0.0, 1.0, length) * usable
        # image row 0 is the top, so flip the value axis
        ys = pad + (1.0 - normalised) * usable

        # draw segments by super-sampling
        for i in range(length - 1):
            x0, y0, x1, y1 = xs[i], ys[i], xs[i + 1], ys[i + 1]
            segment_length = math.hypot(x1 - x0, y1 - y0)
            n_steps = max(2, int(segment_length * 3))
            ts = np.linspace(0.0, 1.0, n_steps)
            px = x0 + ts * (x1 - x0)
            py = y0 + ts * (y1 - y0)
            self._splat(canvas, px, py, intensity=1.0)

        # star markers on observed points
        for i in range(0, length, self.marker_every):
            self._draw_marker(canvas, xs[i], ys[i])
        return np.clip(canvas, 0.0, 1.0)

    def _splat(self, canvas: np.ndarray, px: np.ndarray, py: np.ndarray, intensity: float) -> None:
        """Paint sub-pixel sample positions with bilinear weights."""
        size = canvas.shape[0]
        x0 = np.floor(px).astype(int)
        y0 = np.floor(py).astype(int)
        fx = px - x0
        fy = py - y0
        for dx, dy, weight in (
            (0, 0, (1 - fx) * (1 - fy)),
            (1, 0, fx * (1 - fy)),
            (0, 1, (1 - fx) * fy),
            (1, 1, fx * fy),
        ):
            cols = np.clip(x0 + dx, 0, size - 1)
            rows = np.clip(y0 + dy, 0, size - 1)
            np.maximum.at(canvas, (rows, cols), weight * intensity * self.line_width)

    def _draw_marker(self, canvas: np.ndarray, x: float, y: float) -> None:
        """Draw a small '*'-style marker centred on ``(x, y)``."""
        size = canvas.shape[0]
        cx, cy = int(round(x)), int(round(y))
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1), (0, 0), (-1, -1), (1, 1), (-1, 1), (1, -1)]
        for dx, dy in offsets:
            col, row = cx + dx, cy + dy
            if 0 <= row < size and 0 <= col < size:
                canvas[row, col] = 1.0

    # ------------------------------------------------------------ image level
    def render(self, sample: np.ndarray) -> np.ndarray:
        """Render one sample ``(M, T)`` into an RGB image ``(3, H, W)``.

        Panels are arranged into a near-square grid:
        ``grid_cols = ceil(sqrt(M))`` and rows as needed; unused cells remain
        black.  Each panel is tinted with its variable colour.
        """
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim == 1:
            sample = sample[None, :]
        if sample.ndim != 2:
            raise ValueError(f"expected (M, T) sample, got shape {sample.shape}")
        n_variables = sample.shape[0]
        grid_cols = int(math.ceil(math.sqrt(n_variables)))
        grid_rows = int(math.ceil(n_variables / grid_cols))
        size = self.panel_size
        image = np.zeros((3, grid_rows * size, grid_cols * size), dtype=np.float64)
        for variable in range(n_variables):
            panel = self._render_panel(sample[variable])
            color = VARIABLE_COLORS[variable % len(VARIABLE_COLORS)]
            row, col = divmod(variable, grid_cols)
            for channel in range(3):
                image[channel, row * size : (row + 1) * size, col * size : (col + 1) * size] = (
                    panel * color[channel]
                )
        return image

    def render_batch(self, X: np.ndarray) -> np.ndarray:
        """Render a batch ``(B, M, T)`` into images ``(B, 3, H, W)``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 3:
            raise ValueError(f"expected (B, M, T) batch, got shape {X.shape}")
        return np.stack([self.render(sample) for sample in X], axis=0)


def render_series_image(
    sample: np.ndarray,
    *,
    panel_size: int = 32,
    marker_every: int = 4,
) -> np.ndarray:
    """Convenience wrapper: render one ``(M, T)`` sample with default settings."""
    renderer = LineChartRenderer(panel_size=panel_size, marker_every=marker_every)
    return renderer.render(sample)
