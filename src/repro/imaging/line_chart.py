"""A pure-NumPy line-chart rasteriser with a vectorized batch fast path.

:class:`LineChartRenderer` turns a multivariate time series ``(M, T)`` into an
RGB image ``(3, H, W)`` in ``[0, 1]``:

* each variable is drawn in its own square panel (the paper standardises the
  per-variable sub-images to the same size),
* observed points are marked with a small star and joined by straight lines,
* each variable gets a distinct colour,
* the panels are stitched into a near-square grid and the result is returned
  channel-first so it can be fed straight into the image encoder.

The rasteriser draws lines by super-sampling each segment and splatting the
samples onto the pixel grid, which produces smooth-enough anti-aliased strokes
without any external dependency.

Two implementations share this contract:

* the **vectorized** path (default) renders *all segments of all variables of
  a whole* ``(B, M, T)`` *batch at once*: per-segment step counts are expanded
  into flattened index arrays, every super-sample of every panel is splatted
  with a single ``np.maximum.at`` scatter per bilinear corner, and markers are
  written with one fancy-index assignment.  On a ``(64, 3, 96)`` batch this is
  two orders of magnitude faster than the scalar path;
* the **reference** path (``reference=True``) keeps the original scalar
  per-variable / per-segment loops.  It exists for pixel-equivalence testing —
  in float64 the vectorized path reproduces it bit-for-bit (both paths apply
  the same elementwise formulas in the same order, and ``max``-splatting is
  order independent).

Non-finite values (NaN/±inf) are sanitised before drawing: missing samples are
linearly interpolated from their finite neighbours (edge values extend), and a
series with *no* finite sample raises a :class:`ValueError` instead of
silently poisoning the canvas.

Rendering supports a ``dtype`` knob: ``float64`` (default, bit-exact against
the reference) or ``float32`` (fast path with half the memory traffic, pixel
values within float32 round-off of the float64 render).
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_positive

#: default colour cycle for the per-variable panels (RGB in [0, 1]).
VARIABLE_COLORS: tuple[tuple[float, float, float], ...] = (
    (0.12, 0.47, 0.71),  # blue
    (1.00, 0.50, 0.05),  # orange
    (0.17, 0.63, 0.17),  # green
    (0.84, 0.15, 0.16),  # red
    (0.58, 0.40, 0.74),  # purple
    (0.55, 0.34, 0.29),  # brown
    (0.89, 0.47, 0.76),  # pink
    (0.50, 0.50, 0.50),  # grey
)

#: pixel offsets of the small '*'-style marker.
_MARKER_OFFSETS: tuple[tuple[int, int], ...] = (
    (-1, 0),
    (1, 0),
    (0, -1),
    (0, 1),
    (0, 0),
    (-1, -1),
    (1, 1),
    (-1, 1),
    (1, -1),
)

#: dtypes the renderer can draw in.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def fill_non_finite(X: np.ndarray) -> np.ndarray:
    """Replace NaN/±inf samples of each series by linear interpolation.

    ``X`` is ``(..., T)``; every trailing-axis series containing non-finite
    values is repaired by interpolating over its finite samples (edge values
    extend to leading/trailing gaps).  Returns ``X`` unchanged (no copy) when
    everything is finite.

    Raises
    ------
    ValueError
        If any series has no finite sample at all (an all-NaN series carries
        no shape information and cannot be rendered).
    """
    X = np.asarray(X)
    finite = np.isfinite(X)
    if finite.all():
        return X
    length = X.shape[-1]
    flat = X.reshape(-1, length).copy()
    good_mask = finite.reshape(-1, length)
    grid = np.arange(length, dtype=np.float64)
    for row in np.flatnonzero(~good_mask.all(axis=1)):
        good = good_mask[row]
        if not good.any():
            raise ValueError(
                "cannot render a series with no finite values (all-NaN/inf); "
                "drop or impute the sample before rendering"
            )
        flat[row, ~good] = np.interp(grid[~good], grid[good], flat[row, good])
    return flat.reshape(X.shape)


class LineChartRenderer:
    """Render time-series samples as standardized RGB line-chart images.

    Parameters
    ----------
    panel_size:
        Side length (pixels) of each per-variable square panel.
    line_width:
        Stroke thickness in pixels.
    marker_every:
        Draw a star marker every ``marker_every`` observations (1 marks every
        point like the paper; larger values keep small panels readable).
    margin:
        Fraction of the panel left blank around the chart area.
    dtype:
        Canvas/compute dtype: ``float64`` (default, bit-exact against the
        reference path) or ``float32`` (fast path).
    reference:
        Use the original scalar per-segment loops instead of the vectorized
        batch path; kept for equivalence testing and debugging.
    """

    def __init__(
        self,
        panel_size: int = 32,
        *,
        line_width: float = 1.0,
        marker_every: int = 4,
        margin: float = 0.08,
        dtype: str | np.dtype = np.float64,
        reference: bool = False,
    ):
        self.panel_size = int(check_positive("panel_size", panel_size))
        self.line_width = check_positive("line_width", line_width)
        self.marker_every = int(check_positive("marker_every", marker_every))
        if not 0.0 <= margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {margin}")
        self.margin = margin
        self.dtype = np.dtype(dtype)
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(f"dtype must be float32 or float64, got {self.dtype}")
        self.reference = bool(reference)
        if self.reference and self.dtype != np.float64:
            raise ValueError("the reference renderer only draws in float64")

    # ------------------------------------------------------- reference panels
    def _render_panel(self, series: np.ndarray) -> np.ndarray:
        """Scalar reference: render one variable as an intensity panel ``(S, S)``."""
        size = self.panel_size
        canvas = np.zeros((size, size), dtype=np.float64)
        length = series.shape[0]
        if length == 1:
            series = np.repeat(series, 2)
            length = 2

        low, high = float(series.min()), float(series.max())
        if math.isclose(low, high):
            normalised = np.full(length, 0.5)
        else:
            normalised = (series - low) / (high - low)

        pad = self.margin * (size - 1)
        usable = (size - 1) - 2 * pad
        xs = pad + np.linspace(0.0, 1.0, length) * usable
        # image row 0 is the top, so flip the value axis
        ys = pad + (1.0 - normalised) * usable

        # draw segments by super-sampling
        for i in range(length - 1):
            x0, y0, x1, y1 = xs[i], ys[i], xs[i + 1], ys[i + 1]
            segment_length = float(np.hypot(x1 - x0, y1 - y0))
            n_steps = max(2, int(segment_length * 3))
            ts = np.linspace(0.0, 1.0, n_steps)
            px = x0 + ts * (x1 - x0)
            py = y0 + ts * (y1 - y0)
            self._splat(canvas, px, py, intensity=1.0)

        # star markers on observed points
        for i in range(0, length, self.marker_every):
            self._draw_marker(canvas, xs[i], ys[i])
        return np.clip(canvas, 0.0, 1.0)

    def _splat(self, canvas: np.ndarray, px: np.ndarray, py: np.ndarray, intensity: float) -> None:
        """Paint sub-pixel sample positions with bilinear weights."""
        size = canvas.shape[0]
        x0 = np.floor(px).astype(int)
        y0 = np.floor(py).astype(int)
        fx = px - x0
        fy = py - y0
        for dx, dy, weight in (
            (0, 0, (1 - fx) * (1 - fy)),
            (1, 0, fx * (1 - fy)),
            (0, 1, (1 - fx) * fy),
            (1, 1, fx * fy),
        ):
            cols = np.clip(x0 + dx, 0, size - 1)
            rows = np.clip(y0 + dy, 0, size - 1)
            np.maximum.at(canvas, (rows, cols), weight * intensity * self.line_width)

    def _draw_marker(self, canvas: np.ndarray, x: float, y: float) -> None:
        """Draw a small '*'-style marker centred on ``(x, y)``."""
        size = canvas.shape[0]
        cx, cy = int(round(x)), int(round(y))
        for dx, dy in _MARKER_OFFSETS:
            col, row = cx + dx, cy + dy
            if 0 <= row < size and 0 <= col < size:
                canvas[row, col] = 1.0

    # ------------------------------------------------------ vectorized panels
    def _render_panels(self, series: np.ndarray) -> np.ndarray:
        """Vectorized: render ``(N, T)`` series into ``(N, S, S)`` panels.

        All segments of all series are expanded into one flat array of
        super-samples (per-segment step counts differ, so the expansion uses
        ``np.repeat`` over a cumulative-sum index), splatted with a single
        ``np.maximum.at`` scatter per bilinear corner, and all markers are
        written with one fancy-index assignment.
        """
        dtype = self.dtype
        size = self.panel_size
        n_series, length = series.shape
        if length == 1:
            series = np.repeat(series, 2, axis=1)
            length = 2

        low = series.min(axis=1, keepdims=True)
        high = series.max(axis=1, keepdims=True)
        # same criterion as math.isclose(low, high) with rel_tol=1e-9, abs_tol=0
        flat_series = np.abs(high - low) <= 1e-9 * np.maximum(np.abs(high), np.abs(low))
        span = np.where(flat_series, 1.0, high - low).astype(dtype, copy=False)
        normalised = np.where(flat_series, dtype.type(0.5), (series - low) / span)

        pad = self.margin * (size - 1)
        usable = (size - 1) - 2 * pad
        xs = (pad + np.linspace(0.0, 1.0, length) * usable).astype(dtype, copy=False)
        ys = (pad + (1.0 - normalised) * usable).astype(dtype, copy=False)

        # ---- expand every segment into its super-samples (flattened arrays)
        seg_x0 = np.broadcast_to(xs[:-1], (n_series, length - 1)).ravel()
        seg_dx = np.broadcast_to(xs[1:] - xs[:-1], (n_series, length - 1)).ravel()
        seg_y0 = ys[:, :-1].ravel()
        seg_dy = (ys[:, 1:] - ys[:, :-1]).ravel()
        counts = np.maximum(2, (np.hypot(seg_dx, seg_dy) * 3.0).astype(np.int64))

        total = int(counts.sum())
        seg_id = np.repeat(np.arange(counts.size), counts)
        ends = np.cumsum(counts)
        step_idx = np.arange(total) - np.repeat(ends - counts, counts)
        # linspace(0, 1, n)[j] == j * (1 / (n - 1)) with the endpoint forced,
        # so this reproduces the reference positions bit-for-bit in float64
        t = step_idx.astype(dtype) * (dtype.type(1.0) / (counts - 1).astype(dtype))[seg_id]
        t[step_idx == counts[seg_id] - 1] = 1.0

        px = seg_x0[seg_id] + t * seg_dx[seg_id]
        py = seg_y0[seg_id] + t * seg_dy[seg_id]

        # ---- one bilinear scatter per corner over the whole batch
        canvas = np.zeros((n_series, size, size), dtype=dtype)
        flat_canvas = canvas.reshape(-1)
        base = (seg_id // (length - 1)) * (size * size)
        fpx = np.floor(px)
        fpy = np.floor(py)
        x0i = fpx.astype(np.int64)
        y0i = fpy.astype(np.int64)
        fx = px - fpx
        fy = py - fpy
        line_width = dtype.type(self.line_width)
        for dx, dy, weight in (
            (0, 0, (1 - fx) * (1 - fy)),
            (1, 0, fx * (1 - fy)),
            (0, 1, (1 - fx) * fy),
            (1, 1, fx * fy),
        ):
            cols = np.clip(x0i + dx, 0, size - 1)
            rows = np.clip(y0i + dy, 0, size - 1)
            np.maximum.at(flat_canvas, base + rows * size + cols, weight * line_width)

        # ---- all markers in one masked assignment (markers overwrite strokes)
        marker_idx = np.arange(0, length, self.marker_every)
        cx = np.rint(xs[marker_idx]).astype(np.int64)  # (K,) shared across series
        cy = np.rint(ys[:, marker_idx]).astype(np.int64)  # (N, K)
        offsets = np.asarray(_MARKER_OFFSETS, dtype=np.int64)
        cols = cx[None, :, None] + offsets[None, None, :, 0]  # (1, K, 9)
        rows = cy[:, :, None] + offsets[None, None, :, 1]  # (N, K, 9)
        cols, rows = np.broadcast_arrays(cols, rows)
        in_bounds = (rows >= 0) & (rows < size) & (cols >= 0) & (cols < size)
        panel_base = (np.arange(n_series) * size * size)[:, None, None]
        flat_canvas[(panel_base + rows * size + cols)[in_bounds]] = 1.0

        return np.clip(canvas, 0.0, 1.0, out=canvas)

    # ------------------------------------------------------------ image level
    def grid_shape(self, n_variables: int) -> tuple[int, int]:
        """Panel grid ``(rows, cols)`` used to stitch an ``n_variables`` sample."""
        grid_cols = int(math.ceil(math.sqrt(n_variables)))
        return int(math.ceil(n_variables / grid_cols)), grid_cols

    def image_nbytes(self, n_variables: int) -> int:
        """Bytes of one composed ``(3, H, W)`` image for an ``n_variables`` sample."""
        grid_rows, grid_cols = self.grid_shape(n_variables)
        return 3 * grid_rows * grid_cols * self.panel_size**2 * self.dtype.itemsize

    def _compose(self, panels: np.ndarray, n_variables: int) -> np.ndarray:
        """Tint ``(B, M, S, S)`` panels and stitch them into ``(B, 3, H, W)``."""
        n_samples = panels.shape[0]
        grid_rows, grid_cols = self.grid_shape(n_variables)
        size = self.panel_size
        images = np.zeros(
            (n_samples, 3, grid_rows * size, grid_cols * size), dtype=self.dtype
        )
        colors = np.asarray(
            [VARIABLE_COLORS[v % len(VARIABLE_COLORS)] for v in range(n_variables)],
            dtype=self.dtype,
        )
        for variable in range(n_variables):
            row, col = divmod(variable, grid_cols)
            images[:, :, row * size : (row + 1) * size, col * size : (col + 1) * size] = (
                panels[:, variable, None] * colors[variable, :, None, None]
            )
        return images

    def render(self, sample: np.ndarray) -> np.ndarray:
        """Render one sample ``(M, T)`` into an RGB image ``(3, H, W)``.

        Panels are arranged into a near-square grid:
        ``grid_cols = ceil(sqrt(M))`` and rows as needed; unused cells remain
        black.  Each panel is tinted with its variable colour.
        """
        sample = np.asarray(sample, dtype=self.dtype)
        if sample.ndim == 1:
            sample = sample[None, :]
        if sample.ndim != 2:
            raise ValueError(f"expected (M, T) sample, got shape {sample.shape}")
        sample = fill_non_finite(sample)
        n_variables = sample.shape[0]
        if not self.reference:
            panels = self._render_panels(sample)
            return self._compose(panels[None], n_variables)[0]
        grid_rows, grid_cols = self.grid_shape(n_variables)
        size = self.panel_size
        image = np.zeros((3, grid_rows * size, grid_cols * size), dtype=np.float64)
        for variable in range(n_variables):
            panel = self._render_panel(sample[variable])
            color = VARIABLE_COLORS[variable % len(VARIABLE_COLORS)]
            row, col = divmod(variable, grid_cols)
            for channel in range(3):
                image[channel, row * size : (row + 1) * size, col * size : (col + 1) * size] = (
                    panel * color[channel]
                )
        return image

    def render_batch(self, X: np.ndarray) -> np.ndarray:
        """Render a batch ``(B, M, T)`` into images ``(B, 3, H, W)``.

        The default (vectorized) path rasterises the whole batch in one pass;
        with ``reference=True`` every sample is drawn by the scalar loops.
        """
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim != 3:
            raise ValueError(f"expected (B, M, T) batch, got shape {X.shape}")
        n_samples, n_variables, length = X.shape
        if n_samples == 0:
            empty = np.zeros((0, n_variables, self.panel_size, self.panel_size), dtype=X.dtype)
            return self._compose(empty, n_variables).astype(X.dtype, copy=False)
        if self.reference:
            return np.stack([self.render(sample) for sample in X], axis=0)
        X = fill_non_finite(X)
        panels = self._render_panels(X.reshape(n_samples * n_variables, length))
        panels = panels.reshape(n_samples, n_variables, self.panel_size, self.panel_size)
        return self._compose(panels, n_variables)


def render_series_image(
    sample: np.ndarray,
    *,
    panel_size: int = 32,
    marker_every: int = 4,
) -> np.ndarray:
    """Convenience wrapper: render one ``(M, T)`` sample with default settings."""
    renderer = LineChartRenderer(panel_size=panel_size, marker_every=marker_every)
    return renderer.render(sample)
