"""Cross-epoch render cache for the line-chart imaging pipeline.

Line-chart rendering is deterministic: the same pool sample always produces
the same image, yet the seed training loop re-rendered every sample on every
batch of every epoch.  :class:`RenderCache` memoises rendered images so the
rasteriser runs **once per pool sample** (ideally in one vectorized
:meth:`precompute_pool` pass before the first epoch) and every subsequent
epoch is served from memory.

Design:

* entries are keyed by **pool index** for O(1) lookup, and each entry stores a
  **content hash** of the raw series so a stale or reshuffled pool can never
  serve a wrong image — on hash mismatch the sample is transparently
  re-rendered and the entry refreshed;
* storage is an LRU ``OrderedDict`` of per-sample image arrays (views into
  the bulk array produced by :meth:`precompute_pool`, so the bulk path costs
  one contiguous allocation);
* an optional ``max_bytes`` budget bounds memory: inserts evict
  least-recently-used entries, and :meth:`precompute_pool` fills the cache
  only up to the budget;
* an optional **disk spill tier** (``spill_dir``) keeps the render-once
  property for pools larger than RAM: entries evicted from the RAM tier are
  written as ``.npy`` files instead of dropped, served back on later lookups
  (a *disk hit*, promoted back into the RAM LRU) after validating both the
  requested series hash and a stored image content hash — a corrupted or
  stale file is counted in ``readback_failures`` and transparently
  re-rendered.  Because renders are deterministic, each image is written to
  disk at most once no matter how often it shuttles between tiers.  Files
  appear atomically (temp + ``os.replace``) with a ``.meta`` sidecar, so
  several processes — e.g. the pipelined pre-training producers — can share
  one spill directory and adopt each other's renders instead of re-rendering;
* hit/miss/eviction counters plus render timings and the spill-tier
  counters (``spilled_bytes`` / ``disk_hits`` / ``readback_failures``) are
  exposed via :meth:`stats` so benchmarks (``benchmarks/test_perf_imaging.py``,
  ``benchmarks/test_perf_corpus.py``) can report cache behaviour per epoch.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict

import numpy as np

from repro.imaging.line_chart import LineChartRenderer
from repro.utils.faults import InjectedFault, fault_point


def content_hash(sample: np.ndarray) -> bytes:
    """A compact content digest of one ``(M, T)`` sample (shape-sensitive).

    Values are canonicalised to float64 before hashing so a pool and its
    batches hash identically even when one side was promoted (int → float64,
    float32 → float64) on its way through the loaders — the renderer casts to
    its own dtype anyway, so value-equal inputs produce identical images.
    """
    arr = np.ascontiguousarray(sample, dtype=np.float64)
    digest = hashlib.blake2b(arr.tobytes(), digest_size=16)
    digest.update(repr(arr.shape).encode())
    return digest.digest()


class RenderCache:
    """Memoise deterministic line-chart renders across epochs.

    Parameters
    ----------
    renderer:
        The :class:`LineChartRenderer` used to produce images on a miss.
    max_bytes:
        Optional cap on the total image bytes held; least-recently-used
        entries are evicted to stay under it.  ``None`` means unbounded.
    validate:
        Verify the stored content hash against the requested batch on every
        lookup (cheap: one blake2b over the raw series).  Disable only when
        the pool is provably immutable.
    insert_on_miss:
        Whether :meth:`get_batch` inserts freshly rendered images for indices
        it has never seen.  Disable after :meth:`precompute_pool` when the
        budget is smaller than the pool *and no spill tier is configured*:
        with uniformly shuffled access, LRU churn would evict entries that
        were about to hit, so a *frozen* prefix (hits for cached samples,
        plain on-demand renders for the rest, no eviction traffic) is
        strictly faster.  With a spill tier the calculus flips — evictions
        land on disk and hit later, so keep inserts on.  Content-hash
        mismatches on already-cached indices are still refreshed in place.
    spill_dir:
        Optional directory for the disk spill tier (created if missing).
        ``None`` (default) disables spilling: evictions discard the image as
        before.
    spill_max_bytes:
        Optional cap on bytes spilled to disk; once reached, further
        evictions are discarded instead of spilled.  ``None`` = unbounded.
    """

    def __init__(
        self,
        renderer: LineChartRenderer,
        *,
        max_bytes: int | None = None,
        validate: bool = True,
        insert_on_miss: bool = True,
        spill_dir: str | os.PathLike | None = None,
        spill_max_bytes: int | None = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive or None, got {max_bytes}")
        if spill_max_bytes is not None and spill_max_bytes <= 0:
            raise ValueError(
                f"spill_max_bytes must be positive or None, got {spill_max_bytes}"
            )
        if spill_max_bytes is not None and spill_dir is None:
            raise ValueError("spill_max_bytes requires spill_dir")
        self.renderer = renderer
        self.max_bytes = max_bytes
        self.validate = validate
        self.insert_on_miss = insert_on_miss
        self.spill_dir = None if spill_dir is None else str(spill_dir)
        self.spill_max_bytes = spill_max_bytes
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
        self._images: OrderedDict[int, np.ndarray] = OrderedDict()
        self._hashes: dict[int, bytes] = {}
        #: spilled index → (series hash, image content hash, image nbytes)
        self._spill_meta: dict[int, tuple[bytes, bytes, int]] = {}
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rendered_samples = 0
        self.render_seconds = 0.0
        self.spilled_bytes = 0
        self.spill_writes = 0
        self.disk_hits = 0
        self.readback_failures = 0
        self.spill_retries = 0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._images)

    def __contains__(self, index: int) -> bool:
        return int(index) in self._images

    @property
    def nbytes(self) -> int:
        """Total bytes of cached image data."""
        return self._nbytes

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, float | int]:
        """Counters for benchmarks and logging (RAM tier + spill tier)."""
        return {
            "entries": len(self._images),
            "nbytes": self._nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "rendered_samples": self.rendered_samples,
            "render_seconds": self.render_seconds,
            "spill_entries": len(self._spill_meta),
            "spilled_bytes": self.spilled_bytes,
            "spill_writes": self.spill_writes,
            "disk_hits": self.disk_hits,
            "readback_failures": self.readback_failures,
            "spill_retries": self.spill_retries,
        }

    def clear(self) -> None:
        """Drop all entries, RAM and spilled (counters are kept)."""
        self._images.clear()
        self._hashes.clear()
        self._nbytes = 0
        for index in list(self._spill_meta):
            self._drop_spill(index)

    # ---------------------------------------------------------------- filling
    def _render(self, batch: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        images = self.renderer.render_batch(batch)
        self.render_seconds += time.perf_counter() - start
        self.rendered_samples += batch.shape[0]
        return images

    # ------------------------------------------------------------- spill tier
    #
    # The spill directory is shareable across processes (the pipelined
    # pre-training producers of :mod:`repro.engine.parallel` each hold their
    # own RenderCache over one directory): every ``.npy`` lands via an atomic
    # rename, and a sidecar ``.meta`` file carries the (series hash, image
    # hash, nbytes) triple so a sibling's file can be adopted — or served —
    # with exactly the validation an own write gets.
    _META_NBYTES = 16 + 16 + 8  # series hash + image hash + uint64 nbytes

    def _spill_path(self, index: int) -> str:
        return os.path.join(self.spill_dir, f"img-{index:09d}.npy")

    def _meta_path(self, index: int) -> str:
        return self._spill_path(index) + ".meta"

    def _read_sidecar(self, index: int) -> tuple[bytes, bytes, int] | None:
        """The on-disk metadata of a spilled image, however wrote it."""
        try:
            with open(self._meta_path(index), "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        if len(raw) != self._META_NBYTES:
            return None  # torn sidecar from a pre-atomic writer: ignore
        return raw[:16], raw[16:32], int.from_bytes(raw[32:40], "little")

    def _drop_spill(self, index: int) -> None:
        meta = self._spill_meta.pop(index, None)
        if meta is None:
            return
        self.spilled_bytes -= meta[2]
        for path in (self._spill_path(index), self._meta_path(index)):
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - already gone
                pass

    def _spill_entry(self, index: int, image: np.ndarray, series_hash: bytes) -> None:
        """Move one evicted image to the disk tier (skip if already there)."""
        if index in self._spill_meta:
            return  # renders are deterministic: the bytes on disk still match
        if (
            self.spill_max_bytes is not None
            and self.spilled_bytes + image.nbytes > self.spill_max_bytes
        ):
            return
        sidecar = self._read_sidecar(index)
        if sidecar is not None and sidecar[0] == series_hash and sidecar[2] == image.nbytes:
            # a sibling process already spilled this deterministic render —
            # adopt its file instead of rewriting identical bytes
            self._spill_meta[index] = sidecar
            self.spilled_bytes += sidecar[2]
            return
        meta = series_hash + content_hash(image) + image.nbytes.to_bytes(8, "little")
        # image first, sidecar last: a sidecar only ever describes a complete
        # image file, and os.replace makes each file appear atomically
        tmp = f"{self._spill_path(index)}.tmp-{os.getpid()}"
        with open(tmp, "wb") as fh:
            np.save(fh, image)  # an open handle keeps np.save from appending .npy
        os.replace(tmp, self._spill_path(index))
        tmp = f"{self._meta_path(index)}.tmp-{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(meta)
        os.replace(tmp, self._meta_path(index))
        self._spill_meta[index] = (series_hash, content_hash(image), image.nbytes)
        self.spilled_bytes += image.nbytes
        self.spill_writes += 1

    def _load_spilled(self, index: int, sample: np.ndarray) -> np.ndarray | None:
        """Read one image back from the spill tier, or None on any mismatch.

        A stale series hash (the pool changed under the cache) silently drops
        the entry; a read error or image-hash mismatch (disk corruption) is
        retried once (``spill_retries``) and then counts a
        ``readback_failure``.  Either way the caller
        falls through to a re-render.  Indices this instance never spilled are
        discovered through their sidecar files, so sibling processes sharing
        the directory serve each other's renders.
        """
        meta = self._spill_meta.get(index)
        adopted = False
        if meta is None:
            meta = self._read_sidecar(index)
            if meta is None:
                return None
            adopted = True
        series_hash, image_hash, nbytes = meta
        if self.validate and series_hash != content_hash(sample):
            if adopted:
                return None  # a sibling's file for some other pool: leave it
            self._drop_spill(index)
            return None
        image = None
        for attempt in range(2):  # one retry: a torn sibling write or a
            try:  # transient I/O error often clears on the second read
                fault_point("spill.readback")
                candidate = np.load(self._spill_path(index), allow_pickle=False)
            except (OSError, ValueError, InjectedFault):
                candidate = None
            if candidate is not None and content_hash(candidate) == image_hash:
                image = candidate
                break
            if attempt == 0:
                self.spill_retries += 1
        if image is None:
            self.readback_failures += 1
            if adopted:
                self._spill_meta[index] = meta  # register so the drop cleans up
                self.spilled_bytes += nbytes
            self._drop_spill(index)
            return None
        if adopted:
            self._spill_meta[index] = meta
            self.spilled_bytes += nbytes
        return image

    def _evict_until_fits(self, incoming: int) -> bool:
        """Evict LRU entries to make room; False if ``incoming`` can never fit.

        With a spill tier configured, evicted images land on disk instead of
        being discarded (subject to ``spill_max_bytes``).
        """
        if self.max_bytes is None:
            return True
        if incoming > self.max_bytes:
            return False
        while self._nbytes + incoming > self.max_bytes and self._images:
            index, evicted = self._images.popitem(last=False)
            series_hash = self._hashes.pop(index, None)
            if self.spill_dir is not None and series_hash is not None:
                self._spill_entry(index, evicted, series_hash)
            self._nbytes -= evicted.nbytes
            self.evictions += 1
        return self._nbytes + incoming <= self.max_bytes

    def insert(self, index: int, sample: np.ndarray, image: np.ndarray) -> bool:
        """Store one rendered ``image`` for pool ``index``; False if it cannot fit."""
        index = int(index)
        if self.max_bytes is not None and image.nbytes > self.max_bytes:
            return False  # reject before touching any existing entry
        sample_hash = content_hash(sample)
        spilled = self._spill_meta.get(index)
        if spilled is not None and spilled[0] != sample_hash:
            self._drop_spill(index)  # the pool row changed; the file is stale
        previous = self._images.pop(index, None)
        if previous is not None:
            self._nbytes -= previous.nbytes
            self._hashes.pop(index, None)
        if not self._evict_until_fits(image.nbytes):
            return False
        if self.max_bytes is not None and image.base is not None:
            # under a byte budget a view would pin its whole bulk render array
            # in memory past eviction, so the accounting would under-count;
            # unbounded caches keep the cheap no-copy views
            image = image.copy()
        self._images[index] = image
        self._hashes[index] = sample_hash
        self._nbytes += image.nbytes
        return True

    def precompute_pool(
        self, pool: np.ndarray, *, chunk_size: int = 512
    ) -> dict[str, float | int]:
        """Render a whole ``(N, M, T)`` pool once and cache every image.

        Rendering happens in vectorized chunks of ``chunk_size`` samples; in
        an unbounded cache the entries are views into each chunk's bulk
        array, so no per-image copies are made.  With ``max_bytes`` set, only
        the pool prefix that fits the budget is rendered and cached — nothing
        beyond it is rasterised (those samples render on demand later), no
        earlier entry is churned out, and the cached images are standalone
        copies so eviction actually frees memory.  Returns :meth:`stats`.
        """
        pool = np.asarray(pool)
        if pool.ndim != 3:
            raise ValueError(f"expected (N, M, T) pool, got shape {pool.shape}")
        n_cacheable = pool.shape[0]
        if self.max_bytes is not None:
            # the image size is known before rendering anything, so the
            # budgeted prefix can be sized up front
            image_nbytes = self.renderer.image_nbytes(pool.shape[1])
            budget_left = max(0, self.max_bytes - self._nbytes)
            n_cacheable = min(n_cacheable, budget_left // image_nbytes)
        for start in range(0, n_cacheable, int(chunk_size)):
            chunk = pool[start : start + min(int(chunk_size), n_cacheable - start)]
            images = self._render(chunk)
            for offset in range(chunk.shape[0]):
                self.insert(start + offset, chunk[offset], images[offset])
        return self.stats()

    # ---------------------------------------------------------------- lookups
    def get_batch(self, batch: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Serve rendered images for ``batch`` ``(B, M, T)`` at pool ``indices``.

        Cached entries whose content hash matches the batch row are returned
        as-is (a *hit*); spilled entries are read back from disk, validated
        and promoted into the RAM LRU (a *disk hit*); everything else is
        rendered in one vectorized call (a *miss*) and inserted for the next
        epoch.
        """
        batch = np.asarray(batch)
        indices = np.asarray(indices, dtype=np.int64)
        if batch.ndim != 3:
            raise ValueError(f"expected (B, M, T) batch, got shape {batch.shape}")
        if indices.shape != (batch.shape[0],):
            raise ValueError(
                f"indices must be (B,) == ({batch.shape[0]},), got {indices.shape}"
            )
        cached: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for position, index in enumerate(indices.tolist()):
            image = self._images.get(index)
            if image is not None and (
                not self.validate or self._hashes[index] == content_hash(batch[position])
            ):
                self._images.move_to_end(index)
                cached[position] = image
                self.hits += 1
                continue
            if self.spill_dir is not None:
                readback = self._load_spilled(index, batch[position])
                if readback is not None:
                    cached[position] = readback
                    self.disk_hits += 1
                    if self.insert_on_miss:
                        # promote into the RAM LRU: the displaced LRU entry
                        # spills in turn (its bytes are already on disk, so no
                        # rewrite), letting hot indices migrate to RAM
                        self.insert(index, batch[position], readback)
                    continue
            missing.append(position)
            self.misses += 1
        if not missing:
            return np.stack([cached[position] for position in range(len(indices))], axis=0)
        rendered = self._render(batch[missing])
        for offset, position in enumerate(missing):
            cached[position] = rendered[offset]
            index = int(indices[position])
            if self.insert_on_miss or index in self._images:
                self.insert(index, batch[position], rendered[offset])
        return np.stack([cached[position] for position in range(len(indices))], axis=0)
