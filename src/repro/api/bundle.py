"""Versioned full-bundle checkpoints: one ``.npz`` + an embedded JSON manifest.

A *bundle* persists an estimator whole — encoder weights, projection heads,
the fine-tuned classifier, the label map, normalization statistics and the
originating config — so a checkpoint can be reconstructed into a working
estimator with no out-of-band information (see
:func:`repro.api.registry.load_estimator`).

Layout: a single ``.npz`` archive whose keys are the weight arrays plus one
reserved ``__manifest__`` entry holding the UTF-8 JSON manifest.  The
manifest always contains:

``format``
    The literal ``"repro-bundle"`` (detects non-bundle ``.npz`` files).
``schema_version``
    Integer; loading a bundle written with an unsupported schema raises
    :class:`BundleFormatError` with a clear message instead of garbage.
``estimator``
    The registry key of the estimator that wrote the bundle.
``dtypes``
    Per-array dtype strings recorded at save time and re-checked at load
    time, so silent dtype conversion anywhere in the round trip is an error
    rather than an accuracy drift.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.utils.paths import atomic_write, normalize_npz_path, resolve_npz_read_path

#: current bundle schema; bump when the layout changes incompatibly
SCHEMA_VERSION = 1

#: reserved archive key holding the JSON manifest
MANIFEST_KEY = "__manifest__"

_FORMAT = "repro-bundle"


class BundleFormatError(ValueError):
    """Raised when a file is not a bundle or uses an unsupported schema."""


#: the shared ``.npz`` read-path convention (kept under its historical name —
#: ``save_bundle("/tmp/model")`` writes ``/tmp/model.npz`` and loading with
#: either string works)
resolve_read_path = resolve_npz_read_path


def save_bundle(
    path: str | os.PathLike,
    arrays: dict[str, np.ndarray],
    manifest: dict,
) -> str:
    """Write ``arrays`` + ``manifest`` as one bundle; returns the path written.

    The manifest is augmented with the format tag, the schema version and the
    per-array dtype table; caller-provided keys win except for ``dtypes``.
    """
    path = normalize_npz_path(path)
    payload = {key: np.asarray(value) for key, value in arrays.items()}
    if MANIFEST_KEY in payload:
        raise ValueError(f"array key {MANIFEST_KEY!r} is reserved for the manifest")
    manifest = dict(manifest)
    manifest.setdefault("format", _FORMAT)
    manifest.setdefault("schema_version", SCHEMA_VERSION)
    manifest["dtypes"] = {key: str(value.dtype) for key, value in payload.items()}
    encoded = json.dumps(manifest, sort_keys=True).encode("utf-8")
    payload[MANIFEST_KEY] = np.frombuffer(encoded, dtype=np.uint8)
    # tmp + os.replace via atomic_write: a crash mid-save (or an injected
    # checkpoint.write fault) leaves the previous bundle intact, never a
    # truncated archive (also sidesteps np.savez re-appending ".npz" to a
    # string path whose suffix differs in case, e.g. "model.NPZ")
    return atomic_write(path, lambda handle: np.savez(handle, **payload))


def _decode_manifest(raw: np.ndarray) -> dict:
    try:
        return json.loads(bytes(np.asarray(raw, dtype=np.uint8)).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:  # pragma: no cover - corrupt file
        raise BundleFormatError(f"bundle manifest is not valid JSON: {exc}") from exc


def _check_manifest(manifest: dict, path: str) -> None:
    if manifest.get("format") != _FORMAT:
        raise BundleFormatError(
            f"{path!r} is not a repro bundle (format={manifest.get('format')!r})"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BundleFormatError(
            f"{path!r} uses bundle schema version {version!r}; this build only "
            f"supports version {SCHEMA_VERSION} — re-save the bundle with a "
            "matching version of the library"
        )


def load_bundle(path: str | os.PathLike) -> tuple[dict[str, np.ndarray], dict]:
    """Read a bundle back as ``(arrays, manifest)``.

    Raises :class:`BundleFormatError` for non-bundle archives, unsupported
    schema versions, or dtype drift between save and load.
    """
    path = resolve_read_path(path)
    with np.load(path) as archive:
        if MANIFEST_KEY not in archive.files:
            raise BundleFormatError(
                f"{path!r} has no manifest; it is a legacy state-dict archive, "
                "not a bundle (use repro.nn.serialization.load_state_dict)"
            )
        manifest = _decode_manifest(archive[MANIFEST_KEY])
        _check_manifest(manifest, path)
        arrays = {key: archive[key] for key in archive.files if key != MANIFEST_KEY}
    for key, dtype in manifest.get("dtypes", {}).items():
        if key in arrays and str(arrays[key].dtype) != dtype:
            raise BundleFormatError(
                f"dtype drift for {key!r}: saved as {dtype}, loaded as "
                f"{arrays[key].dtype}"
            )
    return arrays, manifest


def sub_state(state: dict[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    """Extract the sub-dictionary of ``state`` under ``prefix.``."""
    return {
        key[len(prefix) + 1 :]: value
        for key, value in state.items()
        if key.startswith(prefix + ".")
    }


def peek_manifest(path: str | os.PathLike) -> dict | None:
    """Return the manifest of ``path``, or ``None`` for legacy archives."""
    path = resolve_read_path(path)
    with np.load(path) as archive:
        if MANIFEST_KEY not in archive.files:
            return None
        manifest = _decode_manifest(archive[MANIFEST_KEY])
    _check_manifest(manifest, path)
    return manifest
