"""``repro.api`` — the public estimator contract shared by every model.

This package defines the three pieces that make AimTS and all of its
comparison baselines interchangeable:

* :class:`~repro.api.estimator.Estimator` — the structural protocol every
  model implements: ``pretrain(corpus_or_X)``, ``fine_tune(dataset, config)``,
  ``encode(X)``, ``predict(X)`` / ``predict_proba(X)`` and ``save(path)`` /
  ``load(path)``.
* :mod:`~repro.api.registry` — string-keyed registries of estimators,
  encoders and augmentations, so experiments can be driven by config:
  ``make_estimator("ts2vec", repr_dim=32)``.
* :mod:`~repro.api.bundle` — versioned full-bundle checkpoints: one ``.npz``
  holding every weight array plus an embedded JSON manifest (schema version,
  originating config, label map, fine-tuned classifier, ...), loadable back
  into a fresh estimator with :func:`~repro.api.registry.load_estimator`.

>>> from repro.api import make_estimator, estimator_names
>>> sorted(estimator_names())  # doctest: +ELLIPSIS
['aimts', ...]
>>> model = make_estimator("rocket", n_kernels=100)
"""

from repro.api.estimator import Estimator, FineTunedPredictorMixin, RidgePredictorMixin
from repro.api.bundle import (
    SCHEMA_VERSION,
    BundleFormatError,
    load_bundle,
    peek_manifest,
    save_bundle,
)
from repro.api.registry import (
    AUGMENTATIONS,
    ENCODERS,
    ESTIMATORS,
    Registry,
    estimator_names,
    load_estimator,
    make_estimator,
)

__all__ = [
    "Estimator",
    "FineTunedPredictorMixin",
    "RidgePredictorMixin",
    "Registry",
    "ESTIMATORS",
    "ENCODERS",
    "AUGMENTATIONS",
    "make_estimator",
    "load_estimator",
    "estimator_names",
    "save_bundle",
    "load_bundle",
    "peek_manifest",
    "BundleFormatError",
    "SCHEMA_VERSION",
]
