"""``repro.api`` — the public estimator contract shared by every model.

This package defines the three pieces that make AimTS and all of its
comparison baselines interchangeable:

* :class:`~repro.api.estimator.Estimator` — the structural protocol every
  model implements: ``pretrain(corpus_or_X)``, ``fine_tune(dataset, config)``,
  ``encode(X)``, ``predict(X)`` / ``predict_proba(X)`` and ``save(path)`` /
  ``load(path)``.
* :mod:`~repro.api.registry` — string-keyed registries of estimators,
  encoders and augmentations, so experiments can be driven by config:
  ``make_estimator("ts2vec", repr_dim=32)``.
* :mod:`~repro.api.bundle` — versioned full-bundle checkpoints: one ``.npz``
  holding every weight array plus an embedded JSON manifest (schema version,
  originating config, label map, fine-tuned classifier, ...), loadable back
  into a fresh estimator with :func:`~repro.api.registry.load_estimator`.

On top of those, :func:`serve` turns a saved bundle into a running
:class:`repro.serving.ModelServer` — the micro-batching front door over the
fused inference path.

>>> from repro.api import make_estimator, estimator_names
>>> sorted(estimator_names())  # doctest: +ELLIPSIS
['aimts', ...]
>>> model = make_estimator("rocket", n_kernels=100)
"""

from repro.api.estimator import Estimator, FineTunedPredictorMixin, RidgePredictorMixin
from repro.api.bundle import (
    SCHEMA_VERSION,
    BundleFormatError,
    load_bundle,
    peek_manifest,
    save_bundle,
)
from repro.api.registry import (
    AUGMENTATIONS,
    ENCODERS,
    ESTIMATORS,
    Registry,
    estimator_names,
    load_estimator,
    make_estimator,
)


def serve(path, *, eval_mode: bool = True, start: bool = True, **server_kwargs):
    """Load a bundle checkpoint and stand up a micro-batching model server.

    Convenience over :meth:`repro.serving.ModelServer.from_bundle`: the
    bundle at ``path`` is loaded with ``eval_mode`` Conv→BN folding (on by
    default) and wrapped in a started server — use it as a context manager
    so it drains and shuts down cleanly::

        with serve("model.npz", max_wait_ms=2.0) as server:
            label = server.submit(sample).result()

    ``server_kwargs`` are forwarded to the ``ModelServer`` constructor
    (``max_batch``, ``max_wait_ms``, ``n_workers``, ...).  Pass
    ``start=False`` to get an unstarted server.
    """
    from repro.serving import ModelServer

    server = ModelServer.from_bundle(path, eval_mode=eval_mode, **server_kwargs)
    return server.start() if start else server


__all__ = [
    "Estimator",
    "FineTunedPredictorMixin",
    "RidgePredictorMixin",
    "Registry",
    "ESTIMATORS",
    "ENCODERS",
    "AUGMENTATIONS",
    "make_estimator",
    "load_estimator",
    "estimator_names",
    "serve",
    "save_bundle",
    "load_bundle",
    "peek_manifest",
    "BundleFormatError",
    "SCHEMA_VERSION",
]
