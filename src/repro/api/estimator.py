"""The :class:`Estimator` protocol — one contract for every model in the repo.

AimTS, the self-supervised baselines (TS2Vec, TS-TCC, T-Loss, TNC, SimCLR,
MOMENT-like, UniTS-like) and the supervised baselines (SupervisedCNN, Linear,
Rocket, MiniRocket) all expose the same sklearn-style surface, so the
evaluation protocols, examples and sweeps never special-case a model family:

``pretrain(corpus_or_X)``
    Self-supervised pre-training on a list of datasets (multi-source) or a
    raw ``(N, M, T)`` pool.  A no-op for models without a pre-training stage
    (supervised / closed-form estimators return ``None``).
``fine_tune(dataset, config=None, *, label_ratio=None)``
    Supervised adaptation to one downstream dataset; always returns a
    :class:`~repro.core.finetuner.FineTuneResult`.
``encode(X)``
    Fixed-size representations of ``(n, M, T)`` samples.
``predict(X)`` / ``predict_proba(X)``
    Batch inference with the fine-tuned classifier.
``save(path)`` / ``load(path)``
    Full-bundle checkpointing (see :mod:`repro.api.bundle`).

This module intentionally imports nothing from :mod:`repro.core` or
:mod:`repro.baselines`; conformance is structural (duck-typed), checked at
runtime via :func:`isinstance` thanks to :func:`typing.runtime_checkable`.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

from repro.nn.inference import DEFAULT_SERVING_BATCH_SIZE  # noqa: F401  (re-export)


@runtime_checkable
class Estimator(Protocol):
    """Structural protocol implemented by every registered model."""

    #: display name used in result tables (e.g. ``"TS2Vec"``)
    name: str
    #: registry key the estimator is constructible from (e.g. ``"ts2vec"``)
    api_name: str
    #: whether :meth:`pretrain` performs real work (False for supervised models)
    supports_pretraining: bool

    def pretrain(self, corpus_or_X, **kwargs): ...

    def fine_tune(self, dataset, config=None, *, label_ratio: float | None = None): ...

    def encode(self, X: np.ndarray) -> np.ndarray: ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...

    def predict_proba(self, X: np.ndarray) -> np.ndarray: ...

    def save(self, path: str | os.PathLike) -> str: ...

    def load(self, path: str | os.PathLike): ...


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class RidgePredictorMixin:
    """``predict`` / ``predict_proba`` from closed-form decision scores.

    Estimators whose classifier is a ridge head (Rocket, LinearClassifier)
    mix this in and implement ``_decision_scores(X) -> (n, n_classes)``.
    ``self._label_map`` records the class labels the head was fitted against
    (contiguous ``0..n_classes-1`` today); it is persisted in bundles but
    deliberately NOT used to remap predictions, so ``predict`` and the column
    order of ``predict_proba`` always agree.
    """

    _label_map: np.ndarray | None = None

    def _decision_scores(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels for ``(n, M, T)`` samples."""
        return self._decision_scores(X).argmax(axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax-normalised decision scores ``(n, n_classes)``."""
        return softmax(self._decision_scores(X))


#: ``DEFAULT_SERVING_BATCH_SIZE`` (re-exported above) is the serving
#: micro-batch size used when an estimator's config does not set one; the
#: single authoritative constant lives in ``repro.nn.inference`` so the
#: config dataclasses share it without import cycles.


class FineTunedPredictorMixin:
    """``predict`` / ``predict_proba`` on top of a fitted ``FineTuner``.

    Estimators whose downstream stage is a :class:`~repro.core.finetuner.
    FineTuner` (AimTS, every neural baseline) mix this in and set
    ``self._finetuner`` and ``self._label_map`` inside :meth:`fine_tune`;
    the mixin then exposes batch-sized inference on the facade so callers
    never reach into ``FineTuner`` internals.  Serving streams micro-batches
    through the fine-tuner's fused no-grad path; the batch size defaults to
    the estimator config's ``encode_batch_size`` when it defines one.

    ``self._label_map`` records the class labels the classifier was trained
    against (contiguous ``0..n_classes-1`` today); it is persisted in bundles
    but deliberately NOT used to remap predictions, so ``predict`` and the
    column order of ``predict_proba`` always agree.
    """

    _finetuner = None
    _label_map: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether a fine-tuned classifier is available for prediction."""
        return self._finetuner is not None and self._finetuner.classifier is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(
                f"{type(self).__name__} has no fine-tuned classifier; "
                "call fine_tune() (or load a fine-tuned bundle) before predict()"
            )

    def _serving_batch_size(self) -> int:
        """The configured serving micro-batch size (``config.encode_batch_size``)."""
        configured = getattr(getattr(self, "config", None), "encode_batch_size", None)
        return int(configured) if configured else DEFAULT_SERVING_BATCH_SIZE

    def predict(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Predict class labels for ``(n, M, T)`` samples."""
        self._require_fitted()
        return self._finetuner.predict(
            X, batch_size=batch_size or self._serving_batch_size()
        )

    def predict_proba(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Class probabilities ``(n, n_classes)`` for ``(n, M, T)`` samples."""
        self._require_fitted()
        return self._finetuner.predict_proba(
            X, batch_size=batch_size or self._serving_batch_size()
        )

    def workspace_stats(self) -> dict[str, int]:
        """Merged buffer-arena counters of the estimator's inference workspaces.

        Sums ``hits`` / ``misses`` / ``nbytes`` / ``peak_bytes`` / ``buffers``
        over every :class:`~repro.nn.inference.Workspace` the estimator owns
        (the fine-tuner's prediction arena, the pre-trainer's / baseline's
        ``encode`` arena).  ``ModelServer.stats()`` aggregates this across
        replicas so operators can verify steady-state serving allocates
        nothing.
        """
        merged = {"hits": 0, "misses": 0, "nbytes": 0, "peak_bytes": 0, "buffers": 0}
        seen: set[int] = set()
        owners = (self._finetuner, getattr(self, "pretrainer", None), self)
        for owner in owners:
            workspace = getattr(owner, "_workspace", None)
            if workspace is None or id(workspace) in seen:
                continue
            seen.add(id(workspace))
            for key, value in workspace.stats().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    # --------------------------------------------------- bundle (de)serialization
    def _pack_finetuner(self, arrays: dict, manifest: dict) -> None:
        """Add the fitted fine-tuner's weights + metadata to a bundle in place.

        Writes the ``finetune.encoder.* / finetune.classifier.* /
        finetune.label_map`` arrays and the ``manifest["finetune"]`` section
        every estimator family shares.
        """
        import dataclasses

        for key, value in self._finetuner.encoder.state_dict().items():
            arrays[f"finetune.encoder.{key}"] = value
        for key, value in self._finetuner.classifier.state_dict().items():
            arrays[f"finetune.classifier.{key}"] = value
        arrays["finetune.label_map"] = np.asarray(self._label_map, dtype=np.int64)
        manifest["finetune"] = {
            "n_classes": int(self._finetuner.n_classes),
            "n_variables": int(self._finetuner.n_variables),
            "channel_aggregation": self._finetuner.encoder.channel_aggregation,
            "config": dataclasses.asdict(self._finetuner.config),
        }

    def _restore_finetuner(self, finetuner, state: dict, finetune: dict) -> None:
        """Arm ``self`` with a fine-tuner rebuilt from a bundle's state.

        ``finetuner`` is a freshly constructed (un-fitted) FineTuner whose
        encoder matches the estimator's architecture; its weights are
        overwritten from the ``finetune.*`` arrays saved by
        :meth:`_pack_finetuner`.
        """
        from repro.api.bundle import sub_state

        finetuner.encoder.channel_aggregation = finetune["channel_aggregation"]
        finetuner._ensure_classifier(finetune["n_variables"])
        finetuner.encoder.load_state_dict(sub_state(state, "finetune.encoder"))
        finetuner.classifier.load_state_dict(sub_state(state, "finetune.classifier"))
        self._finetuner = finetuner
        self._label_map = np.asarray(state["finetune.label_map"], dtype=np.int64)
