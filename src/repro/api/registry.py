"""String-keyed component registries and the ``make_estimator`` entry point.

Three registries are populated on first use (imports stay cheap and cycle
free): :data:`ESTIMATORS` (every model in the repo), :data:`ENCODERS` (the
neural trunks and heads) and :data:`AUGMENTATIONS` (the series augmentation
ops).  Each maps a lower-case name to a factory, so experiments are driven
by plain data:

>>> from repro.api import make_estimator
>>> model = make_estimator("ts2vec", repr_dim=32)           # name + overrides
>>> model = make_estimator({"name": "rocket", "n_kernels": 100})  # spec dict

For estimator families configured through a dataclass (``AimTSConfig`` /
``BaselineConfig``) the factory splits overrides automatically: keys naming a
config field go into the config, everything else into the constructor
(``make_estimator("ts2vec", repr_dim=32, tau=0.1)``).
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Mapping
from typing import Callable

from repro.api.bundle import BundleFormatError, load_bundle


class Registry:
    """A case-insensitive name → factory mapping for one component kind."""

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable] = {}

    @staticmethod
    def _key(name: str) -> str:
        return name.strip().lower()

    def register(self, name: str, factory: Callable | None = None):
        """Register ``factory`` under ``name`` (also usable as a decorator).

        Re-registering a name overrides it — including the builtins, which
        are populated first so a custom registration is never clobbered by
        the lazy builtin population later.
        """
        self._populate()
        key = self._key(name)
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self._factories[key] = fn
                return fn

            return decorator
        self._factories[key] = factory
        return factory

    def create(self, name: str, **kwargs):
        """Instantiate the component registered under ``name``."""
        self._populate()
        key = self._key(name)
        if key not in self._factories:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            )
        return self._factories[key](**kwargs)

    def names(self) -> list[str]:
        """Sorted registered names."""
        self._populate()
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        self._populate()
        return self._key(name) in self._factories

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        self._populate()
        return len(self._factories)

    def _populate(self) -> None:
        _populate_builtins()


#: every model in the repo (AimTS + all comparison baselines)
ESTIMATORS = Registry("estimator")
#: neural trunks and heads
ENCODERS = Registry("encoder")
#: series augmentation ops (the G-augmentation bank vocabulary)
AUGMENTATIONS = Registry("augmentation")

_POPULATED = False
_POPULATING = False  # reentrancy guard: _populate_builtins itself calls register()


def _config_split_factory(cls, config_cls) -> Callable:
    """Factory that routes overrides into the config dataclass vs. the ctor."""
    config_fields = {field.name for field in dataclasses.fields(config_cls)}

    def factory(config=None, **overrides):
        config_kwargs = {
            key: overrides.pop(key) for key in list(overrides) if key in config_fields
        }
        if config is None:
            config = config_cls(**config_kwargs)
        elif config_kwargs:
            config = dataclasses.replace(config, **config_kwargs)
        return cls(config, **overrides)

    factory.component_class = cls
    return factory


def _populate_builtins() -> None:
    """Register the built-in components (idempotent, lazy to avoid cycles)."""
    global _POPULATED, _POPULATING
    if _POPULATED or _POPULATING:
        return
    _POPULATING = True
    try:
        from repro.augmentations import ops as aug_ops
        from repro.baselines import (
            LinearClassifier,
            MiniRocket,
            MomentLike,
            Rocket,
            SimCLR,
            SupervisedCNN,
            TLoss,
            TNC,
            TS2Vec,
            TSTCC,
            UniTSLike,
        )
        from repro.baselines.base import BaselineConfig
        from repro.core.config import AimTSConfig
        from repro.core.model import AimTS
        from repro.encoders import ClassifierHead, ImageEncoder, ProjectionHead, TSEncoder

        ESTIMATORS.register(AimTS.api_name, _config_split_factory(AimTS, AimTSConfig))
        for cls in (TS2Vec, TSTCC, TLoss, TNC, SimCLR, MomentLike, UniTSLike):
            ESTIMATORS.register(cls.api_name, _config_split_factory(cls, BaselineConfig))
        for cls in (SupervisedCNN, LinearClassifier, Rocket, MiniRocket):
            ESTIMATORS.register(cls.api_name, cls)  # plain keyword constructors

        ENCODERS.register("ts_encoder", TSEncoder)
        ENCODERS.register("image_encoder", ImageEncoder)
        ENCODERS.register("projection", ProjectionHead)
        ENCODERS.register("classifier", ClassifierHead)

        for cls in (
            aug_ops.Jitter,
            aug_ops.Scaling,
            aug_ops.TimeWarp,
            aug_ops.Slicing,
            aug_ops.WindowWarp,
            aug_ops.Permutation,
            aug_ops.Masking,
        ):
            AUGMENTATIONS.register(cls.name, cls)

        # only mark populated once every registration succeeded, so a failed
        # first population re-raises its real error instead of leaving the
        # registries permanently empty
        _POPULATED = True
    finally:
        _POPULATING = False


def make_estimator(spec, **overrides):
    """Construct an estimator from a name or spec dict plus overrides.

    ``spec`` is either a registry name (``"aimts"``, ``"ts2vec"``, ...) or a
    mapping with a ``"name"`` key whose remaining items are treated as
    overrides (explicit keyword ``overrides`` win on conflict).
    """
    if isinstance(spec, Mapping):
        spec = dict(spec)
        try:
            name = spec.pop("name")
        except KeyError:
            raise ValueError("estimator spec dict requires a 'name' key") from None
        overrides = {**spec, **overrides}
    else:
        name = spec
    return ESTIMATORS.create(name, **overrides)


def estimator_names() -> list[str]:
    """Names of every registered estimator."""
    return ESTIMATORS.names()


def _fold_targets(estimator) -> list:
    """Modules of ``estimator`` that eval-mode Conv→BN folding applies to.

    Duck-typed over the repo's estimator families: the AimTS facade exposes a
    ``pretrainer`` with ``_trainable_modules()``, the neural baselines expose
    ``encoder`` / ``projection``, and any fitted estimator carries a
    fine-tuner with its own encoder + classifier.  Estimators without neural
    modules (Rocket, LinearClassifier) simply contribute nothing.
    """
    from repro.nn.module import Module

    targets: list = []
    pretrainer = getattr(estimator, "pretrainer", None)
    if pretrainer is not None and hasattr(pretrainer, "_trainable_modules"):
        targets.extend(pretrainer._trainable_modules())
    for attribute in ("encoder", "projection"):
        module = getattr(estimator, attribute, None)
        if isinstance(module, Module):
            targets.append(module)
    finetuner = getattr(estimator, "_finetuner", None)
    if finetuner is not None:
        targets.extend(
            module
            for module in (finetuner.encoder, finetuner.classifier)
            if isinstance(module, Module)
        )
    return targets


def load_estimator(path: str | os.PathLike, *, eval_mode: bool = False):
    """Reconstruct a fully working estimator from a bundle checkpoint.

    Reads the bundle manifest, rebuilds the estimator from the registry using
    the originating config stored in it, then loads all weights — including a
    fine-tuned classifier when present, so ``load_estimator(p).predict(X)``
    works with no further calls.

    ``eval_mode=True`` additionally prepares the estimator for serving: every
    eval-time Conv→BatchNorm pair is folded **once at load time** (see
    :func:`repro.nn.inference.fold_batchnorms`) instead of on every
    ``predict`` call.  The folded estimator predicts identically but must not
    be trained further or re-saved — the bundle file stays the source of
    truth (``repro.serving.ModelServer.reload`` re-loads from the path).
    """
    arrays, manifest = load_bundle(path)
    name = manifest.get("estimator")
    if not name:
        raise BundleFormatError(f"bundle {str(path)!r} does not name its estimator")
    if manifest.get("kind") == "train-state":
        raise BundleFormatError(
            f"{str(path)!r} is a training-engine checkpoint, not an estimator "
            "bundle; rebuild the trainer and continue it with "
            "repro.engine.Trainer.resume(path) (e.g. "
            "AimTSPretrainer.fit(..., resume_from=path))"
        )
    overrides = dict(manifest.get("config") or {})
    overrides.update(manifest.get("init_kwargs") or {})
    estimator = make_estimator(name, **overrides)
    if hasattr(estimator, "_load_from_state"):  # reuse the bundle read above
        estimator._load_from_state(arrays, manifest)
    else:  # pragma: no cover - third-party estimators without the fast path
        estimator.load(path)
    if eval_mode:
        from repro.nn.inference import fold_batchnorms

        folded = 0
        for module in _fold_targets(estimator):
            module.eval()
            folded += fold_batchnorms(module)
        estimator._bn_folded = folded
    return estimator
