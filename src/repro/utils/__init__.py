"""Utility helpers shared across the AimTS reproduction.

The submodules are intentionally small and dependency-free:

* :mod:`repro.utils.seeding` — deterministic RNG management.
* :mod:`repro.utils.validation` — argument checking helpers.
* :mod:`repro.utils.tables` — plain-text result tables used by the benchmark
  harness to print paper-style rows.
"""

from repro.utils.seeding import new_rng, seed_everything
from repro.utils.tables import ResultTable
from repro.utils.validation import (
    check_array,
    check_in_options,
    check_positive,
    check_probability,
)

__all__ = [
    "new_rng",
    "seed_everything",
    "ResultTable",
    "check_array",
    "check_in_options",
    "check_positive",
    "check_probability",
]
