"""Plain-text result tables.

The benchmark harness reports the same rows as the paper's tables.  Because
neither pandas nor matplotlib is available offline, this module provides a
minimal table formatter with fixed-width columns that renders nicely in a
terminal and in ``EXPERIMENTS.md`` code blocks.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class ResultTable:
    """A simple column-aligned text table.

    Examples
    --------
    >>> table = ResultTable(["Method", "Avg. ACC"], title="Table I")
    >>> table.add_row(["AimTS", 0.87])
    >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None, float_format: str = "{:.3f}"):
        if not columns:
            raise ValueError("columns must not be empty")
        self.columns = list(columns)
        self.title = title
        self.float_format = float_format
        self._rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; floats are formatted with ``float_format``."""
        row = [self._format(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    def _format(self, value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    def render(self) -> str:
        """Return the table as a multi-line string."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self._rows
        )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial delegation
        return self.render()

    @property
    def rows(self) -> list[list[str]]:
        """The formatted rows added so far (read-only copy)."""
        return [list(r) for r in self._rows]
