"""Deterministic random-number management.

Every stochastic component in the library (augmentations, data generators,
weight initialisation, training loops) accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalise both forms and keep a
single process-wide default generator so that examples and benchmarks are
reproducible without threading a generator through every call site.
"""

from __future__ import annotations

import random

import numpy as np

_GLOBAL_SEED = 3407  # the seed used throughout the AimTS paper
_global_rng = np.random.default_rng(_GLOBAL_SEED)


def seed_everything(seed: int = _GLOBAL_SEED) -> np.random.Generator:
    """Seed Python's ``random`` and the library-wide NumPy generator.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  The paper uses ``3407`` everywhere, which
        is also the default here.

    Returns
    -------
    numpy.random.Generator
        The freshly seeded library-wide generator.
    """
    global _global_rng
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    random.seed(seed)
    _global_rng = np.random.default_rng(seed)
    return _global_rng


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` returns a child of the library-wide generator (so repeated calls
    differ but the whole program stays reproducible), an integer returns a
    fresh generator, and an existing generator is passed through unchanged.
    """
    if seed is None:
        return np.random.default_rng(_global_rng.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
