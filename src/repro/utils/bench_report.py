"""Throughput-trajectory report over the ``BENCH_*.json`` measurement files.

Every perf benchmark module appends one JSON record per run, so the files at
the repo root hold the whole measured performance history of the
reproduction.  This script condenses them into a table per file: one row per
benchmark name and headline metric (``*samples_per_sec*`` / ``*speedup*`` /
``*hit_rate*`` / ``*requests_per_sec*`` / ``*latency_ms*``), showing the
first recorded value, the latest, the delta of the latest run against the
run before it, and the overall trajectory.

Measurement files are discovered by globbing ``BENCH_*.json`` in the target
directory, so a new benchmark module only has to pick a file name — no
registration here.  A preferred pipeline order (:data:`BENCH_FILES`) is kept
for the known files; newcomers sort alphabetically after them.

Run it locally after a benchmark session, or let the ``Perf benchmarks``
workflow write it into the GitHub job summary::

    PYTHONPATH=src python -m repro.utils.bench_report [--dir REPO_ROOT]

The output is GitHub-flavoured markdown (tables render in job summaries and
terminals alike).  Exit code 0 even when files are missing — the report
describes what exists, it does not gate.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: known measurement files, in pipeline order (used only for sorting —
#: discovery is by glob, see :func:`discover_bench_files`)
BENCH_FILES = (
    "BENCH_imaging.json",
    "BENCH_corpus.json",
    "BENCH_training.json",
    "BENCH_inference.json",
    "BENCH_serving.json",
)

#: substrings marking a record field as a headline metric worth tracking
METRIC_MARKERS = (
    "samples_per_sec",
    "speedup",
    "hit_rate",
    "requests_per_sec",
    "latency_ms",
    "peak_rss_mb",
    "spilled_bytes",
    "disk_hits",
    "readback_failures",
    "spill_retries",
    "producer_occupancy",
    "consumer_stall_seconds",
    "goodput_rps",
    "n_shed",
    "n_deadline_expired",
    # per-phase step profile + buffer-arena counters (PR 10): flat keys like
    # profile_forward_seconds / arena_misses / workspace_peak_bytes
    "profile_",
    "arena_",
    "workspace_",
)


def discover_bench_files(directory: Path) -> list[Path]:
    """Every ``BENCH_*.json`` in ``directory``, pipeline order then name.

    Files named in :data:`BENCH_FILES` keep their pipeline position; any
    other match (a future benchmark module's file) sorts alphabetically
    after them, so nothing needs registering to appear in the report.
    """
    known = {name: index for index, name in enumerate(BENCH_FILES)}
    paths = [path for path in directory.glob("BENCH_*.json") if path.is_file()]
    return sorted(paths, key=lambda p: (known.get(p.name, len(known)), p.name))


def _is_metric(key: str, value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and any(marker in key for marker in METRIC_MARKERS)
    )


def _format(value: float) -> str:
    return f"{value:,.2f}" if abs(value) < 100 else f"{value:,.0f}"


def _delta(latest: float, previous: float) -> str:
    if previous == 0:
        return "n/a"
    change = (latest - previous) / abs(previous) * 100.0
    return f"{change:+.1f}%"


def trajectories(records: list[dict]) -> dict[tuple[str, str], list[float]]:
    """Per ``(benchmark, metric)`` value series, in recorded order."""
    series: dict[tuple[str, str], list[float]] = {}
    for record in records:
        name = str(record.get("benchmark", "?"))
        for key, value in record.items():
            if _is_metric(key, value):
                series.setdefault((name, key), []).append(float(value))
    return series


def report_file(path: Path) -> list[str]:
    """Markdown lines summarising one ``BENCH_*.json`` file."""
    lines = [f"## {path.name}", ""]
    if not path.exists():  # tolerated for direct report_file() callers
        lines.append("_no measurements recorded yet_")
        lines.append("")
        return lines
    try:
        records = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        lines.append(f"_unreadable: {error}_")
        lines.append("")
        return lines
    series = trajectories(records)
    if not series:
        lines.append("_no headline metrics found_")
        lines.append("")
        return lines
    lines.append("| benchmark | metric | first | latest | vs prev | overall |")
    lines.append("|---|---|---:|---:|---:|---:|")
    for (name, metric), values in sorted(series.items()):
        first, latest = values[0], values[-1]
        previous = values[-2] if len(values) > 1 else first
        overall = f"{latest / first:.2f}x" if first else "n/a"
        lines.append(
            f"| {name} | {metric} | {_format(first)} | {_format(latest)} "
            f"| {_delta(latest, previous)} | {overall} |"
        )
    lines.append("")
    return lines


def build_report(directory: Path) -> str:
    """The full markdown report over every discovered measurement file."""
    lines = ["# Measured performance trajectory", ""]
    paths = discover_bench_files(directory)
    if not paths:
        lines.append(f"_no BENCH_*.json measurement files in {directory}_")
        lines.append("")
    for path in paths:
        lines.extend(report_file(path))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise the BENCH_*.json throughput trajectories."
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path(__file__).resolve().parents[3],
        help="directory holding the BENCH_*.json files (default: repo root)",
    )
    args = parser.parse_args(argv)
    print(build_report(args.dir))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
