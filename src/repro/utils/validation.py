"""Lightweight argument validation helpers.

These keep error messages consistent across the library and avoid repeating
the same ``if``/``raise`` blocks in every public entry point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_options(name: str, value: str, options: Sequence[str]) -> str:
    """Raise ``ValueError`` unless ``value`` is one of ``options``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {sorted(options)}, got {value!r}")
    return value


def check_array(
    name: str,
    array: np.ndarray,
    *,
    ndim: int | None = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Validate a NumPy array argument and return it as ``float64``/``int`` array.

    Parameters
    ----------
    name:
        Argument name used in error messages.
    array:
        Array-like input.
    ndim:
        Required number of dimensions, if any.
    allow_empty:
        Whether zero-sized arrays are accepted.
    """
    arr = np.asarray(array)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr
