"""Deterministic fault injection for chaos testing.

Production code calls :func:`fault_point` at named *injection sites* (dotted
names such as ``producer.step`` or ``checkpoint.write``).  When no plan is
armed the call is two module-global reads — cheap enough to leave in hot
paths.  When a :class:`FaultPlan` is armed, each process counts invocations
per site, and the call raises :class:`InjectedFault` exactly on the chosen
``(site, invocation_index)`` pairs.

Plans propagate to spawned children through the ``REPRO_FAULT_PLAN``
environment variable: :func:`arm` exports the plan, and the first
:func:`fault_point` call in a child lazily imports it.  Invocation counters
are per *process*, so a respawned worker would replay the same indices and
re-fire the same fault forever; passing ``scratch_dir`` makes every fault a
one-shot **fuse** — the firing process atomically claims a marker file, and
a claimed fault never fires again in any process.  Crash/recovery tests
should always use a fuse directory.

Injection sites currently wired in:

========================  ====================================================
``producer.step``         pipelined producer, start of one ``produce`` step
``worker.reduce``         gradient worker, before packing gradients
``server.worker``         serving worker thread, per dequeued batch
``corpus.read_shard``     ``ShardedCorpus`` shard file open
``spill.readback``        ``RenderCache`` disk-spill readback
``checkpoint.write``      atomic writer, after tmp write / before rename
========================  ====================================================
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import threading

#: environment variable carrying an armed plan to spawned children
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: dotted names of the injection sites wired into the codebase (used by
#: :meth:`FaultPlan.sample`; :func:`fault_point` accepts any string)
KNOWN_SITES = (
    "producer.step",
    "worker.reduce",
    "server.worker",
    "corpus.read_shard",
    "spill.readback",
    "checkpoint.write",
)


class InjectedFault(RuntimeError):
    """Raised by :func:`fault_point` when the armed plan selects this call.

    Distinguishable from organic failures so chaos tests can assert the
    recovery path was exercised by *injected* faults and nothing else.
    """

    def __init__(self, site: str, index: int):
        super().__init__(f"injected fault at {site}#{index}")
        self.site = site
        self.index = index


class FaultPlan:
    """A set of ``(site, invocation_index)`` pairs to fail, plus a fuse dir.

    ``faults`` is any iterable of ``(site, index)`` pairs.  ``scratch_dir``
    (optional, strongly recommended for multi-process sites) points at an
    existing directory used for one-shot fuse files.
    """

    def __init__(self, faults, scratch_dir: str | os.PathLike | None = None):
        self.faults: dict[str, frozenset[int]] = {}
        staged: dict[str, set[int]] = {}
        for site, index in faults:
            staged.setdefault(str(site), set()).add(int(index))
        for site, indices in staged.items():
            self.faults[site] = frozenset(indices)
        self.scratch_dir = None if scratch_dir is None else os.fspath(scratch_dir)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = sorted((s, i) for s, ix in self.faults.items() for i in ix)
        return f"FaultPlan({pairs!r}, scratch_dir={self.scratch_dir!r})"

    def pairs(self) -> list[tuple[str, int]]:
        """The planned faults as a sorted list of ``(site, index)`` pairs."""
        return sorted((s, i) for s, ix in self.faults.items() for i in ix)

    def to_env(self) -> str:
        """Serialise for the ``REPRO_FAULT_PLAN`` environment variable."""
        return json.dumps(
            {
                "faults": {site: sorted(ix) for site, ix in sorted(self.faults.items())},
                "scratch_dir": self.scratch_dir,
            }
        )

    @classmethod
    def from_env(cls, raw: str) -> "FaultPlan":
        spec = json.loads(raw)
        pairs = [
            (site, index)
            for site, indices in spec.get("faults", {}).items()
            for index in indices
        ]
        return cls(pairs, scratch_dir=spec.get("scratch_dir"))

    @classmethod
    def sample(
        cls,
        sites,
        *,
        seed: int,
        n_faults: int = 1,
        max_index: int = 3,
        scratch_dir: str | os.PathLike | None = None,
    ) -> "FaultPlan":
        """A seeded random plan over ``sites`` (for the chaos stress workflow).

        Draws ``n_faults`` distinct ``(site, index)`` pairs with
        ``index < max_index`` from ``random.Random(seed)``, so a failing seed
        reported by CI reproduces the exact same plan locally.
        """
        sites = list(sites)
        if not sites:
            raise ValueError("sample() needs at least one site")
        rng = random.Random(seed)
        universe = [(site, index) for site in sites for index in range(max_index)]
        n_faults = min(int(n_faults), len(universe))
        return cls(rng.sample(universe, n_faults), scratch_dir=scratch_dir)


# -- module state ------------------------------------------------------------
# Fast path: ``fault_point`` returns after two global reads when no plan is
# armed and the environment has already been checked once.

_plan: FaultPlan | None = None
_env_checked = False
_lock = threading.Lock()
_counters: dict[str, int] = {}


def _claim_fuse(scratch_dir: str, site: str, index: int) -> bool:
    """Atomically claim the one-shot fuse for ``(site, index)``.

    Returns ``True`` exactly once across every process sharing the scratch
    dir — O_CREAT|O_EXCL is the arbiter.
    """
    path = os.path.join(scratch_dir, f"{site}@{index}.fuse")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def fault_point(site: str) -> None:
    """Raise :class:`InjectedFault` iff the armed plan selects this call."""
    global _plan, _env_checked
    if _plan is None:
        if _env_checked:
            return
        with _lock:
            if not _env_checked:
                raw = os.environ.get(PLAN_ENV_VAR)
                if raw:
                    _plan = FaultPlan.from_env(raw)
                _env_checked = True
        if _plan is None:
            return
    plan = _plan
    with _lock:
        index = _counters.get(site, 0)
        _counters[site] = index + 1
    indices = plan.faults.get(site)
    if indices is None or index not in indices:
        return
    if plan.scratch_dir is not None and not _claim_fuse(plan.scratch_dir, site, index):
        return
    raise InjectedFault(site, index)


def invocation_count(site: str) -> int:
    """How many times ``site`` has been reached in *this* process."""
    with _lock:
        return _counters.get(site, 0)


def arm(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process and export it for spawned children."""
    global _plan, _env_checked
    with _lock:
        _plan = plan
        _env_checked = True
        _counters.clear()
    os.environ[PLAN_ENV_VAR] = plan.to_env()


def disarm() -> None:
    """Drop any armed plan and stop exporting it to children."""
    global _plan, _env_checked
    with _lock:
        _plan = None
        _env_checked = True
        _counters.clear()
    os.environ.pop(PLAN_ENV_VAR, None)


@contextlib.contextmanager
def armed(plan: FaultPlan):
    """``with armed(plan): ...`` — arm for the block, always disarm after."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()
