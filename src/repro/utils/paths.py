"""Shared ``.npz`` path conventions of the save/load surfaces.

Every archive writer in the library (:mod:`repro.api.bundle`,
:func:`repro.data.io.save_dataset`) follows the same contract: a missing
``.npz`` suffix is appended (case-insensitively, so ``model.NPZ`` is not
double-suffixed to ``model.NPZ.npz``), and the matching loader accepts the
same path string the saver was given — suffixed or not.
"""

from __future__ import annotations

import os


def normalize_npz_path(path: str | os.PathLike) -> str:
    """Append ``.npz`` unless the path already carries it (case-insensitive)."""
    path = str(path)
    if not path.lower().endswith(".npz"):
        path = path + ".npz"
    return path


def resolve_npz_read_path(path: str | os.PathLike) -> str:
    """Accept the same path string the saver was given.

    Saving to ``/tmp/model`` writes ``/tmp/model.npz``; loading with either
    string must work, so the suffix is appended when the bare path does not
    exist on disk.
    """
    path = str(path)
    if not os.path.exists(path):
        return normalize_npz_path(path)
    return path
