"""Shared ``.npz`` path conventions and atomic-write helpers.

Every archive writer in the library (:mod:`repro.api.bundle`,
:func:`repro.data.io.save_dataset`) follows the same contract: a missing
``.npz`` suffix is appended (case-insensitively, so ``model.NPZ`` is not
double-suffixed to ``model.NPZ.npz``), and the matching loader accepts the
same path string the saver was given — suffixed or not.

Durable writers (bundles, checkpoints, corpus manifests) go through
:func:`atomic_write` / :func:`atomic_write_npz`: the payload lands in a
same-directory temp file first and is published with one ``os.replace``, so
a crash mid-save leaves either the old file or the new one on disk — never
a truncated hybrid.
"""

from __future__ import annotations

import os
import tempfile

from repro.utils.faults import fault_point


def normalize_npz_path(path: str | os.PathLike) -> str:
    """Append ``.npz`` unless the path already carries it (case-insensitive)."""
    path = str(path)
    if not path.lower().endswith(".npz"):
        path = path + ".npz"
    return path


def resolve_npz_read_path(path: str | os.PathLike) -> str:
    """Accept the same path string the saver was given.

    Saving to ``/tmp/model`` writes ``/tmp/model.npz``; loading with either
    string must work, so the suffix is appended when the bare path does not
    exist on disk.
    """
    path = str(path)
    if not os.path.exists(path):
        return normalize_npz_path(path)
    return path


def atomic_write(path: str | os.PathLike, write, *, mode: str = "wb", encoding: str | None = None) -> str:
    """Write ``path`` atomically through the callable ``write(handle)``.

    The payload is written to a ``NamedTemporaryFile`` in the destination
    directory, flushed and fsynced, then published with ``os.replace`` —
    atomic on POSIX when source and target share a filesystem (which a
    same-directory temp file guarantees).  If ``write`` raises, the temp
    file is removed and the previous ``path`` (if any) is untouched.

    The ``checkpoint.write`` fault site sits between the finished temp write
    and the rename: an injected crash there is the worst case an atomic
    writer must survive, and the old file must still be intact.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    if encoding is None and "b" not in mode:
        encoding = "utf-8"
    handle = tempfile.NamedTemporaryFile(
        mode=mode,
        encoding=encoding,
        dir=directory,
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
        delete=False,
    )
    tmp_path = handle.name
    try:
        with handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("checkpoint.write")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_npz(path: str | os.PathLike, arrays: dict) -> str:
    """Atomically save ``arrays`` as an uncompressed ``.npz`` at ``path``.

    The ``.npz`` suffix is appended per :func:`normalize_npz_path`; returns
    the path actually written.
    """
    import numpy as np

    path = normalize_npz_path(path)
    return atomic_write(path, lambda handle: np.savez(handle, **arrays))
