"""The AimTS multi-source pre-training loop (paper Fig. 3a).

For every mini-batch drawn from the merged multi-source pool the pre-trainer:

1. generates two augmented view sets with the G-augmentation bank,
2. encodes all views with the TS encoder, projects them, and forms the two
   prototypes per sample,
3. computes the two-level prototype loss ``L_proto`` (Eq. 6) with adaptive
   temperatures derived from the raw augmented views,
4. renders each sample as a line-chart image, encodes it with the image
   encoder, and computes the series-image loss ``L_SI`` (Eq. 12) with the
   geodesic mixup negatives,
5. optimises both encoders and projection heads with Adam + StepLR on the
   total loss ``L = L_proto + L_SI`` (Eq. 1).
"""

from __future__ import annotations

import numpy as np

from repro.augmentations import AugmentationBank, default_bank
from repro.core.config import AimTSConfig
from repro.core.losses import prototype_loss, series_image_loss
from repro.core.prototypes import adaptive_temperatures, aggregate_prototype, pairwise_view_distances
from repro.data.dataset import TimeSeriesDataset
from repro.data.loaders import BatchIterator, _is_corpus, build_pretraining_pool
from repro.encoders import ImageEncoder, ProjectionHead, TSEncoder
from repro.engine import (
    DtypePolicy,
    History,
    ProgressLogger,
    Trainer,
    TrainLoop,
)
from repro.engine.profiler import profiled_phase
from repro.imaging import LineChartRenderer, RenderCache
from repro.nn import Adam, StepLR, Tensor, Workspace
from repro.nn import functional as F
from repro.nn.tensor import default_dtype
from repro.utils.seeding import new_rng


class PretrainHistory:
    """Per-epoch pre-training curves — a thin view over the engine history.

    Keeps the seed-era attribute shape (``total_loss`` / ``prototype_loss`` /
    ``series_image_loss`` / ``learning_rate`` lists plus :meth:`last`) while
    the data lives in one :class:`repro.engine.History` recorded by the
    trainer's :class:`~repro.engine.LossHistory` callback, available raw via
    :attr:`engine_history`.
    """

    #: attribute name → engine metric name
    _METRICS = {
        "total_loss": "loss",
        "prototype_loss": "prototype",
        "series_image_loss": "series_image",
        "learning_rate": "learning_rate",
    }

    def __init__(self, history: History | None = None):
        self._history = history if history is not None else History()

    @property
    def engine_history(self) -> History:
        """The underlying structured :class:`repro.engine.History`."""
        return self._history

    @property
    def total_loss(self) -> list[float]:
        return self._history.curve("loss")

    @property
    def prototype_loss(self) -> list[float]:
        return self._history.curve("prototype")

    @property
    def series_image_loss(self) -> list[float]:
        return self._history.curve("series_image")

    @property
    def learning_rate(self) -> list[float]:
        return self._history.curve("learning_rate")

    def last(self) -> dict[str, float]:
        """Summary of the final epoch (empty dict if no epoch has run)."""
        if not self.total_loss:
            return {}
        return {name: getattr(self, name)[-1] for name in self._METRICS}

    def __len__(self) -> int:
        return len(self.total_loss)

    def __repr__(self) -> str:
        return f"PretrainHistory(epochs={len(self)})"


def build_augmentation_bank(config: AimTSConfig, rng: np.random.Generator) -> AugmentationBank:
    """Instantiate the augmentation bank named in ``config.augmentation_names``.

    Names resolve through :data:`repro.api.registry.AUGMENTATIONS`, so banks
    are constructible from plain config the same way estimators are.  The
    ``config.augment_batched`` knob selects the vectorized batch kernels
    (default) or the per-sample reference loops — the two are bit-identical
    under the same RNG streams.
    """
    from repro.api.registry import AUGMENTATIONS

    augmentations = []
    for name in config.augmentation_names:
        if name not in AUGMENTATIONS:
            raise KeyError(
                f"unknown augmentation {name!r}; known: {AUGMENTATIONS.names()}"
            )
        augmentations.append(
            AUGMENTATIONS.create(name, seed=new_rng(int(rng.integers(0, 2**31))))
        )
    return AugmentationBank(augmentations).set_batched(
        getattr(config, "augment_batched", True)
    )


def _pretrain_producer_replica(config: AimTSConfig, producer_index: int):
    """Build one batch-producer replica of the pre-training produce stage.

    Module-level so spawn producers can unpickle it.  ``producer_index`` is
    deliberately unused for anything stochastic: every stream ``produce``
    consumes is re-keyed per step, so replicas are interchangeable and the
    pool can grow/shrink without touching the curve.
    """
    return _PretrainProducer(config)


class _PretrainProducer:
    """The produce stage of one pipelined pre-training step: render + augment.

    Holds its own augmentation bank, renderer and (when configured) render
    cache — a spill directory is shared with sibling producers through the
    cache's cross-process discovery, so each deterministic render is written
    once pool-wide.  Before each batch the bank's streams are re-derived from
    ``derive_step_seed(config.seed, epoch, step)``, making the output a pure
    function of the step key.
    """

    def __init__(self, config: AimTSConfig):
        self.config = config
        self.dtype_policy = DtypePolicy(
            compute_dtype=config.compute_dtype, image_dtype=config.image_dtype
        )
        self.bank = build_augmentation_bank(config, new_rng(config.seed))
        self.renderer = LineChartRenderer(
            panel_size=config.panel_size, dtype=self.dtype_policy.image_dtype
        )
        self.cache: RenderCache | None = None
        if config.use_series_image_loss and config.cache_images:
            self.cache = RenderCache(
                self.renderer,
                max_bytes=config.cache_max_bytes,
                insert_on_miss=True,
                spill_dir=config.cache_spill_dir,
                spill_max_bytes=config.cache_spill_max_bytes,
            )

    def produce(self, epoch: int, step: int, payload):
        """``(indices, series)`` → ``(series, images, views_a, views_b)``."""
        from repro.engine.parallel import derive_step_seed

        indices, series = payload
        cfg = self.config
        children = derive_step_seed(cfg.seed, epoch, step).spawn(cfg.n_augmentations)
        for augmentation, child in zip(self.bank, children):
            augmentation._rng = np.random.default_rng(child)
        views_a = views_b = None
        if cfg.use_prototype_loss:
            views_a, views_b = self.bank.two_views(series)
        images = None
        if cfg.use_series_image_loss:
            images = (
                self.cache.get_batch(series, indices)
                if self.cache is not None
                else self.renderer.render_batch(series)
            )
        return series, images, views_a, views_b


def _pretrain_worker_replica(config: AimTSConfig, worker_index: int, n_workers: int):
    """Build one gradient-worker replica of the pre-training objective.

    Runs inside a spawn worker (module-level so it pickles by reference).
    The replica's weights are irrelevant — every step begins by copying the
    parent's parameters from shared memory — but its stochastic components
    (augmentation bank, mixup stream) are reseeded with the deterministic
    per-shard stream ``SeedSequence([seed, worker_index, n_workers])``.
    """
    from repro.engine.parallel import derive_worker_seed

    pretrainer = AimTSPretrainer(config)
    pretrainer.reseed(derive_worker_seed(config.seed, worker_index, n_workers))
    loop = _PretrainLoop(pretrainer, pool=None, use_cache=False)
    # remember the shard identity so the pool can reseed the replica per step
    # (derive_worker_step_seed) — the bit-identical respawn/replay contract
    loop._worker_key = (int(worker_index), int(n_workers))
    return loop


class AimTSPretrainer:
    """Runs the AimTS pre-training stage on a multi-source corpus.

    Parameters
    ----------
    config:
        Pre-training hyper-parameters; ``AimTSConfig()`` reproduces the
        paper's default setting at CPU scale.
    """

    def __init__(self, config: AimTSConfig | None = None):
        self.config = config or AimTSConfig()
        self._rng = new_rng(self.config.seed)
        cfg = self.config
        self.bank = build_augmentation_bank(cfg, self._rng)
        #: precision policy shared with the training engine (configured once,
        #: consumed by the renderer here and carried by the Trainer)
        self.dtype_policy = DtypePolicy(
            compute_dtype=cfg.compute_dtype, image_dtype=cfg.image_dtype
        )
        self.renderer = LineChartRenderer(
            panel_size=cfg.panel_size, dtype=self.dtype_policy.image_dtype
        )
        #: cross-epoch cache of the deterministic pool renders; built by
        #: :meth:`fit` when ``config.cache_images`` is on.
        self.render_cache: RenderCache | None = None
        #: reusable buffer arena of the fused :meth:`encode` serving path
        self._workspace = Workspace()
        seed = int(self._rng.integers(0, 2**31))
        with default_dtype(self.dtype_policy.np_compute_dtype):
            self.ts_encoder = TSEncoder(
                in_channels=cfg.n_variables,
                hidden_channels=cfg.hidden_channels,
                repr_dim=cfg.repr_dim,
                depth=cfg.depth,
                kernel_size=cfg.kernel_size,
                channel_independent=cfg.channel_independent,
                rng=seed,
            )
            self.image_encoder = ImageEncoder(
                repr_dim=cfg.repr_dim,
                base_channels=cfg.image_channels,
                depth=cfg.image_depth,
                rng=seed + 1,
            )
            self.view_projection = ProjectionHead(cfg.repr_dim, cfg.proj_dim, rng=seed + 2)
            self.prototype_projection = ProjectionHead(cfg.repr_dim, cfg.proj_dim, rng=seed + 3)
            self.series_projection = ProjectionHead(cfg.repr_dim, cfg.proj_dim, rng=seed + 4)
            self.image_projection = ProjectionHead(cfg.repr_dim, cfg.proj_dim, rng=seed + 5)
        self._engine_history = History()
        self.history = PretrainHistory(self._engine_history)
        #: the engine driver of the most recent / active fit() call
        self.trainer: Trainer | None = None
        #: persistent gradient worker pool (config.n_workers >= 2), spawned
        #: lazily on the first fit() and reused across fits — see
        #: :meth:`shutdown_workers`
        self._worker_pool = None
        #: persistent batch-producer pool (config.n_producers >= 1 with a
        #: real prefetch depth), spawned lazily on the first fit() and reused
        #: across fits — see :meth:`shutdown_workers`
        self._producer_pool = None
        #: optional :class:`repro.engine.parallel.RestartPolicy` armed on the
        #: pools (and the trainer's degradation ladder); set it before fit().
        #: Kept off the config so injectable test clocks never travel to
        #: spawn children with the pickled config.
        self.restart_policy = None
        #: time the training-step phases (render / augment / forward /
        #: backward / optimizer) of the next fit(); per-epoch exclusive
        #: seconds land in the history as ``profile_<phase>_seconds`` columns
        #: and in ``trainer.pipeline_summary()``.  Set it before fit().
        self.profile = False

    # ------------------------------------------------------------------ parts
    def _trainable_modules(self):
        return [
            self.ts_encoder,
            self.image_encoder,
            self.view_projection,
            self.prototype_projection,
            self.series_projection,
            self.image_projection,
        ]

    def parameters(self):
        """All trainable parameters of the pre-training stage."""
        for module in self._trainable_modules():
            yield from module.parameters()

    def reseed(self, seed: int | np.random.SeedSequence | np.random.Generator) -> None:
        """Re-derive every stochastic stream (mixup + augmentation bank).

        Used by the gradient workers to install their deterministic per-shard
        streams; module weights are untouched.
        """
        self._rng = np.random.default_rng(seed)
        self.bank = build_augmentation_bank(self.config, self._rng)

    def _encode_views(self, views: np.ndarray) -> tuple[Tensor, Tensor]:
        """Encode ``(G, B, M, T)`` views → per-view projections and raw representations.

        Returns ``(projections, representations)`` with shapes ``(B, G, J)``
        and ``(G, B, D)`` respectively.
        """
        G, B, M, T = views.shape
        flat = views.reshape(G * B, M, T)
        representations = self.ts_encoder(flat)  # (G*B, D)
        projections = self.view_projection(representations)  # (G*B, J)
        representations = representations.reshape(G, B, self.config.repr_dim)
        projections = projections.reshape(G, B, self.config.proj_dim).transpose(1, 0, 2)
        return projections, representations

    def compute_batch_loss(
        self,
        batch: np.ndarray,
        *,
        images: np.ndarray | None = None,
        views: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> dict[str, Tensor]:
        """Compute all loss components for one ``(B, M, T)`` batch.

        ``images`` optionally supplies pre-rendered line-chart images for the
        batch (e.g. served from :attr:`render_cache`); when omitted the batch
        is rendered on the spot.  ``views`` optionally supplies the two
        pre-augmented ``(G, B, M, T)`` view sets (the pipelined producers'
        output); when omitted the bank draws them here from its own streams.
        """
        cfg = self.config
        losses: dict[str, Tensor] = {}

        if cfg.use_prototype_loss:
            if views is not None:
                views_a, views_b = views
            else:
                with profiled_phase("augment"):
                    views_a, views_b = self.bank.two_views(batch)
            proj_a, reps_a = self._encode_views(views_a)
            proj_b, reps_b = self._encode_views(views_b)
            prototypes_a = self.prototype_projection(
                aggregate_prototype(reps_a, cfg.prototype_reduction)
            )
            prototypes_b = self.prototype_projection(
                aggregate_prototype(reps_b, cfg.prototype_reduction)
            )
            distances = pairwise_view_distances(views_a)
            temperatures = adaptive_temperatures(
                distances, tau0=cfg.tau0, mode=cfg.temperature_mode
            )
            losses["prototype"] = prototype_loss(
                proj_a,
                proj_b,
                prototypes_a,
                prototypes_b,
                temperatures,
                alpha=cfg.alpha,
                tau=cfg.tau,
                use_intra=cfg.use_intra_loss,
            )

        if cfg.use_series_image_loss:
            if images is None:
                with profiled_phase("render"):
                    images = self.renderer.render_batch(batch)
            series_repr = self.ts_encoder(batch)
            image_repr = self.image_encoder(images)
            series_proj = self.series_projection(series_repr)
            image_proj = self.image_projection(image_repr)
            losses["series_image"] = series_image_loss(
                series_proj,
                image_proj,
                beta=cfg.beta,
                gamma=cfg.gamma,
                tau=cfg.tau,
                mixup_mode=cfg.mixup_mode,
                rng=self._rng,
            )

        if not losses:
            raise RuntimeError(
                "both objectives are disabled; enable use_prototype_loss or use_series_image_loss"
            )
        total = None
        for value in losses.values():
            total = value if total is None else total + value
        losses["total"] = total
        return losses

    # ------------------------------------------------------------------ train
    def fit(
        self,
        corpus: list[TimeSeriesDataset] | np.ndarray,
        *,
        epochs: int | None = None,
        max_samples: int | None = None,
        verbose: bool = False,
        callbacks=(),
        resume_from=None,
    ) -> PretrainHistory:
        """Pre-train on a multi-source corpus via the unified training engine.

        Parameters
        ----------
        corpus:
            A list of :class:`TimeSeriesDataset` (their train splits are
            merged into one pool), an already-built pool array ``(N, M, T)``,
            or an out-of-core :class:`repro.data.corpus.ShardedCorpus` — the
            latter streams from disk per mini-batch (cast to the compute
            dtype on densification) and is never materialised.
        epochs:
            Overrides ``config.epochs`` for this call when given.
        max_samples:
            Optional cap on the pool size, useful for quick experiments.
        verbose:
            Print one line per epoch.
        callbacks:
            Extra :class:`repro.engine.Callback` instances (e.g.
            :class:`~repro.engine.EarlyStopping` on a contrastive loss, or a
            :class:`~repro.engine.Checkpointer` for mid-run checkpoints of
            the long multi-source pre-train).
        resume_from:
            Path of a :class:`~repro.engine.Checkpointer` bundle; the run
            continues from its saved epoch bit-identically (weights,
            optimizer moments, scheduler step and per-epoch RNG streams all
            restored).
        """
        cfg = self.config
        n_epochs = epochs if epochs is not None else cfg.epochs
        compute_dtype = self.dtype_policy.np_compute_dtype
        if isinstance(corpus, np.ndarray):
            pool = np.asarray(corpus, dtype=compute_dtype)
            if max_samples is not None and pool.shape[0] > max_samples:
                # seeded subsample rather than head-truncation: raw pools are
                # often class-sorted, matching build_pretraining_pool's semantics
                pool = pool[
                    np.sort(self._rng.choice(pool.shape[0], size=max_samples, replace=False))
                ]
        else:
            # dataset lists and sharded corpora both resolve here: a corpus
            # passes through (seeded-subset when max_samples caps it) and its
            # batches are cast to the compute dtype at densification time
            pool = build_pretraining_pool(
                corpus,
                length=cfg.series_length,
                n_variables=cfg.n_variables,
                max_samples=max_samples,
                seed=self._rng,
            )
            if not _is_corpus(pool):
                pool = pool.astype(compute_dtype, copy=False)

        optimizer = Adam(list(self.parameters()), lr=cfg.learning_rate)
        scheduler = StepLR(optimizer, step_size=cfg.lr_step_size, gamma=cfg.lr_gamma)

        # the renders are deterministic per pool sample, so rasterise the pool
        # once up front and serve every shuffled batch of every epoch from the
        # cache; insert_on_miss=False freezes the precomputed prefix so a
        # byte budget smaller than the pool renders the rest on demand
        # instead of churning the LRU under shuffled (uniform) access.
        # With a spill tier (cache_spill_dir) evictions land on disk and hit
        # later, so inserts stay on; a sharded corpus pool skips the up-front
        # pass (it would densify the corpus) and fills the cache tiers during
        # the first epoch instead — either way each sample renders once.
        # In pipelined mode the producers render (each owns a cache replica,
        # sharing any spill directory via the cache's cross-process reads), so
        # the parent neither precomputes nor holds a render cache.
        pipelined = cfg.n_producers >= 1
        use_cache = cfg.use_series_image_loss and cfg.cache_images and not pipelined
        corpus_pool = _is_corpus(pool)
        if use_cache:
            spill = cfg.cache_spill_dir is not None
            self.render_cache = RenderCache(
                self.renderer,
                max_bytes=cfg.cache_max_bytes,
                insert_on_miss=spill or corpus_pool,
                spill_dir=cfg.cache_spill_dir,
                spill_max_bytes=cfg.cache_spill_max_bytes,
            )
            if not corpus_pool:
                self.render_cache.precompute_pool(pool)
        else:
            self.render_cache = None

        loop = _PretrainLoop(self, pool, use_cache)
        # a pool that broke (or was closed) in an earlier fit is replaced, not
        # reused — e.g. after the trainer degraded a pipelined fit to inline
        if self._worker_pool is not None and not self._worker_pool.usable:
            self._worker_pool.close()
            self._worker_pool = None
        if self._producer_pool is not None and not self._producer_pool.usable:
            self._producer_pool.close()
            self._producer_pool = None
        if cfg.n_workers > 1 and self._worker_pool is None:
            from repro.engine.parallel import GradientWorkerPool

            # persistent pool: spawned once, reused by every subsequent fit
            self._worker_pool = GradientWorkerPool(
                loop.worker_factory(),
                list(self.parameters()),
                n_workers=cfg.n_workers,
                compute_dtype=self.dtype_policy.compute_dtype,
                restart_policy=self.restart_policy,
                step_arena=cfg.step_arena,
            )
        if pipelined and cfg.prefetch_depth >= 2 and self._producer_pool is None:
            from repro.engine.parallel import ProducerPool

            # persistent producers: replicas are pure functions of the config,
            # so reusing them across fits is always safe
            self._producer_pool = ProducerPool(
                loop.producer_factory(),
                n_producers=cfg.n_producers,
                prefetch_depth=cfg.prefetch_depth,
                compute_dtype=self.dtype_policy.compute_dtype,
                restart_policy=self.restart_policy,
            )
        engine_callbacks = list(callbacks)
        if verbose:
            engine_callbacks.insert(
                0,
                ProgressLogger(
                    "pretrain",
                    fields={"loss": "loss", "proto": "prototype", "si": "series_image"},
                ),
            )
        self.trainer = Trainer(
            loop,
            optimizer,
            scheduler=scheduler,
            callbacks=engine_callbacks,
            history=self._engine_history,
            rng=self._rng,
            dtype_policy=self.dtype_policy,
            n_workers=cfg.n_workers,
            worker_pool=self._worker_pool,
            n_producers=cfg.n_producers,
            prefetch_depth=cfg.prefetch_depth,
            producer_pool=self._producer_pool,
            restart_policy=self.restart_policy,
            step_arena=cfg.step_arena,
            profile=self.profile,
        )
        if resume_from is not None:
            self.trainer.load_checkpoint(resume_from)
        self.trainer.fit(n_epochs)
        return self.history

    def shutdown_workers(self) -> None:
        """Stop the persistent worker and producer pools (idempotent no-op
        when sequential / already stopped)."""
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        if self._producer_pool is not None:
            self._producer_pool.close()
            self._producer_pool = None

    # ------------------------------------------------------------------ utils
    def encode(
        self, X: np.ndarray, *, batch_size: int | None = None, fused: bool = True
    ) -> np.ndarray:
        """Encode samples with the pre-trained TS encoder (no gradients).

        Micro-batches of ``batch_size`` (default ``config.encode_batch_size``)
        stream through the fused no-grad inference path: raw-array kernels,
        reusable im2col workspace buffers, and the configured compute dtype.
        ``fused=False`` runs the plain eval-mode autograd forward instead —
        the reference the fused path is verified (and benchmarked) against.
        """
        from repro.nn.inference import batched_infer

        return batched_infer(
            self.ts_encoder,
            np.asarray(X, dtype=self.dtype_policy.np_compute_dtype),
            batch_size=batch_size or self.config.encode_batch_size,
            workspace=self._workspace,
            fused=fused,
        )


class _PretrainLoop(TrainLoop):
    """Engine adapter for the AimTS pre-training objective.

    Batches are ``(series, images)`` pairs: the shuffled pool mini-batch plus
    its cached renders (``None`` when the cache is off, in which case
    :meth:`AimTSPretrainer.compute_batch_loss` rasterises on the fly).
    Under sharded training the pair is split along the batch axis, so cached
    images travel to the workers through the pool's shared-memory input
    arena instead of being re-rendered (or pickled) per shard.
    """

    #: contrastive prototype construction needs at least a pair per shard
    shard_min_samples = 2

    #: ``(worker_index, n_workers)`` in worker-replica mode (set by
    #: :func:`_pretrain_worker_replica`); enables per-step reseeding
    _worker_key = None

    def __init__(
        self, pretrainer: AimTSPretrainer, pool, use_cache: bool
    ):
        self.pretrainer = pretrainer
        self.use_cache = use_cache
        # the iterator shares the pre-trainer's generator, so each epoch's
        # shuffle consumes the exact stream position the seed loop did (and
        # checkpoints can snapshot/restore it through named_rngs); worker
        # replicas are built without a pool and only serve batch_loss.
        # The dtype is a no-op for in-RAM pools (already cast by fit) and the
        # per-batch densification cast for sharded corpora.
        self.iterator = (
            None
            if pool is None
            else BatchIterator(
                pool,
                batch_size=pretrainer.config.batch_size,
                shuffle=True,
                seed=pretrainer._rng,
                dtype=pretrainer.dtype_policy.np_compute_dtype,
                return_indices=True,
            )
        )

    def worker_factory(self):
        import functools

        return functools.partial(_pretrain_worker_replica, self.pretrainer.config)

    def reseed_for_step(self, epoch: int, step: int) -> None:
        """Re-derive the replica streams from the (shard, step) key.

        Called by the gradient worker before every ``batch_loss``: each
        sharded step becomes a pure function of ``(seed, worker_index,
        n_workers, epoch, step)``, so a respawned worker recomputes the
        identical gradient for a replayed step.
        """
        from repro.engine.parallel import derive_worker_step_seed

        if self._worker_key is None:
            return
        worker_index, n_workers = self._worker_key
        self.pretrainer.reseed(
            derive_worker_step_seed(
                self.pretrainer.config.seed, worker_index, n_workers, epoch, step
            )
        )

    # ---------------------------------------------------------------- pipeline
    def producer_factory(self):
        import functools

        return functools.partial(_pretrain_producer_replica, self.pretrainer.config)

    def pipeline_seed(self):
        return int(self.pretrainer.config.seed)

    def pipeline_batches(self, epoch):
        """``(indices, series)`` payloads in the stateless epoch schedule.

        The parent gathers the raw series (memmap-backed for corpora) and
        ships them with the work item; producers stay config-only replicas.
        Order derives from ``SeedSequence([seed, epoch])`` — see
        :func:`repro.data.loaders.epoch_index_batches` — so it is shared by
        the inline reference, every producer count, and resumed runs.
        """
        from repro.data.loaders import epoch_index_batches

        if self.iterator is None:
            raise RuntimeError("worker-replica loops only provide batch_loss()")
        pretrainer = self.pretrainer
        cfg = pretrainer.config
        pool = self.iterator.X
        corpus = self.iterator.corpus
        dtype = pretrainer.dtype_policy.np_compute_dtype
        for indices in epoch_index_batches(
            pool, cfg.batch_size, epoch=epoch, seed=cfg.seed
        ):
            if indices.size < 2:
                continue  # contrastive losses need at least two samples
            if corpus is not None:
                series = corpus.gather(indices).astype(dtype, copy=False)
            else:
                series = pool[indices]
            yield indices, series

    def consume_batch(self, produced) -> dict:
        series, images, views_a, views_b = produced
        losses = self.pretrainer.compute_batch_loss(
            series,
            images=images,
            views=None if views_a is None else (views_a, views_b),
        )
        return {
            "loss": losses["total"],
            "prototype": losses.get("prototype", 0.0),
            "series_image": losses.get("series_image", 0.0),
        }

    def pipeline_slot_nbytes(self) -> int:
        cfg = self.pretrainer.config
        itemsize = np.dtype(self.pretrainer.dtype_policy.np_compute_dtype).itemsize
        series = cfg.batch_size * cfg.n_variables * cfg.series_length * itemsize
        total = series
        if cfg.use_prototype_loss:
            total += 2 * cfg.n_augmentations * series
        if cfg.use_series_image_loss:
            total += cfg.batch_size * self.pretrainer.renderer.image_nbytes(cfg.n_variables)
        return total

    def named_modules(self) -> dict:
        pretrainer = self.pretrainer
        return {
            "ts_encoder": pretrainer.ts_encoder,
            "image_encoder": pretrainer.image_encoder,
            "view_projection": pretrainer.view_projection,
            "prototype_projection": pretrainer.prototype_projection,
            "series_projection": pretrainer.series_projection,
            "image_projection": pretrainer.image_projection,
        }

    def named_rngs(self) -> dict:
        rngs = {"pretrainer": self.pretrainer._rng}
        for augmentation in self.pretrainer.bank:
            rngs[f"augmentation.{augmentation.name}"] = augmentation._rng
        return rngs

    def metric_names(self) -> tuple[str, ...]:
        return ("loss", "prototype", "series_image")

    def make_batches(self, rng, epoch):
        if self.iterator is None:
            raise RuntimeError("worker-replica loops only provide batch_loss()")
        for batch, _, batch_indices in self.iterator:
            if batch.shape[0] < 2:
                continue  # contrastive losses need at least two samples
            if self.use_cache:
                with profiled_phase("render"):
                    images = self.pretrainer.render_cache.get_batch(batch, batch_indices)
            else:
                images = None
            yield batch, images

    def batch_loss(self, batch) -> dict:
        series, images = batch
        losses = self.pretrainer.compute_batch_loss(series, images=images)
        # disabled objectives log 0.0 so the history keeps the seed's fixed
        # four-curve shape under every ablation switch
        return {
            "loss": losses["total"],
            "prototype": losses.get("prototype", 0.0),
            "series_image": losses.get("series_image", 0.0),
        }
