"""Geodesic series–image mixup (paper Section IV-C3, Eq. 9).

Given unit-norm image representations ``u`` and series representations ``v``,
the mixed representation

    m_lambda(u, v) = u * sin(lambda * theta) / sin(theta)
                   + v * sin((1 - lambda) * theta) / sin(theta),

with ``theta = arccos(u . v)``, interpolates along the great circle between
the two points, so the result stays on the unit hypersphere and carries both
numerical (series) and structural (image) information.  The mixing ratio
``lambda`` is drawn from ``Beta(gamma, gamma)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


def sample_mixup_coefficients(
    n: int,
    gamma: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``n`` mixup coefficients ``lambda ~ Beta(gamma, gamma)``."""
    check_positive("gamma", gamma)
    check_positive("n", n)
    rng = new_rng(seed)
    return rng.beta(gamma, gamma, size=n)


def geodesic_mixup(u: Tensor, v: Tensor, lam: np.ndarray | float) -> Tensor:
    """Mix unit-norm representations along the hypersphere geodesic (Eq. 9).

    Parameters
    ----------
    u, v:
        Tensors of shape ``(B, J)``; both are re-normalised defensively so the
        arc-length computation is well defined.
    lam:
        Scalar or per-sample array of mixing coefficients in ``[0, 1]``.

    Returns
    -------
    Tensor
        Mixed representations of shape ``(B, J)`` lying on the unit sphere
        (up to numerical precision).
    """
    u = F.l2_normalize(u, axis=-1)
    v = F.l2_normalize(v, axis=-1)
    lam_array = np.atleast_1d(np.asarray(lam, dtype=np.float64)).reshape(-1, 1)
    if lam_array.shape[0] not in (1, u.shape[0]):
        raise ValueError(
            f"lam must be scalar or have one value per sample, got {lam_array.shape[0]} for batch {u.shape[0]}"
        )
    # The angle is a function of the (detached) current representations; the
    # gradient flows through the linear combination of u and v, which is the
    # dominant term, keeping the objective stable.
    cosine = np.clip((u.data * v.data).sum(axis=-1, keepdims=True), -1.0 + 1e-7, 1.0 - 1e-7)
    theta = np.arccos(cosine)
    sin_theta = np.sin(theta)
    # When the two representations are (nearly) colinear the geodesic
    # degenerates; fall back to linear interpolation weights.
    degenerate = sin_theta < 1e-6
    weight_u = np.where(degenerate, lam_array, np.sin(lam_array * theta) / np.where(degenerate, 1.0, sin_theta))
    weight_v = np.where(
        degenerate, 1.0 - lam_array, np.sin((1.0 - lam_array) * theta) / np.where(degenerate, 1.0, sin_theta)
    )
    mixed = u * Tensor(weight_u) + v * Tensor(weight_v)
    # Exactly antipodal inputs make the combination collapse to the zero
    # vector (every midpoint of the two poles is equally valid); fall back to
    # the endpoint favoured by lam so the result stays on the unit sphere.
    collapsed = np.linalg.norm(mixed.data, axis=-1, keepdims=True) < 1e-8
    if np.any(collapsed):
        mask = collapsed.astype(np.float64)
        toward_u = (lam_array >= 0.5).astype(np.float64)
        mixed = (
            mixed * Tensor(1.0 - mask)
            + u * Tensor(mask * toward_u)
            + v * Tensor(mask * (1.0 - toward_u))
        )
    return F.l2_normalize(mixed, axis=-1)


def linear_mixup(u: Tensor, v: Tensor, lam: np.ndarray | float) -> Tensor:
    """Plain convex-combination mixup (ablation baseline for Eq. 9)."""
    lam_array = np.atleast_1d(np.asarray(lam, dtype=np.float64)).reshape(-1, 1)
    mixed = u * Tensor(lam_array) + v * Tensor(1.0 - lam_array)
    return F.l2_normalize(mixed, axis=-1)
