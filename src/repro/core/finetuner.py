"""Downstream fine-tuning and evaluation (paper Fig. 3b).

The fine-tuner takes a (pre-trained) TS encoder, attaches an MLP classifier,
and trains on the small labelled training split of one downstream dataset
with cross-entropy.  No augmentation or imaging is applied at this stage —
raw series go straight through the TS encoder, exactly as in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FineTuneConfig
from repro.data.dataset import DatasetSplit, TimeSeriesDataset
from repro.data.loaders import BatchIterator, z_normalize
from repro.encoders import ClassifierHead, TSEncoder
from repro.engine import (
    DtypePolicy,
    History,
    LossCurve,
    ProgressLogger,
    Trainer,
    TrainLoop,
    dropout_rngs,
)
from repro.nn import Adam, Workspace
from repro.nn import functional as F
from repro.nn.tensor import Tensor, default_dtype
from repro.utils.seeding import new_rng


@dataclass
class FineTuneResult:
    """Outcome of fine-tuning on one downstream dataset.

    ``n_epochs`` is the number of epochs *actually run* (fewer than the
    configured budget when early stopping fires; ``0`` for closed-form
    estimators with no epoch loop).
    """

    dataset: str
    accuracy: float
    train_accuracy: float
    n_epochs: int
    fit_seconds: float
    history: list[float] = field(default_factory=list)


class FineTuner:
    """Fine-tune a TS encoder plus classifier on one labelled dataset.

    Parameters
    ----------
    encoder:
        The TS encoder to fine-tune (typically the pre-trained AimTS encoder;
        a randomly initialised encoder gives the from-scratch baseline).
    n_classes:
        Number of classes of the downstream task.
    config:
        Fine-tuning hyper-parameters.
    """

    def __init__(self, encoder: TSEncoder, n_classes: int, config: FineTuneConfig | None = None):
        self.encoder = encoder
        self.n_classes = n_classes
        self.config = config or FineTuneConfig()
        self._rng = new_rng(self.config.seed)
        # The classifier is built lazily at fit() time because its input size
        # depends on the downstream dataset when the encoder concatenates the
        # per-variable representations (channel_aggregation="concat").
        self.classifier: ClassifierHead | None = None
        #: number of variables the classifier input was sized for (set at fit time)
        self.n_variables: int | None = None
        #: the engine driver of the most recent / active fit() call
        self.trainer: Trainer | None = None
        #: reusable buffer arena of the fused prediction path
        self._workspace = Workspace()

    def _compute_dtype(self) -> np.dtype:
        """The precision this fine-tuner runs under — the encoder's parameter
        dtype, so a float32 pre-trained encoder fine-tunes (and serves) in
        float32 without any extra configuration."""
        for param in self.encoder.parameters():
            return param.data.dtype
        return np.dtype(np.float64)  # pragma: no cover - parameterless encoders

    def _ensure_classifier(self, n_variables: int) -> None:
        if self.classifier is not None:
            return
        self.n_variables = int(n_variables)
        if hasattr(self.encoder, "output_dim"):
            in_dim = self.encoder.output_dim(n_variables)
        else:  # pragma: no cover - non-standard encoders
            in_dim = self.encoder.repr_dim
        with default_dtype(self._compute_dtype()):
            self.classifier = ClassifierHead(
                in_dim,
                self.n_classes,
                hidden_dim=self.config.classifier_hidden_dim,
                dropout=self.config.dropout,
                rng=int(self._rng.integers(0, 2**31)),
            )

    def _parameters(self):
        if not self.config.freeze_encoder:
            yield from self.encoder.parameters()
        yield from self.classifier.parameters()

    def _forward(self, X: np.ndarray) -> Tensor:
        representations = self.encoder(X)
        if self.config.freeze_encoder:
            representations = representations.detach()
        return self.classifier(representations)

    def fit(
        self, train: DatasetSplit, *, verbose: bool = False, callbacks=()
    ) -> LossCurve:
        """Fine-tune on a labelled training split via the unified training engine.

        Returns the per-epoch loss curve as a :class:`repro.engine.LossCurve`
        — still a ``list[float]`` (the seed return shape, kept as a
        deprecation shim) that additionally exposes the engine's structured
        history (``curve.history``, ``curve.last()``).  ``callbacks`` accepts
        extra :class:`repro.engine.Callback` instances, e.g.
        :class:`~repro.engine.EarlyStopping`.
        """
        if train.y is None:
            raise ValueError("fine-tuning requires a labelled training split")
        self._ensure_classifier(train.n_variables)
        compute_dtype = self._compute_dtype()
        X = z_normalize(train.X).astype(compute_dtype, copy=False)
        y = train.y
        optimizer = Adam(list(self._parameters()), lr=self.config.learning_rate)
        loop = _FineTuneLoop(self, X, y)
        history = History()
        engine_callbacks = list(callbacks)
        if verbose:
            engine_callbacks.insert(0, ProgressLogger("finetune"))
        self.encoder.train()
        self.classifier.train()
        self.trainer = Trainer(
            loop,
            optimizer,
            callbacks=engine_callbacks,
            history=history,
            rng=self._rng,
            dtype_policy=DtypePolicy(compute_dtype=compute_dtype.name),
            step_arena=self.config.step_arena,
        )
        self.trainer.fit(self.config.epochs)
        return LossCurve(history.curve("loss"), history)

    def predict_logits(
        self, X: np.ndarray, *, batch_size: int | None = None, fused: bool = True
    ) -> np.ndarray:
        """Evaluation-mode class logits ``(n, n_classes)`` for ``(n, M, T)`` samples.

        Micro-batches stream through the fused no-grad inference path
        (raw-array kernels, reusable workspace, dropout skipped) when the
        encoder supports it; ``fused=False`` — or an encoder without an
        ``infer`` method — runs the plain eval-mode autograd forward.
        ``batch_size`` defaults to ``repro.nn.inference.
        DEFAULT_SERVING_BATCH_SIZE`` (256).
        """
        from repro.nn.inference import DEFAULT_SERVING_BATCH_SIZE, batched_infer

        if self.classifier is None:
            raise RuntimeError("call fit() before predict()")
        return batched_infer(
            self.encoder,
            z_normalize(np.asarray(X, dtype=self._compute_dtype())),
            batch_size=batch_size or DEFAULT_SERVING_BATCH_SIZE,
            workspace=self._workspace,
            fused=fused,
            head=self.classifier,
        )

    def predict(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Predict integer class labels for ``(n, M, T)`` samples."""
        return self.predict_logits(X, batch_size=batch_size).argmax(axis=-1)

    def predict_proba(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Softmax class probabilities ``(n, n_classes)`` for ``(n, M, T)`` samples."""
        from repro.api.estimator import softmax

        return softmax(self.predict_logits(X, batch_size=batch_size))

    def score(self, split: DatasetSplit) -> float:
        """Classification accuracy on a labelled split."""
        if split.y is None:
            raise ValueError("scoring requires labels")
        predictions = self.predict(split.X)
        return float((predictions == split.y).mean())

    def fit_and_evaluate(self, dataset: TimeSeriesDataset, *, verbose: bool = False) -> FineTuneResult:
        """Convenience wrapper: fine-tune on ``dataset.train``, score on ``dataset.test``.

        ``FineTuneResult.n_epochs`` reports the epochs actually run (which can
        be fewer than ``config.epochs`` under early stopping).
        """
        start = time.perf_counter()
        curve = self.fit(dataset.train, verbose=verbose)
        elapsed = time.perf_counter() - start
        return FineTuneResult(
            dataset=dataset.name,
            accuracy=self.score(dataset.test),
            train_accuracy=self.score(dataset.train),
            n_epochs=len(curve),
            fit_seconds=elapsed,
            history=curve,
        )


class _FineTuneLoop(TrainLoop):
    """Engine adapter for supervised fine-tuning (cross-entropy)."""

    def __init__(self, finetuner: FineTuner, X: np.ndarray, y: np.ndarray):
        self.finetuner = finetuner
        # shares the fine-tuner's generator so the per-epoch shuffles consume
        # the exact stream positions the seed loop did
        self.iterator = BatchIterator(
            X, y, batch_size=finetuner.config.batch_size, shuffle=True, seed=finetuner._rng
        )

    def named_modules(self) -> dict:
        return {
            "encoder": self.finetuner.encoder,
            "classifier": self.finetuner.classifier,
        }

    def named_rngs(self) -> dict:
        rngs = {"finetuner": self.finetuner._rng}
        rngs.update(dropout_rngs(self.finetuner.classifier, "classifier.dropout"))
        return rngs

    def make_batches(self, rng, epoch):
        yield from self.iterator

    def batch_loss(self, batch) -> Tensor:
        batch_X, batch_y = batch
        logits = self.finetuner._forward(batch_X)
        return F.cross_entropy(logits, batch_y)
