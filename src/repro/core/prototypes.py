"""Prototype generation and adaptive temperatures (paper Section IV-B1/B2).

A *prototype* aggregates the representations of all G augmented views of one
sample (Eq. 2), which dilutes the effect of any single augmentation that may
have changed the sample's semantics.  The *adaptive temperature* (Eq. 3) of
the intra-prototype loss is computed from pairwise distances between the raw
augmented views: view pairs that are far apart get a higher temperature (their
representations are allowed to stay closer), preventing outlier augmentations
from dominating the prototype.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.validation import check_in_options, check_positive


def aggregate_prototype(view_representations: Tensor, reduction: str = "mean") -> Tensor:
    """Aggregate per-view representations into prototypes (Eq. 2, before projection).

    Parameters
    ----------
    view_representations:
        Tensor of shape ``(G, B, D)`` — one representation per augmentation
        per sample.
    reduction:
        ``"mean"`` (the paper's choice) or ``"median"`` (ablation).

    Returns
    -------
    Tensor
        Prototypes of shape ``(B, D)``.
    """
    check_in_options("reduction", reduction, ("mean", "median"))
    if view_representations.ndim != 3:
        raise ValueError(
            f"expected (G, B, D) view representations, got shape {view_representations.shape}"
        )
    if reduction == "mean":
        return view_representations.mean(axis=0)
    # Median is not differentiable through our autograd in a useful way for
    # aggregation studies, so it is computed per-element on detached data and
    # re-attached as a constant offset from the mean (straight-through style).
    mean = view_representations.mean(axis=0)
    median = np.median(view_representations.data, axis=0)
    return mean + Tensor(median - mean.data)


def pairwise_view_distances(views_a: np.ndarray, views_b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise distances between augmented views of each sample.

    Parameters
    ----------
    views_a:
        Array of shape ``(G, B, M, T)``.
    views_b:
        Optional second view set of the same shape; defaults to ``views_a``
        (distances within one view set).

    Returns
    -------
    numpy.ndarray
        Distances of shape ``(B, G, G)`` where entry ``(i, j, k)`` is the mean
        Euclidean distance between the ``j``-th and ``k``-th augmented views of
        sample ``i``, normalised by the series length so different dataset
        lengths are comparable.
    """
    views_a = np.asarray(views_a, dtype=np.float64)
    views_b = views_a if views_b is None else np.asarray(views_b, dtype=np.float64)
    if views_a.shape != views_b.shape:
        raise ValueError("view sets must have identical shapes")
    if views_a.ndim != 4:
        raise ValueError(f"expected (G, B, M, T) views, got shape {views_a.shape}")
    G, B, M, T = views_a.shape
    flat_a = views_a.reshape(G, B, M * T).transpose(1, 0, 2)  # (B, G, MT)
    flat_b = views_b.reshape(G, B, M * T).transpose(1, 0, 2)
    diff = flat_a[:, :, None, :] - flat_b[:, None, :, :]
    distances = np.sqrt((diff**2).sum(axis=-1) / (M * T))
    return distances


def adaptive_temperatures(
    distances: np.ndarray,
    *,
    tau0: float = 0.2,
    mode: str = "adaptive",
    self_pair_is_positive: bool = True,
) -> np.ndarray:
    """Per-pair temperatures for the intra-prototype loss (Eq. 3).

    ``tau(j, k) = tau0 + softmax_k(d(j, k))`` with ``d(j, j) = -inf`` so that
    positive pairs always use the base temperature ``tau0``.

    Parameters
    ----------
    distances:
        Array of shape ``(B, G, G)`` from :func:`pairwise_view_distances`.
    tau0:
        Base temperature.
    mode:
        ``"adaptive"`` applies Eq. 3; ``"fixed"`` returns ``tau0`` everywhere
        (ablation).
    self_pair_is_positive:
        Whether the diagonal should be forced to ``tau0`` (true for the
        same-augmentation positive pairs).
    """
    check_positive("tau0", tau0)
    check_in_options("mode", mode, ("adaptive", "fixed"))
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 3 or distances.shape[1] != distances.shape[2]:
        raise ValueError(f"expected (B, G, G) distances, got shape {distances.shape}")
    if mode == "fixed":
        return np.full_like(distances, tau0)
    work = distances.copy()
    if self_pair_is_positive:
        G = work.shape[1]
        eye = np.eye(G, dtype=bool)
        work[:, eye] = -np.inf
    # softmax over the last axis, numerically stabilised
    finite_max = np.where(np.isfinite(work), work, -np.inf).max(axis=-1, keepdims=True)
    finite_max = np.where(np.isfinite(finite_max), finite_max, 0.0)
    exp = np.exp(work - finite_max)
    exp = np.where(np.isfinite(work), exp, 0.0)
    denom = exp.sum(axis=-1, keepdims=True)
    denom = np.where(denom == 0.0, 1.0, denom)
    softmax = exp / denom
    return tau0 + softmax
