"""The high-level :class:`AimTS` model.

This is the public entry point most users need:

>>> from repro.core import AimTS, AimTSConfig
>>> from repro.data import load_pretraining_corpus, load_dataset
>>> model = AimTS(AimTSConfig(epochs=1))
>>> model.pretrain(load_pretraining_corpus("monash", n_datasets=4))   # doctest: +SKIP
>>> result = model.fine_tune(load_dataset("ECG200"))                  # doctest: +SKIP
>>> result.accuracy                                                   # doctest: +SKIP

``AimTS`` implements the :class:`repro.api.Estimator` contract, so it is
interchangeable with every baseline: construct it from the registry
(``make_estimator("aimts", repr_dim=32)``), run it through
:func:`repro.evaluation.run_protocol`, and persist it whole with
:meth:`save` / :meth:`load` full-bundle checkpoints.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import warnings

import numpy as np

from repro.api.estimator import FineTunedPredictorMixin
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner, FineTuneResult
from repro.core.pretrainer import AimTSPretrainer, PretrainHistory
from repro.data.dataset import TimeSeriesDataset
from repro.data.fewshot import few_shot_view
from repro.nn.serialization import load_state_dict


class AimTS(FineTunedPredictorMixin):
    """Augmented Series and Image Contrastive Learning for TSC.

    The model wraps a :class:`AimTSPretrainer` (pre-training stage) and
    produces fresh :class:`FineTuner` instances per downstream dataset, so
    fine-tuning one dataset never contaminates another — exactly the
    multi-source generalization paradigm (Fig. 1d) of the paper.  The most
    recent fine-tuner is kept on the facade, backing :meth:`predict` /
    :meth:`predict_proba`.
    """

    name = "AimTS"
    api_name = "aimts"
    supports_pretraining = True

    def __init__(self, config: AimTSConfig | None = None):
        self.config = config or AimTSConfig()
        self.pretrainer = AimTSPretrainer(self.config)
        self._pretrained = False
        self._finetuner: FineTuner | None = None
        self._label_map: np.ndarray | None = None

    # ------------------------------------------------------------ pre-training
    @property
    def is_pretrained(self) -> bool:
        """Whether :meth:`pretrain` (or :meth:`load`) has been called."""
        return self._pretrained

    def pretrain(
        self,
        corpus: list[TimeSeriesDataset] | np.ndarray,
        *,
        epochs: int | None = None,
        max_samples: int | None = None,
        verbose: bool = False,
        callbacks=(),
        resume_from=None,
    ) -> PretrainHistory:
        """Run multi-source self-supervised pre-training (Eq. 1).

        ``corpus`` is either a list of datasets (merged into one pool) or an
        already-built ``(N, M, T)`` pool; ``epochs`` overrides the configured
        epoch count for this call.  ``callbacks`` takes extra
        :class:`repro.engine.Callback` instances (early stopping on a
        contrastive loss, mid-run :class:`~repro.engine.Checkpointer`, ...)
        and ``resume_from`` continues a killed pre-train bit-identically from
        a checkpoint bundle.
        """
        history = self.pretrainer.fit(
            corpus,
            epochs=epochs,
            max_samples=max_samples,
            verbose=verbose,
            callbacks=callbacks,
            resume_from=resume_from,
        )
        self._pretrained = True
        return history

    def encode(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Representations of ``(n, M, T)`` samples from the (pre-trained) TS encoder.

        Streams micro-batches of ``batch_size`` (default
        ``config.encode_batch_size``) through the fused no-grad inference
        path in the configured ``compute_dtype``.
        """
        return self.pretrainer.encode(X, batch_size=batch_size)

    def shutdown_workers(self) -> None:
        """Stop the persistent gradient worker pool (``config.n_workers``)."""
        self.pretrainer.shutdown_workers()

    # ------------------------------------------------------------- fine-tuning
    def make_finetuner(
        self, n_classes: int, config: FineTuneConfig | None = None, *, copy_encoder: bool = True
    ) -> FineTuner:
        """Create a fine-tuner seeded with (a copy of) the pre-trained encoder.

        ``copy_encoder=True`` (default) deep-copies the encoder so that each
        downstream task starts from the same pre-trained weights.  The copy is
        switched to the configured downstream ``channel_aggregation`` (the
        pre-training encoder itself always uses "mean" so prototype shapes do
        not depend on the corpus dimensionality).
        """
        encoder = copy.deepcopy(self.pretrainer.ts_encoder) if copy_encoder else self.pretrainer.ts_encoder
        encoder.channel_aggregation = self.config.channel_aggregation
        return FineTuner(encoder, n_classes, config)

    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
        verbose: bool = False,
    ) -> FineTuneResult:
        """Fine-tune on one downstream dataset and evaluate on its test split.

        Parameters
        ----------
        dataset:
            The downstream dataset.
        config:
            Fine-tuning hyper-parameters.
        label_ratio:
            If given, only this stratified fraction of the training labels is
            used (the Table V few-shot protocol).
        """
        finetuner = self.make_finetuner(dataset.n_classes, config)
        working = few_shot_view(dataset, label_ratio, seed=self.config.seed)
        result = finetuner.fit_and_evaluate(working, verbose=verbose)
        self._finetuner = finetuner
        self._label_map = np.arange(dataset.n_classes, dtype=np.int64)
        return result

    def evaluate_archive(
        self,
        datasets: list[TimeSeriesDataset],
        config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
        verbose: bool = False,
    ) -> dict[str, float]:
        """Deprecated: fine-tune and evaluate on every dataset of an archive.

        Use :func:`repro.evaluation.run_protocol` instead, which runs the same
        loop for any registered estimator and returns the paper-style summary
        metrics on top of the raw accuracies.
        """
        warnings.warn(
            "AimTS.evaluate_archive is deprecated; use "
            "repro.evaluation.run_protocol(model, datasets) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        results = {}
        for dataset in datasets:
            result = self.fine_tune(dataset, config, label_ratio=label_ratio, verbose=False)
            results[dataset.name] = result.accuracy
            if verbose:
                print(f"[evaluate] {dataset.name}: acc={result.accuracy:.3f}")
        return results

    # ------------------------------------------------------------ persistence
    def _pretrain_modules(self) -> dict[str, object]:
        return {
            "ts_encoder": self.pretrainer.ts_encoder,
            "image_encoder": self.pretrainer.image_encoder,
            "view_projection": self.pretrainer.view_projection,
            "prototype_projection": self.pretrainer.prototype_projection,
            "series_projection": self.pretrainer.series_projection,
            "image_projection": self.pretrainer.image_projection,
        }

    def save(self, path: str | os.PathLike) -> str:
        """Save a full-bundle checkpoint of the model to ``path``.

        The bundle holds the pre-trained encoders and projection heads, the
        fine-tuned classifier (when :meth:`fine_tune` has run), the label map
        and the originating config, all behind a schema-versioned manifest —
        see :mod:`repro.api.bundle`.
        """
        from repro.api.bundle import save_bundle

        arrays: dict[str, np.ndarray] = {}
        for prefix, module in self._pretrain_modules().items():
            for key, value in module.state_dict().items():
                arrays[f"{prefix}.{key}"] = value
        manifest = {
            "estimator": self.api_name,
            "config": dataclasses.asdict(self.config),
            "pretrained": self._pretrained,
        }
        if self.is_fitted:
            self._pack_finetuner(arrays, manifest)
        return save_bundle(path, arrays, manifest)

    def load(self, path: str | os.PathLike) -> "AimTS":
        """Load a checkpoint saved by :meth:`save`.

        Understands both the current full-bundle format and legacy
        encoder-only ``.npz`` state dicts (pre-bundle checkpoints).
        """
        from repro.api.bundle import load_bundle, peek_manifest, resolve_read_path

        path = resolve_read_path(path)
        if peek_manifest(path) is None:  # legacy encoder-only checkpoint
            return self._load_from_state(load_state_dict(path), None)
        return self._load_from_state(*load_bundle(path))

    def _load_from_state(self, state: dict, manifest: dict | None) -> "AimTS":
        """Restore from already-read bundle contents (single-read load path)."""
        from repro.api.bundle import sub_state

        for prefix, module in self._pretrain_modules().items():
            module.load_state_dict(sub_state(state, prefix))

        # any classifier fitted before load was trained against weights this
        # instance no longer has; a bundle without a finetune section (and a
        # legacy checkpoint) resets it
        self._finetuner = None
        self._label_map = None
        if manifest is None:
            self._pretrained = True
            return self
        self._pretrained = bool(manifest.get("pretrained", True))
        finetune = manifest.get("finetune")
        if finetune is not None:
            finetuner = self.make_finetuner(
                finetune["n_classes"], FineTuneConfig(**finetune["config"])
            )
            self._restore_finetuner(finetuner, state, finetune)
        return self
