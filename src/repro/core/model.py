"""The high-level :class:`AimTS` model.

This is the public entry point most users need:

>>> from repro.core import AimTS, AimTSConfig
>>> from repro.data import load_pretraining_corpus, load_dataset
>>> model = AimTS(AimTSConfig(epochs=1))
>>> model.pretrain(load_pretraining_corpus("monash", n_datasets=4))   # doctest: +SKIP
>>> result = model.fine_tune(load_dataset("ECG200"))                  # doctest: +SKIP
>>> result.accuracy                                                   # doctest: +SKIP
"""

from __future__ import annotations

import copy
import os

import numpy as np

from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner, FineTuneResult
from repro.core.pretrainer import AimTSPretrainer, PretrainHistory
from repro.data.dataset import TimeSeriesDataset
from repro.data.fewshot import few_shot_subset
from repro.nn.serialization import load_state_dict, save_state_dict


class AimTS:
    """Augmented Series and Image Contrastive Learning for TSC.

    The model wraps a :class:`AimTSPretrainer` (pre-training stage) and
    produces fresh :class:`FineTuner` instances per downstream dataset, so
    fine-tuning one dataset never contaminates another — exactly the
    multi-source generalization paradigm (Fig. 1d) of the paper.
    """

    def __init__(self, config: AimTSConfig | None = None):
        self.config = config or AimTSConfig()
        self.pretrainer = AimTSPretrainer(self.config)
        self._pretrained = False

    # ------------------------------------------------------------ pre-training
    @property
    def is_pretrained(self) -> bool:
        """Whether :meth:`pretrain` (or :meth:`load`) has been called."""
        return self._pretrained

    def pretrain(
        self,
        corpus: list[TimeSeriesDataset] | np.ndarray,
        *,
        max_samples: int | None = None,
        verbose: bool = False,
    ) -> PretrainHistory:
        """Run multi-source self-supervised pre-training (Eq. 1)."""
        history = self.pretrainer.fit(corpus, max_samples=max_samples, verbose=verbose)
        self._pretrained = True
        return history

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Representations of ``(n, M, T)`` samples from the (pre-trained) TS encoder."""
        return self.pretrainer.encode(X)

    # ------------------------------------------------------------- fine-tuning
    def make_finetuner(
        self, n_classes: int, config: FineTuneConfig | None = None, *, copy_encoder: bool = True
    ) -> FineTuner:
        """Create a fine-tuner seeded with (a copy of) the pre-trained encoder.

        ``copy_encoder=True`` (default) deep-copies the encoder so that each
        downstream task starts from the same pre-trained weights.  The copy is
        switched to the configured downstream ``channel_aggregation`` (the
        pre-training encoder itself always uses "mean" so prototype shapes do
        not depend on the corpus dimensionality).
        """
        encoder = copy.deepcopy(self.pretrainer.ts_encoder) if copy_encoder else self.pretrainer.ts_encoder
        encoder.channel_aggregation = self.config.channel_aggregation
        return FineTuner(encoder, n_classes, config)

    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
        verbose: bool = False,
    ) -> FineTuneResult:
        """Fine-tune on one downstream dataset and evaluate on its test split.

        Parameters
        ----------
        dataset:
            The downstream dataset.
        config:
            Fine-tuning hyper-parameters.
        label_ratio:
            If given, only this stratified fraction of the training labels is
            used (the Table V few-shot protocol).
        """
        finetuner = self.make_finetuner(dataset.n_classes, config)
        if label_ratio is not None:
            train = few_shot_subset(dataset.train, label_ratio, seed=self.config.seed)
            working = TimeSeriesDataset(
                name=dataset.name,
                domain=dataset.domain,
                train=train,
                test=dataset.test,
                n_classes=dataset.n_classes,
                metadata=dict(dataset.metadata, label_ratio=label_ratio),
            )
        else:
            working = dataset
        return finetuner.fit_and_evaluate(working, verbose=verbose)

    def evaluate_archive(
        self,
        datasets: list[TimeSeriesDataset],
        config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
        verbose: bool = False,
    ) -> dict[str, float]:
        """Fine-tune and evaluate on every dataset of an archive.

        Returns a mapping ``dataset name → test accuracy``; this is the basic
        building block of the Table I / Table IV evaluation protocols.
        """
        results = {}
        for dataset in datasets:
            result = self.fine_tune(dataset, config, label_ratio=label_ratio, verbose=False)
            results[dataset.name] = result.accuracy
            if verbose:
                print(f"[evaluate] {dataset.name}: acc={result.accuracy:.3f}")
        return results

    # ------------------------------------------------------------ persistence
    def save(self, path: str | os.PathLike) -> str:
        """Save the pre-trained encoders and projection heads to ``path``."""
        state = {}
        named = {
            "ts_encoder": self.pretrainer.ts_encoder,
            "image_encoder": self.pretrainer.image_encoder,
            "view_projection": self.pretrainer.view_projection,
            "prototype_projection": self.pretrainer.prototype_projection,
            "series_projection": self.pretrainer.series_projection,
            "image_projection": self.pretrainer.image_projection,
        }
        for prefix, module in named.items():
            for key, value in module.state_dict().items():
                state[f"{prefix}.{key}"] = value
        return save_state_dict(state, path)

    def load(self, path: str | os.PathLike) -> "AimTS":
        """Load encoders and projection heads saved by :meth:`save`."""
        state = load_state_dict(path)
        named = {
            "ts_encoder": self.pretrainer.ts_encoder,
            "image_encoder": self.pretrainer.image_encoder,
            "view_projection": self.pretrainer.view_projection,
            "prototype_projection": self.pretrainer.prototype_projection,
            "series_projection": self.pretrainer.series_projection,
            "image_projection": self.pretrainer.image_projection,
        }
        for prefix, module in named.items():
            sub_state = {
                key[len(prefix) + 1 :]: value
                for key, value in state.items()
                if key.startswith(prefix + ".")
            }
            module.load_state_dict(sub_state)
        self._pretrained = True
        return self
