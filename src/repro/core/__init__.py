"""``repro.core`` — the AimTS framework (the paper's primary contribution).

The public surface:

* :class:`~repro.core.config.AimTSConfig` / :class:`~repro.core.config.FineTuneConfig`
  — configuration dataclasses.
* :class:`~repro.core.model.AimTS` — high-level model: ``pretrain`` on a
  multi-source corpus, ``fine_tune`` / ``evaluate`` on downstream datasets,
  ``save`` / ``load`` checkpoints.
* :class:`~repro.core.pretrainer.AimTSPretrainer` — the pre-training loop
  combining prototype-based and series-image contrastive learning.
* :class:`~repro.core.finetuner.FineTuner` — downstream fine-tuning with an
  MLP classifier.
* :mod:`~repro.core.losses`, :mod:`~repro.core.prototypes`,
  :mod:`~repro.core.mixup` — the individual objective components (Eqs. 2–12).
"""

from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner, FineTuneResult
from repro.core.losses import (
    inter_prototype_loss,
    intra_prototype_loss,
    prototype_loss,
    series_image_loss,
    series_image_mixup_loss,
    series_image_naive_loss,
)
from repro.core.mixup import geodesic_mixup, linear_mixup, sample_mixup_coefficients
from repro.core.model import AimTS
from repro.core.pretrainer import AimTSPretrainer, PretrainHistory
from repro.core.prototypes import adaptive_temperatures, aggregate_prototype, pairwise_view_distances

__all__ = [
    "AimTSConfig",
    "FineTuneConfig",
    "AimTS",
    "AimTSPretrainer",
    "PretrainHistory",
    "FineTuner",
    "FineTuneResult",
    "prototype_loss",
    "intra_prototype_loss",
    "inter_prototype_loss",
    "series_image_loss",
    "series_image_naive_loss",
    "series_image_mixup_loss",
    "geodesic_mixup",
    "linear_mixup",
    "sample_mixup_coefficients",
    "aggregate_prototype",
    "adaptive_temperatures",
    "pairwise_view_distances",
]
