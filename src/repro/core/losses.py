"""The AimTS contrastive objectives (paper Eqs. 4–12).

All losses operate on already-projected, L2-normalised representations so the
dot products below are cosine similarities.  They return scalar
:class:`~repro.nn.tensor.Tensor` objects suitable for ``backward()``.

Shapes
------
* per-view projections ``v``:  ``(B, G, J)`` — batch, augmentation, projection
* prototypes ``z``:            ``(B, J)``
* series / image projections:  ``(B, J)``
"""

from __future__ import annotations

import numpy as np

from repro.core.mixup import geodesic_mixup, linear_mixup, sample_mixup_coefficients
from repro.nn.tensor import Tensor
from repro.utils.validation import check_in_options, check_positive


def _as_tensor(x: Tensor | np.ndarray) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))


def _identity_mask(size: int) -> np.ndarray:
    return np.eye(size, dtype=np.float64)


# --------------------------------------------------------------------------- #
# Prototype-based contrastive learning (Section IV-B)
# --------------------------------------------------------------------------- #
def intra_prototype_loss(
    views_a: Tensor,
    views_b: Tensor,
    temperatures_aa: np.ndarray,
    temperatures_ab: np.ndarray | None = None,
) -> Tensor:
    """Intra-prototype contrastive loss with adaptive temperatures (Eq. 4).

    Parameters
    ----------
    views_a, views_b:
        Projected representations of the two augmented view sets, shape
        ``(B, G, J)``.  ``views_a[i, k]`` and ``views_b[i, k]`` come from the
        same augmentation applied with different random parameters and form
        the positive pair.
    temperatures_aa:
        Per-pair temperatures ``tau(k, j)`` for similarities within
        ``views_a``, shape ``(B, G, G)`` (Eq. 3).
    temperatures_ab:
        Temperatures for cross-set similarities; defaults to
        ``temperatures_aa``.
    """
    views_a = _as_tensor(views_a)
    views_b = _as_tensor(views_b)
    if views_a.ndim != 3 or views_a.shape != views_b.shape:
        raise ValueError(
            f"views must both be (B, G, J); got {views_a.shape} and {views_b.shape}"
        )
    B, G, _ = views_a.shape
    temperatures_aa = np.asarray(temperatures_aa, dtype=np.float64)
    if temperatures_aa.shape != (B, G, G):
        raise ValueError(
            f"temperatures_aa must have shape {(B, G, G)}, got {temperatures_aa.shape}"
        )
    temperatures_ab = temperatures_aa if temperatures_ab is None else np.asarray(temperatures_ab)

    sims_aa = views_a @ views_a.transpose(0, 2, 1)  # (B, G, G)
    sims_ab = views_a @ views_b.transpose(0, 2, 1)
    scaled_aa = sims_aa / Tensor(temperatures_aa)
    scaled_ab = sims_ab / Tensor(temperatures_ab)

    eye = _identity_mask(G)[None, :, :]
    off_diagonal = Tensor(1.0 - eye)
    exp_aa = scaled_aa.exp() * off_diagonal  # exclude j == k within the same set
    exp_ab = scaled_ab.exp()
    denominator = (exp_aa + exp_ab).sum(axis=2)  # (B, G)
    positive_logits = (scaled_ab * Tensor(eye)).sum(axis=2)  # (B, G): s~(k, k)
    per_view = denominator.log() - positive_logits
    return per_view.sum(axis=1).mean()


def inter_prototype_loss(
    prototypes_a: Tensor,
    prototypes_b: Tensor,
    tau: float = 0.2,
) -> Tensor:
    """Inter-prototype contrastive loss (Eq. 5).

    The two prototypes of the same sample are the positive pair; prototypes of
    the other samples in the batch (from either view set) are negatives.
    """
    check_positive("tau", tau)
    prototypes_a = _as_tensor(prototypes_a)
    prototypes_b = _as_tensor(prototypes_b)
    if prototypes_a.ndim != 2 or prototypes_a.shape != prototypes_b.shape:
        raise ValueError("prototypes must both be (B, J)")
    B = prototypes_a.shape[0]
    sims_aa = (prototypes_a @ prototypes_a.transpose()) * (1.0 / tau)
    sims_ab = (prototypes_a @ prototypes_b.transpose()) * (1.0 / tau)
    eye = _identity_mask(B)
    exp_aa = sims_aa.exp() * Tensor(1.0 - eye)
    exp_ab = sims_ab.exp()
    denominator = (exp_aa + exp_ab).sum(axis=1)
    positive_logits = (sims_ab * Tensor(eye)).sum(axis=1)
    per_sample = denominator.log() - positive_logits
    return per_sample.mean()


def prototype_loss(
    views_a: Tensor,
    views_b: Tensor,
    prototypes_a: Tensor,
    prototypes_b: Tensor,
    temperatures: np.ndarray,
    *,
    alpha: float = 0.7,
    tau: float = 0.2,
    use_intra: bool = True,
) -> Tensor:
    """Two-level prototype-based loss ``L_proto`` (Eq. 6).

    ``alpha`` weights the inter-prototype term; ``1 - alpha`` the
    intra-prototype term.  Setting ``use_intra=False`` reproduces the
    "w/ inter-prototype contrastive learning" ablation row of Table VI.
    """
    inter = inter_prototype_loss(prototypes_a, prototypes_b, tau=tau)
    if not use_intra:
        return inter
    intra = intra_prototype_loss(views_a, views_b, temperatures)
    return inter * alpha + intra * (1.0 - alpha)


# --------------------------------------------------------------------------- #
# Series-image contrastive learning (Section IV-C)
# --------------------------------------------------------------------------- #
def series_image_naive_loss(series_proj: Tensor, image_proj: Tensor, tau: float = 0.2) -> Tensor:
    """Symmetric series-image InfoNCE ``L_naive`` (Eqs. 7–8)."""
    check_positive("tau", tau)
    series_proj = _as_tensor(series_proj)
    image_proj = _as_tensor(image_proj)
    if series_proj.shape != image_proj.shape or series_proj.ndim != 2:
        raise ValueError("series and image projections must both be (B, J)")
    B = series_proj.shape[0]
    eye = Tensor(_identity_mask(B))
    sims = (image_proj @ series_proj.transpose()) * (1.0 / tau)  # (B_image, B_series)
    positives = (sims * eye).sum(axis=1)
    image_to_series = sims.exp().sum(axis=1).log() - positives  # l^{I-S}
    series_to_image = sims.transpose().exp().sum(axis=1).log() - positives  # l^{S-I}
    return (image_to_series + series_to_image).mean() * 0.5


def series_image_mixup_loss(
    series_proj: Tensor,
    image_proj: Tensor,
    mixed_proj: Tensor,
    tau: float = 0.2,
) -> Tensor:
    """Geodesic-mixup contrastive loss ``L_mix`` (Eqs. 10–11).

    Positive pairs are unchanged (series/image of the same sample); negatives
    are the mixed representations of every sample in the batch.
    """
    check_positive("tau", tau)
    series_proj = _as_tensor(series_proj)
    image_proj = _as_tensor(image_proj)
    mixed_proj = _as_tensor(mixed_proj)
    if not (series_proj.shape == image_proj.shape == mixed_proj.shape):
        raise ValueError("series, image and mixed projections must share the same (B, J) shape")
    B = series_proj.shape[0]
    eye = Tensor(_identity_mask(B))
    positive_logits = ((image_proj @ series_proj.transpose()) * (1.0 / tau) * eye).sum(axis=1)
    image_vs_mixed = (image_proj @ mixed_proj.transpose()) * (1.0 / tau)
    series_vs_mixed = (series_proj @ mixed_proj.transpose()) * (1.0 / tau)
    image_term = image_vs_mixed.exp().sum(axis=1).log() - positive_logits
    series_term = series_vs_mixed.exp().sum(axis=1).log() - positive_logits
    return (image_term + series_term).mean() * 0.5


def series_image_loss(
    series_proj: Tensor,
    image_proj: Tensor,
    *,
    beta: float = 0.9,
    gamma: float = 0.1,
    tau: float = 0.2,
    mixup_mode: str = "geodesic",
    rng: np.random.Generator | int | None = None,
) -> Tensor:
    """Combined series-image loss ``L_SI`` (Eq. 12).

    ``mixup_mode`` selects the geodesic mixup of the paper, a linear-mixup
    ablation, or disables the mixup term entirely (the "naive" ablation row of
    Table VI).
    """
    check_in_options("mixup_mode", mixup_mode, ("geodesic", "linear", "none"))
    naive = series_image_naive_loss(series_proj, image_proj, tau=tau)
    if mixup_mode == "none":
        return naive
    lam = sample_mixup_coefficients(series_proj.shape[0], gamma=gamma, seed=rng)
    if mixup_mode == "geodesic":
        mixed = geodesic_mixup(image_proj, series_proj, lam)
    else:
        mixed = linear_mixup(image_proj, series_proj, lam)
    mix = series_image_mixup_loss(series_proj, image_proj, mixed, tau=tau)
    return naive * beta + mix * (1.0 - beta)
