"""Configuration dataclasses for pre-training and fine-tuning.

Defaults follow the paper where it specifies values (Adam, seed 3407, batch
size 16, StepLR decay, 5 augmentations, loss weights α/β around 0.7–0.9,
mixup γ = 0.1) and use CPU-friendly model sizes for everything the paper
leaves to its A800-scale implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.inference import DEFAULT_SERVING_BATCH_SIZE
from repro.utils.validation import check_in_options, check_positive, check_probability

#: allowed settings for the ablation hooks
TEMPERATURE_MODES = ("adaptive", "fixed")
MIXUP_MODES = ("geodesic", "linear", "none")
PROTOTYPE_REDUCTIONS = ("mean", "median")
CHANNEL_AGGREGATIONS = ("concat", "mean")
IMAGE_DTYPES = ("float32", "float64")
COMPUTE_DTYPES = ("float32", "float64")


def _check_pipeline_knobs(n_producers: int, prefetch_depth: int, n_workers: int) -> None:
    """Shared validation of the pipelined pre-training knobs."""
    if n_producers < 0:
        raise ValueError(f"n_producers must be >= 0, got {n_producers}")
    if prefetch_depth != 0 and prefetch_depth < 2:
        raise ValueError(
            "prefetch_depth must be 0 (inline sequential reference) or >= 2 "
            f"(double-buffered ring), got {prefetch_depth}"
        )
    if n_producers >= 1 and n_workers > 1:
        raise ValueError(
            "pipelined producers (n_producers >= 1) require the sequential "
            "gradient path (n_workers=1)"
        )


@dataclass
class AimTSConfig:
    """Hyper-parameters of the AimTS pre-training stage.

    Attributes
    ----------
    repr_dim, proj_dim:
        Encoder representation size and contrastive projection size ``J``.
    hidden_channels, depth, kernel_size:
        TS-encoder trunk architecture.
    image_channels, image_depth, panel_size:
        Image-encoder architecture and line-chart rendering resolution.
    image_dtype, cache_images, cache_max_bytes:
        Imaging-pipeline performance knobs: the rasteriser's compute dtype
        ("float64" is bit-exact against the reference renderer, "float32"
        halves image memory), whether pre-training memoises the deterministic
        pool renders across epochs (see :class:`repro.imaging.RenderCache`),
        and the byte budget for that cache (default 256 MiB ≈ 10k cached
        panel-32 univariate images; pool samples beyond the budget render on
        demand each epoch; None = unbounded).
    cache_spill_dir, cache_spill_max_bytes:
        Disk tier of the render cache for pools larger than ``cache_max_bytes``
        (the out-of-core corpus path): entries evicted from the RAM LRU spill
        to ``.npy`` files under ``cache_spill_dir`` (each deterministic render
        is written at most once) and are served back — content-hash-validated —
        on later epochs instead of re-rendering.  ``cache_spill_max_bytes``
        bounds the on-disk footprint (None = unbounded).  ``cache_spill_dir``
        None (the default) disables the tier.
    compute_dtype:
        Precision of the neural compute core: "float64" (default) is the
        bit-exact reference path, "float32" runs parameters, activations,
        gradients and optimizer moments in single precision for roughly
        double the throughput at contrastive-learning-irrelevant accuracy
        cost (see the float32/float64 parity suite).
    encode_batch_size:
        Micro-batch size of the serving surfaces (``encode`` / ``predict`` /
        ``predict_proba``), which stream batches through the fused no-grad
        inference path.  256 (up from 64) quarters the per-micro-batch
        dispatch overhead and hands threaded BLAS wider matmuls; the fused
        workspace reuses its buffers either way.
    n_workers:
        Sharded data-parallel pre-training: with ``n_workers >= 2`` every
        mini-batch is split across a persistent pool of spawn-safe gradient
        worker processes (shared-memory parameter broadcast / fixed-order
        gradient reduction, see :mod:`repro.engine.parallel`).  ``1`` (the
        default) is the sequential path, bit-identical to earlier releases.
    n_producers, prefetch_depth:
        Async pipelined pre-training: with ``n_producers >= 1`` rendering and
        augmentation run in producer processes ahead of the gradient step,
        publishing finished batches through a bounded shared-memory ring of
        ``prefetch_depth`` slots (see
        :class:`repro.engine.parallel.ProducerPool`).  Per-batch streams are
        keyed by ``SeedSequence([seed, epoch, step])``, so the loss curve is
        bit-identical at any producer count; ``prefetch_depth=0`` runs the
        same schedule inline (the sequential reference), and
        ``n_producers=0`` (default) keeps the classic synchronous path,
        bit-exact with earlier releases.  Pipelining requires the sequential
        gradient path (``n_workers=1``).
    augment_batched:
        Route the augmentation bank through the vectorized batch kernels
        (bit-identical to the per-sample reference loops under the same RNG
        streams; ``False`` forces the reference paths for debugging).
    step_arena:
        Pool autograd workspaces across training steps through a
        :class:`~repro.nn.arena.StepArena` (default on).  After a warm-up
        step the hot training loop allocates no fresh large buffers; values
        are bit-identical either way.  ``False`` restores per-step
        allocation (the debugging reference).
    series_length, n_variables:
        Common shape every pre-training sample is resampled to.
    alpha:
        Weight of the inter-prototype loss within ``L_proto`` (Eq. 6).
    beta:
        Weight of the naive series-image loss within ``L_SI`` (Eq. 12).
    gamma:
        Beta-distribution parameter of the mixup coefficient λ (Eq. 9).
    tau0, tau:
        Base temperature of the adaptive intra-prototype temperature (Eq. 3)
        and the fixed temperature used by the inter-prototype and
        series-image losses.
    use_prototype_loss, use_intra_loss, use_series_image_loss, mixup_mode,
    temperature_mode, prototype_reduction, channel_independent:
        Ablation switches corresponding to Table VI and DESIGN.md.
    """

    # architecture
    repr_dim: int = 32
    proj_dim: int = 16
    hidden_channels: int = 16
    depth: int = 2
    kernel_size: int = 3
    image_channels: int = 8
    image_depth: int = 2
    panel_size: int = 32
    # imaging pipeline performance
    image_dtype: str = "float64"
    cache_images: bool = True
    cache_max_bytes: int | None = 256 * 1024 * 1024
    cache_spill_dir: str | None = None
    cache_spill_max_bytes: int | None = None
    # compute core precision + serving batch size
    compute_dtype: str = "float64"
    encode_batch_size: int = DEFAULT_SERVING_BATCH_SIZE
    # pre-training parallelism (see repro.engine.parallel)
    n_workers: int = 1
    augment_batched: bool = True
    step_arena: bool = True
    # pipelined pre-training (producer processes + ring prefetch)
    n_producers: int = 0
    prefetch_depth: int = 2
    # data shape
    series_length: int = 96
    n_variables: int = 1
    channel_independent: bool = True
    #: how downstream fine-tuning combines per-variable representations of the
    #: channel-independent encoder: "concat" (task head sees every variable)
    #: or "mean" (fixed-size representation).  Pre-training always uses "mean"
    #: because prototypes need a size that does not depend on the dataset.
    channel_aggregation: str = "concat"
    # optimisation (paper Section V-A3)
    batch_size: int = 16
    learning_rate: float = 7e-3
    epochs: int = 2
    lr_step_size: int = 1
    lr_gamma: float = 0.5
    seed: int = 3407
    # loss weights
    alpha: float = 0.7
    beta: float = 0.9
    gamma: float = 0.1
    tau0: float = 0.2
    tau: float = 0.2
    # ablation switches
    use_prototype_loss: bool = True
    use_intra_loss: bool = True
    use_series_image_loss: bool = True
    temperature_mode: str = "adaptive"
    mixup_mode: str = "geodesic"
    prototype_reduction: str = "mean"
    augmentation_names: tuple[str, ...] = field(
        default=("jitter", "scaling", "time_warp", "slicing", "window_warp")
    )

    def __post_init__(self) -> None:
        for name in (
            "repr_dim",
            "proj_dim",
            "hidden_channels",
            "depth",
            "panel_size",
            "series_length",
            "n_variables",
            "batch_size",
            "epochs",
        ):
            check_positive(name, getattr(self, name))
        check_positive("learning_rate", self.learning_rate)
        check_probability("alpha", self.alpha)
        check_probability("beta", self.beta)
        check_positive("gamma", self.gamma)
        check_positive("tau0", self.tau0)
        check_positive("tau", self.tau)
        check_in_options("image_dtype", self.image_dtype, IMAGE_DTYPES)
        check_in_options("compute_dtype", self.compute_dtype, COMPUTE_DTYPES)
        check_positive("encode_batch_size", self.encode_batch_size)
        check_positive("n_workers", self.n_workers)
        _check_pipeline_knobs(self.n_producers, self.prefetch_depth, self.n_workers)
        if self.cache_max_bytes is not None:
            check_positive("cache_max_bytes", self.cache_max_bytes)
        if self.cache_spill_max_bytes is not None:
            check_positive("cache_spill_max_bytes", self.cache_spill_max_bytes)
            if self.cache_spill_dir is None:
                raise ValueError("cache_spill_max_bytes requires cache_spill_dir")
        check_in_options("temperature_mode", self.temperature_mode, TEMPERATURE_MODES)
        check_in_options("mixup_mode", self.mixup_mode, MIXUP_MODES)
        check_in_options("prototype_reduction", self.prototype_reduction, PROTOTYPE_REDUCTIONS)
        check_in_options("channel_aggregation", self.channel_aggregation, CHANNEL_AGGREGATIONS)
        if not self.augmentation_names:
            raise ValueError("augmentation_names must not be empty")

    @property
    def n_augmentations(self) -> int:
        """The bank size G."""
        return len(self.augmentation_names)


@dataclass
class FineTuneConfig:
    """Hyper-parameters of downstream fine-tuning (paper Section V-A3).

    ``step_arena`` mirrors :attr:`AimTSConfig.step_arena`: pool autograd
    workspaces across fine-tuning steps (bit-identical values; ``False`` =
    per-step allocation).
    """

    learning_rate: float = 1e-3
    epochs: int = 20
    batch_size: int = 8
    classifier_hidden_dim: int | None = 64
    dropout: float = 0.1
    freeze_encoder: bool = False
    step_arena: bool = True
    seed: int = 3407

    def __post_init__(self) -> None:
        check_positive("learning_rate", self.learning_rate)
        check_positive("epochs", self.epochs)
        check_positive("batch_size", self.batch_size)
        check_probability("dropout", self.dropout)
