"""``repro.augmentations`` — time-series data augmentations.

The paper's augmentation bank (Section V-A4) contains five operations:
jittering, scaling, time warping, slicing and window warping.  A few extra
augmentations (permutation, masking) are provided for the baselines that need
"weak"/"strong" views (TS-TCC) and for ablations.

Every augmentation is a callable object operating on a single sample of shape
``(M, T)`` or a batch ``(B, M, T)`` and always returns an array of the same
shape — slicing/warping re-interpolate back to the original length, following
Le Guennec et al. (2016) as cited by the paper.

Batches run through vectorized ``_transform_batch`` kernels that are
bit-identical (values *and* RNG stream) to the per-sample reference loops;
set ``Augmentation.batched = False`` (or the ``augment_batched`` config knob)
to force the reference path.
"""

from repro.augmentations.bank import DEFAULT_BANK, AugmentationBank, default_bank
from repro.augmentations.base import Augmentation, Compose, Identity
from repro.augmentations.kernels import interp_batch
from repro.augmentations.ops import (
    Jitter,
    Masking,
    Permutation,
    Scaling,
    Slicing,
    TimeWarp,
    WindowWarp,
)

__all__ = [
    "Augmentation",
    "Identity",
    "Compose",
    "Jitter",
    "Scaling",
    "TimeWarp",
    "Slicing",
    "WindowWarp",
    "Permutation",
    "Masking",
    "AugmentationBank",
    "default_bank",
    "DEFAULT_BANK",
    "interp_batch",
]
