"""Concrete time-series augmentations.

These follow the definitions surveyed by Iwana & Uchida (2021) and Wen et al.
(2020), the references the paper cites for its augmentation bank.

Every op ships two implementations: ``_transform_sample`` — the per-sample
reference — and ``_transform_batch`` — a vectorized kernel over a whole
``(B, M, T)`` batch that draws its randomness as *batched* draws (NumPy
``Generator`` fills output arrays element-sequentially, so a single
``rng.normal(size=(B, ...))`` consumes the exact stream of ``B`` per-sample
draws) and resamples via batched index gathers + :func:`~repro.augmentations.
kernels.interp_batch`.  The two paths are bit-identical under the same RNG
stream; ops whose per-sample draw *count* is data-dependent (``WindowWarp``'s
interleaved start/scale pair, ``Permutation``'s variable segment count) keep
a scalar draw loop — preserving the stream by construction — and vectorize
only the array math.
"""

from __future__ import annotations

import numpy as np

from repro.augmentations.base import Augmentation
from repro.augmentations.kernels import (
    batch_gather_windows,
    batch_time_gather,
    interp_batch,
    interp_uniform_batch,
)
from repro.utils.validation import check_positive, check_probability


def _resample_to_length(series: np.ndarray, length: int) -> np.ndarray:
    """Linearly interpolate a 1-D series to ``length`` points."""
    if series.shape[0] == length:
        return series
    old_grid = np.linspace(0.0, 1.0, series.shape[0])
    new_grid = np.linspace(0.0, 1.0, length)
    return np.interp(new_grid, old_grid, series)


def _resample_batch(windows: np.ndarray, length: int) -> np.ndarray:
    """Batched ``_resample_to_length`` over the last axis of ``(..., W)``."""
    if windows.shape[-1] == length:
        return windows
    return interp_uniform_batch(windows, length)


class Jitter(Augmentation):
    """Additive Gaussian noise: ``x + eps`` with ``eps ~ N(0, sigma^2)``."""

    name = "jitter"

    def __init__(self, sigma: float = 0.08, seed=None):
        super().__init__(seed)
        self.sigma = check_positive("sigma", sigma)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return sample + rng.normal(0.0, self.sigma, size=sample.shape)

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return X + rng.normal(0.0, self.sigma, size=X.shape)


class Scaling(Augmentation):
    """Multiplicative amplitude scaling with a per-variable random factor."""

    name = "scaling"

    def __init__(self, sigma: float = 0.1, seed=None):
        super().__init__(seed)
        self.sigma = check_positive("sigma", sigma)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        factors = rng.normal(1.0, self.sigma, size=(sample.shape[0], 1))
        return sample * factors

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        factors = rng.normal(1.0, self.sigma, size=(X.shape[0], X.shape[1], 1))
        return X * factors


class TimeWarp(Augmentation):
    """Smooth random warping of the time axis via a cubic-ish knot spline."""

    name = "time_warp"

    def __init__(self, n_knots: int = 4, strength: float = 0.1, seed=None):
        super().__init__(seed)
        self.n_knots = int(check_positive("n_knots", n_knots))
        self.strength = check_positive("strength", strength)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        length = sample.shape[1]
        knot_positions = np.linspace(0, 1, self.n_knots + 2)
        knot_offsets = np.concatenate([[0.0], rng.normal(0, self.strength, self.n_knots), [0.0]])
        offsets = np.interp(np.linspace(0, 1, length), knot_positions, knot_offsets)
        warped_grid = np.clip(np.linspace(0, 1, length) + offsets, 0, 1)
        # enforce monotonicity so the warp is a valid re-timing
        warped_grid = np.maximum.accumulate(warped_grid)
        original_grid = np.linspace(0, 1, length)
        out = np.empty_like(sample)
        for variable in range(sample.shape[0]):
            out[variable] = np.interp(warped_grid, original_grid, sample[variable])
        return out

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        B, M, T = X.shape
        knot_offsets = np.zeros((B, self.n_knots + 2))
        knot_offsets[:, 1:-1] = rng.normal(0, self.strength, size=(B, self.n_knots))
        grid = np.linspace(0, 1, T)
        offsets = interp_uniform_batch(knot_offsets, T)  # (B, T)
        warped_grid = np.clip(grid + offsets, 0, 1)
        warped_grid = np.maximum.accumulate(warped_grid, axis=-1)
        return interp_batch(warped_grid[:, None, :], grid, X)


class Slicing(Augmentation):
    """Window slicing: crop a random sub-window and stretch it back.

    This is the augmentation used in the paper's Fig. 9 case study — it can
    destroy class-relevant structure (e.g. drop one of the eclipse dips),
    changing the semantics of the sample.
    """

    name = "slicing"

    def __init__(self, crop_ratio: float = 0.8, seed=None):
        super().__init__(seed)
        check_probability("crop_ratio", crop_ratio)
        if crop_ratio <= 0.1:
            raise ValueError("crop_ratio must be > 0.1 to leave a usable window")
        self.crop_ratio = crop_ratio

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        length = sample.shape[1]
        window = max(2, int(round(self.crop_ratio * length)))
        start = int(rng.integers(0, length - window + 1))
        out = np.empty_like(sample)
        for variable in range(sample.shape[0]):
            out[variable] = _resample_to_length(sample[variable, start : start + window], length)
        return out

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        B, M, T = X.shape
        window = max(2, int(round(self.crop_ratio * T)))
        starts = rng.integers(0, T - window + 1, size=B)
        if window == T:  # degenerate crop: the reference copies each sample
            return X.copy()
        windows = batch_gather_windows(X, starts, window)
        return _resample_batch(windows, T)


class WindowWarp(Augmentation):
    """Window warping: speed up or slow down one random window by ``scales``."""

    name = "window_warp"

    def __init__(self, window_ratio: float = 0.3, scales: tuple[float, float] = (0.5, 2.0), seed=None):
        super().__init__(seed)
        check_probability("window_ratio", window_ratio)
        self.window_ratio = window_ratio
        self.scales = tuple(scales)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        length = sample.shape[1]
        window = max(2, int(round(self.window_ratio * length)))
        start = int(rng.integers(0, length - window + 1))
        scale = float(rng.choice(self.scales))
        warped_window_length = max(2, int(round(window * scale)))
        out = np.empty_like(sample)
        for variable in range(sample.shape[0]):
            series = sample[variable]
            warped_window = _resample_to_length(series[start : start + window], warped_window_length)
            stitched = np.concatenate([series[:start], warped_window, series[start + window :]])
            out[variable] = _resample_to_length(stitched, length)
        return out

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        B, M, T = X.shape
        window = max(2, int(round(self.window_ratio * T)))
        # the reference interleaves the two draws per sample (start, scale,
        # start, scale, ...), so the draws stay a scalar loop — only the
        # resample/stitch math below is batched
        starts = np.empty(B, dtype=np.intp)
        scales = np.empty(B)
        for b in range(B):
            starts[b] = int(rng.integers(0, T - window + 1))
            scales[b] = float(rng.choice(self.scales))
        out = np.empty((B, M, T))
        for scale in np.unique(scales):
            group = np.flatnonzero(scales == scale)
            warped_length = max(2, int(round(window * scale)))
            stitched_length = T - window + warped_length
            X_g, starts_g = X[group], starts[group]
            warped = _resample_batch(batch_gather_windows(X_g, starts_g, window), warped_length)
            # build the stitched series with one gather + where: positions
            # before the window come from X, inside from the warped window,
            # after from X shifted by the length change
            position = np.arange(stitched_length, dtype=np.intp)[None, :]
            st = starts_g[:, None]
            in_window = (position >= st) & (position < st + warped_length)
            from_x = np.where(position < st, position, position - warped_length + window)
            from_x = np.clip(from_x, 0, T - 1)
            from_w = np.clip(position - st, 0, warped_length - 1)
            stitched = np.where(
                in_window[:, None, :],
                batch_time_gather(warped, from_w),
                batch_time_gather(X_g, from_x),
            )
            out[group] = _resample_batch(stitched, T)
        return out


class Permutation(Augmentation):
    """Split the series into segments and permute them (a "strong" view)."""

    name = "permutation"

    def __init__(self, max_segments: int = 5, seed=None):
        super().__init__(seed)
        self.max_segments = int(check_positive("max_segments", max_segments))

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return sample[:, self._permutation_index(sample.shape[1], rng)]

    def _permutation_index(self, length: int, rng: np.random.Generator) -> np.ndarray:
        n_segments = int(rng.integers(2, self.max_segments + 1))
        boundaries = np.sort(rng.choice(np.arange(1, length), size=n_segments - 1, replace=False))
        segments = np.split(np.arange(length), boundaries)
        order = rng.permutation(len(segments))
        return np.concatenate([segments[i] for i in order])

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        B, M, T = X.shape
        # draw counts are data-dependent (variable segment number), so the
        # index construction stays per sample; the reindexing is one gather
        index = np.empty((B, T), dtype=np.intp)
        for b in range(B):
            index[b] = self._permutation_index(T, rng)
        return batch_time_gather(X, index)


class Masking(Augmentation):
    """Zero out a random contiguous window (used by masked-modeling baselines)."""

    name = "masking"

    def __init__(self, mask_ratio: float = 0.2, seed=None):
        super().__init__(seed)
        check_probability("mask_ratio", mask_ratio)
        self.mask_ratio = mask_ratio

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        length = sample.shape[1]
        window = max(1, int(round(self.mask_ratio * length)))
        start = int(rng.integers(0, length - window + 1))
        out = sample.copy()
        out[:, start : start + window] = 0.0
        return out

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        B, M, T = X.shape
        window = max(1, int(round(self.mask_ratio * T)))
        starts = rng.integers(0, T - window + 1, size=B)
        position = np.arange(T, dtype=np.intp)[None, :]
        masked = (position >= starts[:, None]) & (position < starts[:, None] + window)
        out = X.copy()
        out[np.broadcast_to(masked[:, None, :], out.shape)] = 0.0
        return out
