"""The augmentation bank used by prototype-based contrastive learning.

Following Section V-A4 of the paper, the default bank contains G = 5
augmentations: jittering, scaling, time warping, slicing and window warping.
:meth:`AugmentationBank.two_views` produces the two independently randomised
augmented views per augmentation required by the prototype construction
(Fig. 4a of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.augmentations.base import Augmentation
from repro.augmentations.ops import Jitter, Scaling, Slicing, TimeWarp, WindowWarp
from repro.utils.seeding import new_rng

#: names of the paper's default augmentation bank, in order
DEFAULT_BANK = ("jitter", "scaling", "time_warp", "slicing", "window_warp")


class AugmentationBank:
    """A fixed collection of G augmentation operations.

    Parameters
    ----------
    augmentations:
        The augmentation objects forming the bank.
    """

    def __init__(self, augmentations: list[Augmentation]):
        if not augmentations:
            raise ValueError("the augmentation bank must contain at least one augmentation")
        self.augmentations = list(augmentations)

    def __len__(self) -> int:
        return len(self.augmentations)

    def __iter__(self):
        return iter(self.augmentations)

    @property
    def names(self) -> list[str]:
        """Augmentation identifiers, in bank order."""
        return [a.name for a in self.augmentations]

    def set_batched(self, batched: bool) -> "AugmentationBank":
        """Route every op through its vectorized batch kernel (or not).

        The two settings are bit-identical under the same RNG streams (see
        ``Augmentation.batched``); ``False`` forces the per-sample reference
        loops, which the ``augment_batched`` config knob exposes for
        debugging and equivalence testing.
        """
        for augmentation in self.augmentations:
            augmentation.batched = bool(batched)
        return self

    def augment_batch(self, X: np.ndarray) -> np.ndarray:
        """Apply every augmentation once to a batch.

        Returns an array of shape ``(G, B, M, T)`` with one augmented view of
        every sample per augmentation, in the batch's (floating) dtype.
        """
        X = np.asarray(X)
        return np.stack([augmentation(X) for augmentation in self.augmentations], axis=0)

    def two_views(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Generate the two independently randomised view sets of the paper.

        Returns ``(views_a, views_b)``, each of shape ``(G, B, M, T)``; views_a[k]
        and views_b[k] come from the *same* augmentation with different random
        parameters, so they form the intra-prototype positive pairs.
        """
        return self.augment_batch(X), self.augment_batch(X)


def default_bank(seed: int | np.random.Generator | None = None) -> AugmentationBank:
    """Build the paper's default 5-augmentation bank."""
    rng = new_rng(seed)
    children = [new_rng(int(rng.integers(0, 2**31))) for _ in range(5)]
    return AugmentationBank(
        [
            Jitter(sigma=0.08, seed=children[0]),
            Scaling(sigma=0.1, seed=children[1]),
            TimeWarp(n_knots=4, strength=0.1, seed=children[2]),
            Slicing(crop_ratio=0.8, seed=children[3]),
            WindowWarp(window_ratio=0.3, seed=children[4]),
        ]
    )
