"""Augmentation base classes."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import new_rng


class Augmentation:
    """Base class for time-series augmentations.

    Subclasses implement :meth:`_transform_sample` on a single ``(M, T)``
    sample and, for the hot batched path, :meth:`_transform_batch` on a whole
    ``(B, M, T)`` batch; the base class handles routing, dtype preservation
    and RNG management so that every call produces a *different* random view
    (Definition 3 in the paper: the same augmentation applied twice yields two
    distinct augmented views).

    Contract of the batched kernels: starting from the same RNG state,
    ``_transform_batch(X, rng)`` must return exactly ``stack([_transform_sample
    (x, rng) for x in X])`` — bit-identical values *and* the same final RNG
    state — so switching :attr:`batched` on or off never changes a training
    run.  ``tests/test_augmentations_batched.py`` asserts this for every
    registered op.  Ops whose per-sample randomness is data-dependent (e.g.
    :class:`Compose`) simply inherit the reference loop.

    Dtypes are preserved: a float32 batch comes back float32 (the internal
    random draws still happen in float64, exactly as the per-sample reference
    path, with one cast on the way out), and non-floating inputs are promoted
    to the active compute dtype (``repro.nn.tensor.get_default_dtype()``, i.e.
    whatever ``DtypePolicy`` scope is in force) instead of hard-coded float64.
    """

    #: short identifier used in logs, prototypes and parameter studies
    name = "augmentation"

    #: route ``(B, M, T)`` inputs through the vectorized ``_transform_batch``
    #: kernel; ``False`` forces the per-sample reference loop (the
    #: ``augment_batched`` config knob lands here)
    batched = True

    def __init__(self, seed: int | np.random.Generator | None = None):
        self._rng = new_rng(seed)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized batch kernel; the default is the per-sample reference."""
        return self._reference_batch(X, rng)

    def _reference_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """The per-sample reference the batched kernels are verified against."""
        return np.stack([self._transform_sample(sample, rng) for sample in X], axis=0)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Augment a single sample ``(M, T)`` or a batch ``(B, M, T)``."""
        X = np.asarray(X)
        if not np.issubdtype(X.dtype, np.floating):
            from repro.nn.tensor import get_default_dtype

            X = X.astype(get_default_dtype())
        if X.ndim == 2:
            out = self._transform_sample(X, self._rng)
        elif X.ndim == 3:
            if self.batched:
                out = self._transform_batch(X, self._rng)
            else:
                out = self._reference_batch(X, self._rng)
        else:
            raise ValueError(f"expected (M, T) or (B, M, T) input, got shape {X.shape}")
        out = np.asarray(out)
        if out.shape != X.shape:
            raise RuntimeError(
                f"{type(self).__name__} changed the sample shape from {X.shape} to {out.shape}"
            )
        return out.astype(X.dtype, copy=False)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Augmentation):
    """The no-op augmentation (useful as a control in ablations)."""

    name = "identity"

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return sample.copy()

    def _transform_batch(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return X.copy()


class Compose(Augmentation):
    """Apply several augmentations in sequence.

    Batching note: the per-sample reference interleaves the children's RNG
    draws sample by sample (``child1(s0), child2(s0), child1(s1), ...``), an
    order no batched kernel can reproduce, so ``Compose`` always runs the
    reference loop — its children's own batched kernels are unused here.
    """

    name = "compose"

    def __init__(self, augmentations: list[Augmentation], seed=None):
        super().__init__(seed)
        if not augmentations:
            raise ValueError("Compose requires at least one augmentation")
        self.augmentations = list(augmentations)
        self.name = "+".join(a.name for a in self.augmentations)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = sample
        for augmentation in self.augmentations:
            out = augmentation._transform_sample(out, rng)
        return out
