"""Augmentation base classes."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import new_rng


class Augmentation:
    """Base class for time-series augmentations.

    Subclasses implement :meth:`_transform_sample` on a single ``(M, T)``
    sample; the base class handles batching and RNG management so that every
    call produces a *different* random view (Definition 3 in the paper: the
    same augmentation applied twice yields two distinct augmented views).
    """

    #: short identifier used in logs, prototypes and parameter studies
    name = "augmentation"

    def __init__(self, seed: int | np.random.Generator | None = None):
        self._rng = new_rng(seed)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Augment a single sample ``(M, T)`` or a batch ``(B, M, T)``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 2:
            out = self._transform_sample(X, self._rng)
            if out.shape != X.shape:
                raise RuntimeError(
                    f"{type(self).__name__} changed the sample shape from {X.shape} to {out.shape}"
                )
            return out
        if X.ndim == 3:
            return np.stack([self(x) for x in X], axis=0)
        raise ValueError(f"expected (M, T) or (B, M, T) input, got shape {X.shape}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Augmentation):
    """The no-op augmentation (useful as a control in ablations)."""

    name = "identity"

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return sample.copy()


class Compose(Augmentation):
    """Apply several augmentations in sequence."""

    name = "compose"

    def __init__(self, augmentations: list[Augmentation], seed=None):
        super().__init__(seed)
        if not augmentations:
            raise ValueError("Compose requires at least one augmentation")
        self.augmentations = list(augmentations)
        self.name = "+".join(a.name for a in self.augmentations)

    def _transform_sample(self, sample: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = sample
        for augmentation in self.augmentations:
            out = augmentation._transform_sample(out, rng)
        return out
