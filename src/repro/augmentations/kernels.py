"""Vectorized kernels shared by the batched augmentation fast paths.

The batched augmentation substrate (PR 5) must be **bit-identical** to the
per-sample reference implementations under the same RNG stream, because the
engine's golden loss curves are asserted with ``==`` on floats.  The per-sample
paths lean on :func:`numpy.interp`, so this module provides
:func:`interp_batch` — a broadcasting re-implementation of ``np.interp`` that
performs *exactly* the same scalar arithmetic (same slope formula, same
exact-hit and NaN fallback branches as numpy's ``compiled_interp``) and is
fuzz-tested for bit-identity against ``np.interp`` in
``tests/test_augmentations_batched.py``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def interp_batch(x: np.ndarray, xp: np.ndarray, fp: np.ndarray) -> np.ndarray:
    """Batched linear interpolation, bit-identical to per-row ``np.interp``.

    Parameters
    ----------
    x:
        Query positions ``(..., N)``; leading axes broadcast against ``fp``.
    xp:
        1-D strictly increasing sample positions ``(K,)`` (shared by every
        row, like every augmentation resampling grid).
    fp:
        Sample values ``(..., K)``.

    Returns
    -------
    ``(..., N)`` float64 array equal (bit-for-bit, NaNs included) to running
    ``np.interp(x[i], xp, fp[i])`` over every row ``i`` of the broadcast
    leading shape.
    """
    x = np.asarray(x, dtype=np.float64)
    xp = np.asarray(xp, dtype=np.float64)
    fp = np.asarray(fp, dtype=np.float64)
    if xp.ndim != 1 or xp.shape[0] < 2:
        raise ValueError(f"xp must be 1-D with at least two points, got shape {xp.shape}")

    # interval index per query: j such that xp[j] <= x < xp[j+1]
    j = np.searchsorted(xp, x, side="right") - 1
    below = j < 0  # x < xp[0]  -> left fill value fp[..., 0]
    above = j >= xp.shape[0] - 1  # x >= xp[-1] -> right fill value fp[..., -1]
    jc = np.clip(j, 0, xp.shape[0] - 2)

    x_lo = xp[jc]
    x_hi = xp[jc + 1]
    lead = np.broadcast_shapes(x.shape[:-1], fp.shape[:-1])
    fp_b = np.broadcast_to(fp, lead + fp.shape[-1:])
    jc_b = np.broadcast_to(jc, lead + jc.shape[-1:])
    y_lo = np.take_along_axis(fp_b, jc_b, axis=-1)
    y_hi = np.take_along_axis(fp_b, jc_b + 1, axis=-1)

    # np.interp's arithmetic, operation for operation: slope first, then
    # slope * (x - x_lo) + y_lo, with the NaN fallback recomputed from the
    # right-hand knot and the exact-hit branch returning y_lo untouched.
    with np.errstate(invalid="ignore", divide="ignore"):
        slope = (y_hi - y_lo) / (x_hi - x_lo)
        result = slope * (x - x_lo) + y_lo
        nan_mask = np.isnan(result)
        if nan_mask.any():
            fallback = slope * (x - x_hi) + y_hi
            fallback = np.where(np.isnan(fallback) & (y_lo == y_hi), y_lo, fallback)
            result = np.where(nan_mask, fallback, result)
    result = np.where(x == x_lo, y_lo, result)
    result = np.where(above, fp_b[..., -1:], result)
    result = np.where(below, fp_b[..., :1], result)
    return result


@lru_cache(maxsize=512)
def _uniform_plan(n_out: int, n_in: int):
    """Precomputed interpolation plan between two ``linspace(0, 1, n)`` grids.

    Every fixed-grid resample in the augmentation bank interpolates from
    ``linspace(0, 1, n_in)`` onto ``linspace(0, 1, n_out)``, so the interval
    indices, the ``x - x_lo`` terms, the interval widths and the exact-hit
    mask only depend on the two lengths — precomputing them cuts the hot
    per-call work to two gathers and four arithmetic ops while keeping the
    scalar formulas (and hence bit-identity with ``np.interp``) untouched.
    """
    x = np.linspace(0.0, 1.0, n_out)
    xp = np.linspace(0.0, 1.0, n_in)
    j = np.searchsorted(xp, x, side="right") - 1
    above = j >= n_in - 1  # x >= xp[-1] (only the right endpoint here)
    jc = np.clip(j, 0, n_in - 2)
    x_lo, x_hi = xp[jc], xp[jc + 1]
    plan = {
        "jc": jc,
        "width": x_hi - x_lo,
        "dx": x - x_lo,
        "dx_hi": x - x_hi,
        "exact": x == x_lo,
        "above": above,
    }
    for value in plan.values():
        value.setflags(write=False)
    return plan


def interp_uniform_batch(fp: np.ndarray, n_out: int) -> np.ndarray:
    """Resample ``(..., n_in)`` onto ``n_out`` points over uniform grids.

    Equivalent (bit-for-bit) to :func:`interp_batch` with
    ``x = linspace(0, 1, n_out)`` and ``xp = linspace(0, 1, n_in)`` — i.e. to
    row-wise ``np.interp`` — but with all grid-dependent terms served from
    the memoized :func:`_uniform_plan`.
    """
    fp = np.asarray(fp, dtype=np.float64)
    plan = _uniform_plan(int(n_out), fp.shape[-1])
    y_lo = fp[..., plan["jc"]]
    y_hi = fp[..., plan["jc"] + 1]
    with np.errstate(invalid="ignore", divide="ignore"):
        slope = (y_hi - y_lo) / plan["width"]
        result = slope * plan["dx"] + y_lo
        nan_mask = np.isnan(result)
        if nan_mask.any():
            fallback = slope * plan["dx_hi"] + y_hi
            fallback = np.where(np.isnan(fallback) & (y_lo == y_hi), y_lo, fallback)
            result = np.where(nan_mask, fallback, result)
    result = np.where(plan["exact"], y_lo, result)
    if plan["above"].any():
        result = np.where(plan["above"], fp[..., -1:], result)
    return result


def batch_gather_windows(X: np.ndarray, starts: np.ndarray, window: int) -> np.ndarray:
    """Gather per-sample windows ``X[b, :, starts[b]:starts[b]+window]``.

    One fancy-index gather over the whole ``(B, M, T)`` batch, returning
    ``(B, M, window)`` — the batched counterpart of the per-sample crops in
    ``Slicing`` / ``WindowWarp``.
    """
    B, M, _ = X.shape
    cols = np.asarray(starts, dtype=np.intp)[:, None] + np.arange(window, dtype=np.intp)
    return X[
        np.arange(B, dtype=np.intp)[:, None, None],
        np.arange(M, dtype=np.intp)[None, :, None],
        cols[:, None, :],
    ]


def batch_time_gather(X: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Per-sample time reindexing ``out[b, m, t] = X[b, m, index[b, t]]``.

    ``index`` is ``(B, T_out)``; the gather broadcasts over the variable axis,
    replacing the per-sample ``sample[:, index]`` loops of ``Permutation``.
    """
    B, M, _ = X.shape
    index = np.asarray(index, dtype=np.intp)
    return X[
        np.arange(B, dtype=np.intp)[:, None, None],
        np.arange(M, dtype=np.intp)[None, :, None],
        index[:, None, :],
    ]
