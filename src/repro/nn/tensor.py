"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it so that :meth:`Tensor.backward` can propagate gradients through
arbitrary compositions of the supported primitives.  Broadcasting is handled by
summing gradients back to the original operand shapes, matching NumPy/PyTorch
semantics.

The implementation favours clarity over raw speed: each primitive stores a
closure that computes the local vector-Jacobian product.  This is more than
fast enough for the laptop-scale experiments in this reproduction.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.nn.arena import _normalized_strides, active_arena, result_template

_GRAD_ENABLED = True

#: dtypes the compute core supports (see ``repro.engine.DtypePolicy``)
SUPPORTED_COMPUTE_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autograd."""
    return _GRAD_ENABLED


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (float64 unless configured)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the tensor-creation dtype; returns the previous default.

    Only float32 and float64 are supported.  Prefer the scoped
    :func:`default_dtype` context manager (which estimators and the training
    engine use to apply their ``DtypePolicy``) over calling this directly.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in SUPPORTED_COMPUTE_DTYPES:
        raise ValueError(f"compute dtype must be float32 or float64, got {dtype}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dtype
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Scope within which new tensors are created with ``dtype``.

    This is how a ``DtypePolicy`` reaches the compute core: parameters
    initialised, inputs wrapped and gradients accumulated inside the scope
    all use ``dtype``, while arrays that already exist keep theirs.
    """
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum the leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected a raw value, got a Tensor")
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; converted to the ambient default dtype (float64
        unless a :func:`default_dtype` scope or ``DtypePolicy`` says
        otherwise).
    requires_grad:
        Whether gradients should be accumulated in :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_buf",
        "_grad_owned",
        "name",
    )
    __array_priority__ = 1000  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        #: private persistent gradient buffer of a leaf tensor (parameters):
        #: allocated on the first arena-scoped accumulate, reused every step
        self._grad_buf: np.ndarray | None = None
        #: whether ``grad`` is a buffer this tensor may mutate in place
        self._grad_owned = False
        self.name = name

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient (a pooled buffer is kept for reuse)."""
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------- graph core
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # gradients live in the tensor's own dtype, so float32 parameters
            # keep float32 optimizer state end to end
            arena = active_arena()
            if arena is not None and grad.shape == self.data.shape:
                # buffers mirror the layout ``grad.astype(..., copy=True)``
                # (order 'K') would produce, so later reductions over this
                # gradient iterate exactly like the allocate-fresh path
                if self._backward is None:
                    # leaf (parameter) gradients outlive the step (gradient
                    # accumulation windows, optimizer reads), so they get a
                    # private per-tensor buffer instead of a pooled slot
                    buf = self._grad_buf
                    if (
                        buf is None
                        or buf.shape != self.data.shape
                        or buf.dtype != self.data.dtype
                        or _normalized_strides(buf) != _normalized_strides(grad)
                    ):
                        buf = self._grad_buf = np.empty_like(grad, dtype=self.data.dtype)
                else:
                    buf = arena.buffer("grad", self.data.shape, self.data.dtype, like=grad)
                np.copyto(buf, grad)
                self.grad = buf
                self._grad_owned = True
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
                self._grad_owned = True
        elif (
            self._grad_owned
            and grad.dtype == self.grad.dtype
            and grad.shape == self.grad.shape
            and (
                self.grad.flags["C_CONTIGUOUS"]
                or self.grad.strides == grad.strides
            )
        ):
            # in-place accumulation: bit-identical to ``self.grad + grad``,
            # and layout-identical too — the fresh sum would follow
            # ``self.grad``'s layout when the strides agree and fall back to
            # C order (= an already-C ``self.grad``) when they don't
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the objective with respect to this tensor.  Defaults to
            ones for scalar tensors (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological ordering of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            stack.extend(
                (parent, False)
                for parent in node._parents
                if parent.requires_grad and id(parent) not in visited
            )

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # -------------------------------------------------------------- operators
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            # the VJP products go through a pooled scratch (consumed by
            # _accumulate before the next request) when an arena is active;
            # np.multiply(..., out=) is bit-identical to the * expression
            arena = active_arena()
            if self.requires_grad:
                if arena is not None and other.data.dtype == grad.dtype:
                    product = np.multiply(
                        grad,
                        other.data,
                        out=arena.scratch(
                            "mul.vjp",
                            grad.shape,
                            grad.dtype,
                            like=result_template(grad.shape, grad, other.data),
                        ),
                    )
                else:
                    product = grad * other.data
                self._accumulate(_unbroadcast(product, self.shape))
            if other.requires_grad:
                if arena is not None and self.data.dtype == grad.dtype:
                    product = np.multiply(
                        grad,
                        self.data,
                        out=arena.scratch(
                            "mul.vjp",
                            grad.shape,
                            grad.dtype,
                            like=result_template(grad.shape, grad, self.data),
                        ),
                    )
                else:
                    product = grad * self.data
                other._accumulate(_unbroadcast(product, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(_unbroadcast(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data, self.shape))
                else:
                    self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(_unbroadcast(np.outer(self.data, grad), other.shape))
                else:
                    other._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                    )

        return Tensor._make(out_data, (self, other), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ----------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        # ``x * mask`` (not np.maximum) so -0.0 inputs keep their sign bit,
        # matching the backward's mask arithmetic exactly
        arena = active_arena()
        if arena is not None:
            mask = np.greater(
                self.data,
                0,
                out=arena.buffer("relu.mask", self.data.shape, np.bool_, like=self.data),
            )
            out_data = np.multiply(
                self.data,
                mask,
                out=arena.buffer("relu.out", self.data.shape, self.data.dtype, like=self.data),
            )
        else:
            mask = self.data > 0
            out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                pool = active_arena()
                if pool is not None and grad.shape == mask.shape:
                    self._accumulate(
                        np.multiply(
                            grad,
                            mask,
                            out=pool.scratch(
                                "relu.vjp",
                                grad.shape,
                                grad.dtype,
                                like=result_template(grad.shape, grad, mask),
                            ),
                        )
                    )
                else:
                    self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def add_relu(self, other) -> "Tensor":
        """Fused ``(self + other).relu()`` — one autograd node instead of two.

        Bit-identical to the composition: the forward computes the same
        ``sum * mask`` product, and the backward applies the relu mask once
        and then accumulates into both operands in the same order the
        decomposed add node would.  Used by the residual blocks of the TS
        encoder, where it removes a node, a gradient copy and two
        intermediate arrays per block per step.
        """
        other = self._coerce(other)
        arena = active_arena()
        if arena is not None:
            shape = np.broadcast_shapes(self.data.shape, other.data.shape)
            dtype = np.result_type(self.data, other.data)
            total = np.add(
                self.data,
                other.data,
                out=arena.buffer(
                    "add_relu.out",
                    shape,
                    dtype,
                    like=result_template(shape, self.data, other.data),
                ),
            )
        else:
            total = self.data + other.data
        mask = (
            np.greater(
                total, 0, out=arena.buffer("add_relu.mask", total.shape, np.bool_, like=total)
            )
            if arena is not None
            else total > 0
        )
        # the pre-activation sum is only read here, so the product lands in
        # its buffer; ``total * mask`` would be the same bits in a fresh array
        out_data = np.multiply(total, mask, out=total)

        def backward(grad):
            pool = active_arena()
            if pool is not None and grad.shape == mask.shape:
                masked = np.multiply(
                    grad,
                    mask,
                    out=pool.scratch(
                        "add_relu.vjp",
                        grad.shape,
                        grad.dtype,
                        like=result_template(grad.shape, grad, mask),
                    ),
                )
            else:
                masked = grad * mask
            if self.requires_grad:
                self._accumulate(_unbroadcast(masked, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(masked, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad):
            if self.requires_grad:
                sech2 = 1.0 - tanh_inner**2
                d_inner = c * (1.0 + 3 * 0.044715 * x**2)
                local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        mask = self.data >= minimum
        out_data = np.maximum(self.data, minimum)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------ reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if self.requires_grad:
                g = np.asarray(grad)
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                arena = active_arena()
                if arena is not None and g.dtype == self.data.dtype:
                    # copyto broadcasts, matching broadcast_to(...).astype bit
                    # for bit without materialising a fresh full-size array
                    spread = arena.scratch("sum.vjp", self.data.shape, self.data.dtype)
                    np.copyto(spread, g)
                    self._accumulate(spread)
                else:
                    self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if self.requires_grad:
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask = mask / mask.sum(axis=axis, keepdims=True)
                g = np.asarray(grad)
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ---------------------------------------------------------- shape juggling
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        new_shape = list(self.shape)
        if axis is None:
            new_shape = [s for s in new_shape if s != 1]
        else:
            if new_shape[axis] != 1:
                raise ValueError(f"cannot squeeze axis {axis} of size {new_shape[axis]}")
            new_shape.pop(axis)
        return self.reshape(tuple(new_shape))

    def unsqueeze(self, axis: int) -> "Tensor":
        new_shape = list(self.shape)
        if axis < 0:
            axis = len(new_shape) + 1 + axis
        new_shape.insert(axis, 1)
        return self.reshape(tuple(new_shape))

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(shape)

    # ----------------------------------------------------------- constructors
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t.unsqueeze(axis) for t in tensors]
        return Tensor.concat(tensors, axis=axis)
