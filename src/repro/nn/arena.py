"""Pooled autograd workspaces for the training hot loop.

:class:`StepArena` generalizes the inference-side
:class:`~repro.nn.inference.Workspace` to the *training* step: for a fixed
configuration the autograd graph has identical topology and shapes every
step, so every array the forward and backward passes materialise can come
from a plan-once/reuse-forever pool instead of the allocator.

Two pool disciplines cover every training allocation pattern:

* :meth:`StepArena.buffer` — **generation-keyed** buffers for arrays that
  stay live until the step completes (im2col patch matrices, convolution
  outputs, activation masks, accumulated gradients).  The full key is
  ``(tag, shape, dtype, occurrence)`` where ``occurrence`` counts prior
  requests for the same ``(tag, shape, dtype)`` within the current
  generation: the N-th identical request of every step returns the same
  buffer, and two live arrays of one step can never alias.  A shape change
  (e.g. the smaller last batch of an epoch) simply populates its own buffer
  set, exactly like the inference ``Workspace``.
* :meth:`StepArena.scratch` — a **single** buffer per ``(tag, shape,
  dtype)`` for transient temporaries that are consumed immediately (VJP
  products that are copied into a gradient buffer by
  ``Tensor._accumulate``).  Reusing one slot per call-site keeps the pool
  footprint proportional to the working set, not the step length.

:meth:`StepArena.advance` rolls the generation over between steps — a
counter reset, not a free/alloc cycle — after which every ``buffer`` slot
may be handed out again.  Consequently **nothing may retain an arena-backed
array across steps**; the training engine guarantees this (losses are read
out as floats, batch-norm running statistics are rebuilt into fresh arrays,
parameter gradients live in per-tensor private buffers, and checkpoints
copy).  ``hits`` / ``misses`` / ``peak_bytes`` make the steady-state
contract testable: after warmup a fixed-shape step performs zero misses.

The arena reaches the compute core the same way a
:class:`~repro.engine.state.DtypePolicy` does — through a scoped module
global (:func:`use_arena` / :func:`active_arena`) that the
:class:`~repro.engine.trainer.Trainer` enters around ``fit``.  An arena is
not thread-safe; sharded / pipelined replicas each own a private one.
"""

from __future__ import annotations

import contextlib

import numpy as np

_ACTIVE_ARENA: "StepArena | None" = None


def _normalized_strides(array: np.ndarray) -> tuple[int, ...]:
    """Strides in elements (itemsize-free), comparable across dtypes."""
    itemsize = array.itemsize
    return tuple(s // itemsize for s in array.strides)


def _layout_perm(like: np.ndarray) -> tuple[int, ...] | None:
    """Axis order (descending stride) of ``like``; None for plain C order."""
    if like.flags.c_contiguous:
        return None
    strides = like.strides
    return tuple(sorted(range(like.ndim), key=lambda i: (-abs(strides[i]), i)))


def result_template(shape: tuple[int, ...], *operands: np.ndarray | None) -> np.ndarray | None:
    """The operand whose memory layout an allocate-fresh ufunc result follows.

    NumPy lays a ufunc result out like its full-shape operands when they all
    agree on a layout, and in C order otherwise (broadcast operands don't
    constrain the choice).  Pooled kernels pass the returned operand as
    ``like`` so downstream *reductions* iterate in exactly the order the
    allocate-fresh path would — pooling must not change a single bit.
    Returns ``None`` when the result is plain C order.
    """
    template = None
    for op in operands:
        if op is None or op.shape != tuple(shape):
            continue
        if template is None:
            template = op
        elif _normalized_strides(op) != _normalized_strides(template):
            return None
    if template is not None and not template.flags.c_contiguous:
        return template
    return None


def active_arena() -> "StepArena | None":
    """The arena the current training scope pools through (None = allocate)."""
    return _ACTIVE_ARENA


def set_active_arena(arena: "StepArena | None") -> "StepArena | None":
    """Install ``arena`` as the ambient pool; returns the previous one.

    Prefer the scoped :func:`use_arena` context manager (which the training
    engine uses) over calling this directly.
    """
    global _ACTIVE_ARENA
    previous = _ACTIVE_ARENA
    _ACTIVE_ARENA = arena
    return previous


@contextlib.contextmanager
def use_arena(arena: "StepArena | None"):
    """Scope within which the autograd kernels pool buffers in ``arena``.

    ``None`` is a valid argument and simply keeps the allocate-fresh
    behaviour — callers can thread an optional arena without branching.
    """
    previous = set_active_arena(arena)
    try:
        yield arena
    finally:
        set_active_arena(previous)


class StepArena:
    """A per-step buffer arena for the training forward/backward passes.

    See the module docstring for the pooling disciplines.  Stats:

    Attributes
    ----------
    hits, misses:
        Pool reuses vs fresh allocations, over the arena's lifetime.
    generation:
        Number of completed :meth:`advance` calls (≈ training steps served).
    peak_bytes:
        High-water mark of :meth:`nbytes` (sampled on allocation).
    """

    __slots__ = ("_buffers", "_counts", "_nbytes", "hits", "misses", "generation", "peak_bytes")

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self._counts: dict[tuple, int] = {}
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.generation = 0
        self.peak_bytes = 0

    # ------------------------------------------------------------------ pools
    def buffer(self, tag: str, shape: tuple[int, ...], dtype, like: np.ndarray | None = None) -> np.ndarray:
        """An uninitialised buffer that stays live until the next :meth:`advance`.

        The N-th request for a given ``(tag, shape, dtype, layout)`` within
        one generation returns the N-th pooled slot, so repeated call sites
        of a fixed graph get stable, never-aliased buffers step after step.
        ``like`` (usually from :func:`result_template`) requests a buffer
        laid out like that array instead of C order, matching what the
        allocate-fresh expression would have produced.
        """
        perm = None if like is None else _layout_perm(like)
        base = (tag, tuple(shape), np.dtype(dtype), perm)
        occurrence = self._counts.get(base, 0)
        self._counts[base] = occurrence + 1
        return self._get((*base, occurrence), shape, dtype, like if perm else None)

    def scratch(self, tag: str, shape: tuple[int, ...], dtype, like: np.ndarray | None = None) -> np.ndarray:
        """A transient buffer: one slot per key, reissued within a generation.

        Only for temporaries consumed before the call site can run again
        (e.g. a VJP product immediately copied by ``Tensor._accumulate``).
        ``like`` selects a non-C layout exactly as in :meth:`buffer`.
        """
        perm = None if like is None else _layout_perm(like)
        key = (tag, tuple(shape), np.dtype(dtype), perm, -1)
        return self._get(key, shape, dtype, like if perm else None)

    def _get(self, key: tuple, shape, dtype, like: np.ndarray | None = None) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype) if like is None else np.empty_like(like, dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
            self._nbytes += buf.nbytes
            if self._nbytes > self.peak_bytes:
                self.peak_bytes = self._nbytes
        else:
            self.hits += 1
        return buf

    # ------------------------------------------------------------------ admin
    def advance(self) -> None:
        """Start the next generation: every ``buffer`` slot becomes reusable."""
        self.generation += 1
        self._counts.clear()

    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return self._nbytes

    def clear(self) -> None:
        """Drop every pooled buffer (e.g. between differently-shaped fits)."""
        self._buffers.clear()
        self._counts.clear()
        self._nbytes = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot (plain ints, JSON-safe) for reports and tests."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "generation": int(self.generation),
            "nbytes": int(self._nbytes),
            "peak_bytes": int(self.peak_bytes),
            "buffers": len(self._buffers),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StepArena(buffers={len(self._buffers)}, nbytes={self._nbytes}, "
            f"hits={self.hits}, misses={self.misses}, generation={self.generation})"
        )
