"""Functional neural-network primitives built on :class:`repro.nn.tensor.Tensor`.

The convolutions are implemented with im2col/col2im so that both the forward
and backward passes reduce to dense matrix multiplications, which keeps the
pure-NumPy substrate fast enough for the experiments in this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray, *, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` of shape ``(B, C)`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Unnormalised class scores.
    targets:
        Integer class indices of shape ``(B,)``.
    reduction:
        Either ``"mean"`` or ``"sum"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError("targets must be a 1-D array matching the logits batch size")
    log_probs = log_softmax(logits, axis=-1)
    batch = np.arange(logits.shape[0])
    picked = log_probs[batch, targets]
    loss = -picked.sum()
    if reduction == "mean":
        loss = loss * (1.0 / logits.shape[0])
    elif reduction != "sum":
        raise ValueError(f"unknown reduction {reduction!r}")
    return loss


def nll_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy of argmax predictions."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())


# --------------------------------------------------------------------------- #
# Normalisation / similarity
# --------------------------------------------------------------------------- #
def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project ``x`` onto the unit hypersphere along ``axis``."""
    norm = (x * x).sum(axis=axis, keepdims=True).clamp_min(eps) ** 0.5
    return x / norm


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` (n, d) and ``b`` (m, d)."""
    a_norm = l2_normalize(a, axis=-1)
    b_norm = l2_normalize(b, axis=-1)
    return a_norm @ b_norm.transpose()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


# --------------------------------------------------------------------------- #
# im2col helpers (1-D)
# --------------------------------------------------------------------------- #
def _im2col_1d(x: np.ndarray, kernel: int, stride: int, dilation: int) -> np.ndarray:
    """Turn ``(B, C, T_padded)`` into ``(B, out_t, C*kernel)`` patches."""
    batch, channels, length = x.shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, span, axis=2)
    windows = windows[:, :, ::stride, ::dilation]  # (B, C, out_t, kernel)
    cols = windows.transpose(0, 2, 1, 3).reshape(batch, out_t, channels * kernel)
    return np.ascontiguousarray(cols)


def _col2im_1d_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    dilation: int,
) -> np.ndarray:
    """Bit-exact scalar reference for :func:`_col2im_1d` (loop over taps)."""
    batch, channels, length = x_shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1
    grad_x = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(batch, out_t, channels, kernel)
    for k in range(kernel):
        offset = k * dilation
        positions = np.arange(out_t) * stride + offset
        np.add.at(grad_x, (slice(None), slice(None), positions), cols[:, :, :, k].transpose(0, 2, 1))
    return grad_x


#: memoized flat scatter indices for the vectorized col2im kernels — shapes
#: repeat every batch, so the index arithmetic is paid once per shape
_COL2IM_INDEX_CACHE: dict[tuple, np.ndarray] = {}
_COL2IM_INDEX_CACHE_MAX = 32


def _cached_scatter_index(key: tuple, build) -> np.ndarray:
    index = _COL2IM_INDEX_CACHE.get(key)
    if index is None:
        while len(_COL2IM_INDEX_CACHE) >= _COL2IM_INDEX_CACHE_MAX:
            # evict the oldest entry only (insertion order), so a working set
            # spanning many conv shapes never drops its hot entries wholesale
            _COL2IM_INDEX_CACHE.pop(next(iter(_COL2IM_INDEX_CACHE)))
        index = _COL2IM_INDEX_CACHE[key] = build()
    return index


def _col2im_1d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    dilation: int,
) -> np.ndarray:
    """Scatter ``(B, out_t, C*kernel)`` gradients back to ``(B, C, T_padded)``.

    One ``np.bincount`` scatter over all kernel taps at once replaces the
    per-tap ``np.add.at`` loop of :func:`_col2im_1d_reference`.  The flatten
    order is tap-major, so overlapping contributions accumulate in exactly
    the reference order and the float64 result is bit-identical to it.
    """
    batch, channels, length = x_shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1

    def build() -> np.ndarray:
        positions = (
            np.arange(kernel)[:, None] * dilation + np.arange(out_t)[None, :] * stride
        ).reshape(-1)
        rows = np.arange(batch * channels)[:, None] * length
        return (rows + positions[None, :]).ravel()

    index = _cached_scatter_index(("1d", *x_shape, kernel, stride, dilation), build)
    taps = cols.reshape(batch, out_t, channels, kernel)
    values = taps.transpose(0, 2, 3, 1).reshape(-1)
    flat = np.bincount(index, weights=values, minlength=batch * channels * length)
    # bincount accumulates in float64; cast back for float32 pipelines
    return flat.reshape(x_shape).astype(cols.dtype, copy=False)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, T)``.
    weight:
        Kernel of shape ``(C_out, C_in, K)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    """
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (B, C, T) input, got shape {x.shape}")
    out_channels, in_channels, kernel = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    x_padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding))) if padding else x.data
    cols = _im2col_1d(x_padded, kernel, stride, dilation)  # (B, out_t, C_in*K)
    w_flat = weight.data.reshape(out_channels, -1)  # (C_out, C_in*K)
    out_data = cols @ w_flat.T  # (B, out_t, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.transpose(0, 2, 1)  # (B, C_out, out_t)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_out = grad.transpose(0, 2, 1)  # (B, out_t, C_out)
        if weight.requires_grad:
            if grad_out.dtype == np.float32 and cols.dtype == np.float32:
                # BLAS sgemm beats c_einsum on the float32 fast path; the
                # float64 reference keeps einsum's bit-exact accumulation
                flat_grad = grad_out.reshape(-1, out_channels)
                grad_w = (flat_grad.T @ cols.reshape(flat_grad.shape[0], -1)).reshape(weight.shape)
            else:
                grad_w = np.einsum("bto,btk->ok", grad_out, cols).reshape(weight.shape)
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1)))
        if x.requires_grad:
            grad_cols = grad_out @ w_flat  # (B, out_t, C_in*K)
            grad_padded = _col2im_1d(grad_cols, x_padded.shape, kernel, stride, dilation)
            if padding:
                grad_padded = grad_padded[:, :, padding:-padding]
            x._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# im2col helpers (2-D)
# --------------------------------------------------------------------------- #
def _im2col_2d(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]) -> np.ndarray:
    """Turn ``(B, C, H, W)`` into ``(B, out_h, out_w, C*kh*kw)`` patches."""
    kh, kw = kernel
    sh, sw = stride
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw]  # (B, C, out_h, out_w, kh, kw)
    batch, channels, out_h, out_w = windows.shape[:4]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h, out_w, channels * kh * kw)
    return np.ascontiguousarray(cols)


def _col2im_2d_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
) -> np.ndarray:
    """Bit-exact scalar reference for :func:`_col2im_2d` (loop over taps)."""
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    grad_x = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            rows = np.arange(out_h) * sh + i
            cols_idx = np.arange(out_w) * sw + j
            grad_x[:, :, rows[:, None], cols_idx[None, :]] += cols[:, :, :, :, i, j].transpose(
                0, 3, 1, 2
            )
    return grad_x


def _col2im_2d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
) -> np.ndarray:
    """Scatter patch gradients back onto the padded input image.

    Single ``np.bincount`` scatter over all ``kh*kw`` taps, replacing the
    nested per-tap Python loops of :func:`_col2im_2d_reference`; tap-major
    flatten order keeps the float64 result bit-identical to the reference.
    """
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1

    def build() -> np.ndarray:
        positions = (
            (np.arange(kh)[:, None, None, None] + np.arange(out_h)[None, None, :, None] * sh)
            * width
            + np.arange(kw)[None, :, None, None]
            + np.arange(out_w)[None, None, None, :] * sw
        ).reshape(-1)
        rows = np.arange(batch * channels)[:, None] * (height * width)
        return (rows + positions[None, :]).ravel()

    index = _cached_scatter_index(("2d", *x_shape, kh, kw, sh, sw), build)
    taps = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    values = taps.transpose(0, 3, 4, 5, 1, 2).reshape(-1)
    flat = np.bincount(index, weights=values, minlength=batch * channels * height * width)
    return flat.reshape(x_shape).astype(cols.dtype, copy=False)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D convolution over ``(B, C_in, H, W)`` input with ``(C_out, C_in, kh, kw)`` kernels."""
    if x.ndim != 4:
        raise ValueError(f"conv2d expects (B, C, H, W) input, got shape {x.shape}")
    stride = (stride, stride) if isinstance(stride, int) else tuple(stride)
    padding = (padding, padding) if isinstance(padding, int) else tuple(padding)
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    ph, pw = padding
    x_padded = (
        np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    )
    cols = _im2col_2d(x_padded, (kh, kw), stride)  # (B, oh, ow, C*kh*kw)
    w_flat = weight.data.reshape(out_channels, -1)
    out_data = cols @ w_flat.T  # (B, oh, ow, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_out = grad.transpose(0, 2, 3, 1)  # (B, oh, ow, C_out)
        if weight.requires_grad:
            if grad_out.dtype == np.float32 and cols.dtype == np.float32:
                flat_grad = grad_out.reshape(-1, out_channels)
                grad_w = (flat_grad.T @ cols.reshape(flat_grad.shape[0], -1)).reshape(weight.shape)
            else:
                grad_w = np.einsum("bhwo,bhwk->ok", grad_out, cols).reshape(weight.shape)
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1, 2)))
        if x.requires_grad:
            grad_cols = grad_out @ w_flat
            grad_padded = _col2im_2d(grad_cols, x_padded.shape, (kh, kw), stride)
            if ph or pw:
                grad_padded = grad_padded[
                    :, :, ph : grad_padded.shape[2] - ph or None, pw : grad_padded.shape[3] - pw or None
                ]
            x._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over square windows of a ``(B, C, H, W)`` tensor."""
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (B, C, oh, ow, k, k)
    flat = windows.reshape(batch, channels, out_h, out_w, -1)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1).squeeze(-1)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        k_rows, k_cols = np.unravel_index(argmax, (kernel_size, kernel_size))
        b_idx, c_idx, oh_idx, ow_idx = np.indices(argmax.shape)
        rows = oh_idx * stride + k_rows
        cols = ow_idx * stride + k_cols
        np.add.at(grad_x, (b_idx, c_idx, rows, cols), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def _avg_pool1d_data(data: np.ndarray, output_size: int) -> np.ndarray:
    """Adaptive 1-D average pooling on a raw ``(B, C, T)`` array."""
    batch, channels, length = data.shape
    if output_size == 1:
        return data.sum(axis=2, keepdims=True) * (1.0 / length)
    edges = np.linspace(0, length, output_size + 1).astype(int)
    if length % output_size == 0:
        step = length // output_size
        return data.reshape(batch, channels, output_size, step).sum(axis=3) * (1.0 / step)
    out = np.empty((batch, channels, output_size), dtype=data.dtype)
    for index, (start, stop) in enumerate(zip(edges[:-1], edges[1:])):
        out[:, :, index] = data[:, :, start:stop].sum(axis=2) * (1.0 / (stop - start))
    return out


def _avg_pool2d_data(data: np.ndarray, output_size: int) -> np.ndarray:
    """Adaptive 2-D average pooling on a raw ``(B, C, H, W)`` array."""
    batch, channels, height, width = data.shape
    if output_size == 1:
        return data.sum(axis=(2, 3), keepdims=True) * (1.0 / (height * width))
    h_edges = np.linspace(0, height, output_size + 1).astype(int)
    w_edges = np.linspace(0, width, output_size + 1).astype(int)
    if height % output_size == 0 and width % output_size == 0:
        sh, sw = height // output_size, width // output_size
        # summing the in-bin row axis first, then the in-bin column axis,
        # reproduces the slice path's sum(axis=(2, 3)) accumulation order
        binned = data.reshape(batch, channels, output_size, sh, output_size, sw)
        return binned.sum(axis=3).sum(axis=4) * (1.0 / (sh * sw))
    out = np.empty((batch, channels, output_size, output_size), dtype=data.dtype)
    for i, (h0, h1) in enumerate(zip(h_edges[:-1], h_edges[1:])):
        for j, (w0, w1) in enumerate(zip(w_edges[:-1], w_edges[1:])):
            out[:, :, i, j] = data[:, :, h0:h1, w0:w1].sum(axis=(2, 3)) * (
                1.0 / ((h1 - h0) * (w1 - w0))
            )
    return out


def adaptive_avg_pool1d(x: Tensor, output_size: int = 1) -> Tensor:
    """Average pool a ``(B, C, T)`` tensor down to ``(B, C, output_size)``.

    A single autograd node instead of the former per-bin slice/concat graph:
    equal bins reduce via one reshape-sum (bit-identical to the slice path),
    unequal bins fall back to per-bin NumPy sums (same arithmetic, still no
    per-bin graph nodes), and the backward is one uniform scatter.
    """
    if output_size == 1:
        return x.mean(axis=2, keepdims=True)
    counts = np.diff(np.linspace(0, x.shape[2], output_size + 1).astype(int))
    out_data = _avg_pool1d_data(x.data, output_size)

    def backward(grad):
        if x.requires_grad:
            scale = (1.0 / counts).astype(grad.dtype, copy=False)
            x._accumulate(np.repeat(grad * scale, counts, axis=2))

    return Tensor._make(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Average pool a ``(B, C, H, W)`` tensor down to ``(B, C, s, s)``.

    Vectorized like :func:`adaptive_avg_pool1d`: one autograd node, equal
    bins via a reshape-sum (bit-identical to the former nested h/w slice
    loops), unequal bins via per-bin NumPy sums.
    """
    if output_size == 1:
        return x.mean(axis=(2, 3), keepdims=True)
    h_counts = np.diff(np.linspace(0, x.shape[2], output_size + 1).astype(int))
    w_counts = np.diff(np.linspace(0, x.shape[3], output_size + 1).astype(int))
    out_data = _avg_pool2d_data(x.data, output_size)

    def backward(grad):
        if x.requires_grad:
            scale = (1.0 / (h_counts[:, None] * w_counts[None, :])).astype(grad.dtype, copy=False)
            spread = np.repeat(grad * scale, h_counts, axis=2)
            x._accumulate(np.repeat(spread, w_counts, axis=3))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)
