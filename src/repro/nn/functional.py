"""Functional neural-network primitives built on :class:`repro.nn.tensor.Tensor`.

The convolutions are implemented with im2col/col2im so that both the forward
and backward passes reduce to dense matrix multiplications, which keeps the
pure-NumPy substrate fast enough for the experiments in this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.nn.arena import active_arena, result_template
from repro.nn.tensor import Tensor, _unbroadcast, get_default_dtype


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray, *, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` of shape ``(B, C)`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Unnormalised class scores.
    targets:
        Integer class indices of shape ``(B,)``.
    reduction:
        Either ``"mean"`` or ``"sum"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError("targets must be a 1-D array matching the logits batch size")
    log_probs = log_softmax(logits, axis=-1)
    batch = np.arange(logits.shape[0])
    picked = log_probs[batch, targets]
    loss = -picked.sum()
    if reduction == "mean":
        loss = loss * (1.0 / logits.shape[0])
    elif reduction != "sum":
        raise ValueError(f"unknown reduction {reduction!r}")
    return loss


def nll_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy of argmax predictions."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())


# --------------------------------------------------------------------------- #
# Normalisation / similarity
# --------------------------------------------------------------------------- #
def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project ``x`` onto the unit hypersphere along ``axis``."""
    norm = (x * x).sum(axis=axis, keepdims=True).clamp_min(eps) ** 0.5
    return x / norm


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` (n, d) and ``b`` (m, d)."""
    a_norm = l2_normalize(a, axis=-1)
    b_norm = l2_normalize(b, axis=-1)
    return a_norm @ b_norm.transpose()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


# --------------------------------------------------------------------------- #
# im2col helpers (1-D)
# --------------------------------------------------------------------------- #
def _im2col_1d(
    x: np.ndarray, kernel: int, stride: int, dilation: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Turn ``(B, C, T_padded)`` into ``(B, out_t, C*kernel)`` patches.

    ``out`` optionally receives the patch matrix (an arena buffer of shape
    ``(B, out_t, C*kernel)``); the copy into it materialises the identical
    element order the ``ascontiguousarray`` path produces.
    """
    batch, channels, length = x.shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1
    if out is None:
        out = np.empty((batch, out_t, channels * kernel), dtype=x.dtype)
    # fill tap by tap: each tap is one long strided slice of x, so the copy
    # runs K large memmoves instead of one gather with a K-element inner
    # loop (3-4x faster for the K=3 trunk convs); a copy is a copy — the
    # element values (and the C-contiguous patch layout) are identical to
    # the old transpose-gather
    taps = out.reshape(batch, out_t, channels, kernel)
    end = (out_t - 1) * stride + 1
    for k in range(kernel):
        offset = k * dilation
        taps[:, :, :, k] = x[:, :, offset : offset + end : stride].transpose(0, 2, 1)
    return out


def _col2im_1d_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    dilation: int,
) -> np.ndarray:
    """Bit-exact scalar reference for :func:`_col2im_1d` (loop over taps)."""
    batch, channels, length = x_shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1
    grad_x = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(batch, out_t, channels, kernel)
    for k in range(kernel):
        offset = k * dilation
        positions = np.arange(out_t) * stride + offset
        np.add.at(grad_x, (slice(None), slice(None), positions), cols[:, :, :, k].transpose(0, 2, 1))
    return grad_x


#: memoized flat scatter indices for the vectorized col2im kernels — shapes
#: repeat every batch, so the index arithmetic is paid once per shape
_COL2IM_INDEX_CACHE: dict[tuple, np.ndarray] = {}
_COL2IM_INDEX_CACHE_MAX = 32


def _cached_scatter_index(key: tuple, build) -> np.ndarray:
    index = _COL2IM_INDEX_CACHE.get(key)
    if index is None:
        while len(_COL2IM_INDEX_CACHE) >= _COL2IM_INDEX_CACHE_MAX:
            # evict the oldest entry only (insertion order), so a working set
            # spanning many conv shapes never drops its hot entries wholesale
            _COL2IM_INDEX_CACHE.pop(next(iter(_COL2IM_INDEX_CACHE)))
        index = _COL2IM_INDEX_CACHE[key] = build()
    return index


def _col2im_1d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    dilation: int,
) -> np.ndarray:
    """Scatter ``(B, out_t, C*kernel)`` gradients back to ``(B, C, T_padded)``.

    float64 keeps the documented ``np.bincount`` scatter over all kernel taps
    at once (tap-major flatten order, bit-identical to
    :func:`_col2im_1d_reference`).  float32 takes a native per-tap strided-add
    path: positions within one tap are unique, so a basic-slicing ``+=`` per
    tap accumulates in the same tap order the reference does — bit-identical
    to the reference *in float32*, with no full-size float64 round trip (the
    old path accumulated in float64 and cast back every backward).
    """
    batch, channels, length = x_shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1

    if cols.dtype != np.float64:
        arena = active_arena()
        if arena is not None:
            grad_x = arena.scratch("col2im1d", x_shape, cols.dtype)
            grad_x[...] = 0
        else:
            grad_x = np.zeros(x_shape, dtype=cols.dtype)
        taps = cols.reshape(batch, out_t, channels, kernel)
        end = (out_t - 1) * stride + 1
        for k in range(kernel):
            offset = k * dilation
            grad_x[:, :, offset : offset + end : stride] += taps[:, :, :, k].transpose(0, 2, 1)
        return grad_x

    def build() -> np.ndarray:
        positions = (
            np.arange(kernel)[:, None] * dilation + np.arange(out_t)[None, :] * stride
        ).reshape(-1)
        rows = np.arange(batch * channels)[:, None] * length
        return (rows + positions[None, :]).ravel()

    index = _cached_scatter_index(("1d", *x_shape, kernel, stride, dilation), build)
    taps = cols.reshape(batch, out_t, channels, kernel)
    values = taps.transpose(0, 2, 3, 1).reshape(-1)
    flat = np.bincount(index, weights=values, minlength=batch * channels * length)
    return flat.reshape(x_shape).astype(cols.dtype, copy=False)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    relu: bool = False,
) -> Tensor:
    """1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, T)``.
    weight:
        Kernel of shape ``(C_out, C_in, K)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    relu:
        Fuse a ReLU into this node.  Bit-identical to ``conv1d(...).relu()``:
        the forward applies the same ``out * (out > 0)`` product and the
        backward masks the incoming gradient in the same layout the
        decomposed relu node would before the convolution VJPs run.

    When a :class:`~repro.nn.arena.StepArena` is active, the padded input,
    patch matrix, output and relu mask all come from pooled buffers and the
    matmuls write through ``out=`` — the same arithmetic, no steady-state
    allocations.
    """
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (B, C, T) input, got shape {x.shape}")
    out_channels, in_channels, kernel = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    arena = active_arena()
    batch = x.shape[0]
    if padding:
        if arena is not None:
            padded_shape = (batch, in_channels, x.shape[2] + 2 * padding)
            x_padded = arena.scratch("conv1d.pad", padded_shape, x.data.dtype)
            x_padded[...] = 0
            x_padded[:, :, padding : padding + x.shape[2]] = x.data
        else:
            x_padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding)))
    else:
        x_padded = x.data
    span = (kernel - 1) * dilation + 1
    out_t = (x_padded.shape[2] - span) // stride + 1
    w_flat = weight.data.reshape(out_channels, -1)  # (C_out, C_in*K)
    if arena is not None:
        cols = _im2col_1d(
            x_padded,
            kernel,
            stride,
            dilation,
            out=arena.buffer("conv1d.cols", (batch, out_t, in_channels * kernel), x_padded.dtype),
        )
    else:
        cols = _im2col_1d(x_padded, kernel, stride, dilation)  # (B, out_t, C_in*K)
    if arena is not None and cols.dtype == w_flat.dtype:
        out_data = np.matmul(
            cols, w_flat.T, out=arena.buffer("conv1d.out", (batch, out_t, out_channels), cols.dtype)
        )
    else:
        out_data = cols @ w_flat.T  # (B, out_t, C_out)
    if bias is not None:
        if bias.data.dtype == out_data.dtype:
            out_data += bias.data
        else:
            out_data = out_data + bias.data
    mask = None
    if relu:
        # mask kept in the pre-transpose (B, out_t, C_out) layout; the
        # elementwise product is layout-independent, so this matches the
        # decomposed relu applied after the transpose bit for bit
        if arena is not None:
            mask = np.greater(out_data, 0, out=arena.buffer("conv1d.mask", out_data.shape, np.bool_))
        else:
            mask = out_data > 0
        np.multiply(out_data, mask, out=out_data)
    out_view = out_data.transpose(0, 2, 1)  # (B, C_out, out_t)

    parents = [x, weight] + ([bias] if bias is not None else [])
    x_padded_shape = x_padded.shape

    def backward(grad):
        pool = active_arena()
        if mask is not None:
            mask_t = mask.transpose(0, 2, 1)
            if pool is not None and grad.shape == mask_t.shape:
                grad = np.multiply(
                    grad,
                    mask_t,
                    out=pool.scratch(
                        "conv1d.gmask",
                        grad.shape,
                        grad.dtype,
                        like=result_template(grad.shape, grad, mask_t),
                    ),
                )
            else:
                grad = grad * mask_t
        grad_out = grad.transpose(0, 2, 1)  # (B, out_t, C_out)
        if weight.requires_grad:
            if grad_out.dtype == np.float32 and cols.dtype == np.float32:
                # BLAS sgemm beats c_einsum on the float32 fast path; the
                # float64 reference keeps einsum's bit-exact accumulation
                rows = grad_out.shape[0] * grad_out.shape[1]
                if pool is not None:
                    flat_grad = pool.scratch("conv1d.gflat", (rows, out_channels), grad_out.dtype)
                    np.copyto(flat_grad.reshape(grad_out.shape), grad_out)
                else:
                    flat_grad = grad_out.reshape(rows, out_channels)
                cols_flat = cols.reshape(rows, -1)
                if pool is not None:
                    grad_w = np.matmul(
                        flat_grad.T,
                        cols_flat,
                        out=pool.scratch(
                            "conv1d.gw", (out_channels, cols_flat.shape[1]), grad_out.dtype
                        ),
                    )
                else:
                    grad_w = flat_grad.T @ cols_flat
                weight._accumulate(grad_w.reshape(weight.shape))
            else:
                grad_w = np.einsum("bto,btk->ok", grad_out, cols).reshape(weight.shape)
                weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1)))
        if x.requires_grad:
            if pool is not None and grad_out.dtype == w_flat.dtype:
                grad_cols = np.matmul(
                    grad_out,
                    w_flat,
                    out=pool.scratch(
                        "conv1d.gcols", (batch, out_t, in_channels * kernel), grad_out.dtype
                    ),
                )
            else:
                grad_cols = grad_out @ w_flat  # (B, out_t, C_in*K)
            grad_padded = _col2im_1d(grad_cols, x_padded_shape, kernel, stride, dilation)
            if padding:
                grad_padded = grad_padded[:, :, padding:-padding]
            x._accumulate(grad_padded)

    return Tensor._make(out_view, parents, backward)


# --------------------------------------------------------------------------- #
# im2col helpers (2-D)
# --------------------------------------------------------------------------- #
def _im2col_2d(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Turn ``(B, C, H, W)`` into ``(B, out_h, out_w, C*kh*kw)`` patches.

    ``out`` optionally receives the patch matrix (see :func:`_im2col_1d`).
    """
    kh, kw = kernel
    sh, sw = stride
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw]  # (B, C, out_h, out_w, kh, kw)
    batch, channels, out_h, out_w = windows.shape[:4]
    if out is not None:
        np.copyto(
            out.reshape(batch, out_h, out_w, channels, kh, kw),
            windows.transpose(0, 2, 3, 1, 4, 5),
        )
        return out
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h, out_w, channels * kh * kw)
    return np.ascontiguousarray(cols)


def _col2im_2d_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
) -> np.ndarray:
    """Bit-exact scalar reference for :func:`_col2im_2d` (loop over taps)."""
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    grad_x = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            rows = np.arange(out_h) * sh + i
            cols_idx = np.arange(out_w) * sw + j
            grad_x[:, :, rows[:, None], cols_idx[None, :]] += cols[:, :, :, :, i, j].transpose(
                0, 3, 1, 2
            )
    return grad_x


def _col2im_2d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
) -> np.ndarray:
    """Scatter patch gradients back onto the padded input image.

    float64: single ``np.bincount`` scatter over all ``kh*kw`` taps
    (tap-major flatten order, bit-identical to
    :func:`_col2im_2d_reference`).  float32: native per-tap strided adds in
    the reference's ``(i, j)`` tap order — bit-identical to the reference in
    float32 and free of the full-size float64 accumulate + cast.
    """
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1

    if cols.dtype != np.float64:
        arena = active_arena()
        if arena is not None:
            grad_x = arena.scratch("col2im2d", x_shape, cols.dtype)
            grad_x[...] = 0
        else:
            grad_x = np.zeros(x_shape, dtype=cols.dtype)
        taps = cols.reshape(batch, out_h, out_w, channels, kh, kw)
        end_h = (out_h - 1) * sh + 1
        end_w = (out_w - 1) * sw + 1
        for i in range(kh):
            for j in range(kw):
                grad_x[:, :, i : i + end_h : sh, j : j + end_w : sw] += taps[
                    :, :, :, :, i, j
                ].transpose(0, 3, 1, 2)
        return grad_x

    def build() -> np.ndarray:
        positions = (
            (np.arange(kh)[:, None, None, None] + np.arange(out_h)[None, None, :, None] * sh)
            * width
            + np.arange(kw)[None, :, None, None]
            + np.arange(out_w)[None, None, None, :] * sw
        ).reshape(-1)
        rows = np.arange(batch * channels)[:, None] * (height * width)
        return (rows + positions[None, :]).ravel()

    index = _cached_scatter_index(("2d", *x_shape, kh, kw, sh, sw), build)
    taps = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    values = taps.transpose(0, 3, 4, 5, 1, 2).reshape(-1)
    flat = np.bincount(index, weights=values, minlength=batch * channels * height * width)
    return flat.reshape(x_shape).astype(cols.dtype, copy=False)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
    relu: bool = False,
) -> Tensor:
    """2-D convolution over ``(B, C_in, H, W)`` input with ``(C_out, C_in, kh, kw)`` kernels.

    ``relu`` fuses a ReLU into this node and an active
    :class:`~repro.nn.arena.StepArena` pools every intermediate, exactly as
    in :func:`conv1d`.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects (B, C, H, W) input, got shape {x.shape}")
    stride = (stride, stride) if isinstance(stride, int) else tuple(stride)
    padding = (padding, padding) if isinstance(padding, int) else tuple(padding)
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    ph, pw = padding
    arena = active_arena()
    batch = x.shape[0]
    if ph or pw:
        if arena is not None:
            padded_shape = (batch, in_channels, x.shape[2] + 2 * ph, x.shape[3] + 2 * pw)
            x_padded = arena.scratch("conv2d.pad", padded_shape, x.data.dtype)
            x_padded[...] = 0
            x_padded[:, :, ph : ph + x.shape[2], pw : pw + x.shape[3]] = x.data
        else:
            x_padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        x_padded = x.data
    sh, sw = stride
    out_h = (x_padded.shape[2] - kh) // sh + 1
    out_w = (x_padded.shape[3] - kw) // sw + 1
    w_flat = weight.data.reshape(out_channels, -1)
    patch = in_channels * kh * kw
    if arena is not None:
        cols = _im2col_2d(
            x_padded,
            (kh, kw),
            stride,
            out=arena.buffer("conv2d.cols", (batch, out_h, out_w, patch), x_padded.dtype),
        )
    else:
        cols = _im2col_2d(x_padded, (kh, kw), stride)  # (B, oh, ow, C*kh*kw)
    if arena is not None and cols.dtype == w_flat.dtype:
        out_data = np.matmul(
            cols,
            w_flat.T,
            out=arena.buffer("conv2d.out", (batch, out_h, out_w, out_channels), cols.dtype),
        )
    else:
        out_data = cols @ w_flat.T  # (B, oh, ow, C_out)
    if bias is not None:
        if bias.data.dtype == out_data.dtype:
            out_data += bias.data
        else:
            out_data = out_data + bias.data
    mask = None
    if relu:
        if arena is not None:
            mask = np.greater(out_data, 0, out=arena.buffer("conv2d.mask", out_data.shape, np.bool_))
        else:
            mask = out_data > 0
        np.multiply(out_data, mask, out=out_data)
    out_view = out_data.transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])
    x_padded_shape = x_padded.shape

    def backward(grad):
        pool = active_arena()
        if mask is not None:
            mask_t = mask.transpose(0, 3, 1, 2)
            if pool is not None and grad.shape == mask_t.shape:
                grad = np.multiply(
                    grad,
                    mask_t,
                    out=pool.scratch(
                        "conv2d.gmask",
                        grad.shape,
                        grad.dtype,
                        like=result_template(grad.shape, grad, mask_t),
                    ),
                )
            else:
                grad = grad * mask_t
        grad_out = grad.transpose(0, 2, 3, 1)  # (B, oh, ow, C_out)
        if weight.requires_grad:
            if grad_out.dtype == np.float32 and cols.dtype == np.float32:
                rows = grad_out.shape[0] * grad_out.shape[1] * grad_out.shape[2]
                if pool is not None:
                    flat_grad = pool.scratch("conv2d.gflat", (rows, out_channels), grad_out.dtype)
                    np.copyto(flat_grad.reshape(grad_out.shape), grad_out)
                else:
                    flat_grad = grad_out.reshape(rows, out_channels)
                cols_flat = cols.reshape(rows, -1)
                if pool is not None:
                    grad_w = np.matmul(
                        flat_grad.T,
                        cols_flat,
                        out=pool.scratch(
                            "conv2d.gw", (out_channels, cols_flat.shape[1]), grad_out.dtype
                        ),
                    )
                else:
                    grad_w = flat_grad.T @ cols_flat
                weight._accumulate(grad_w.reshape(weight.shape))
            else:
                grad_w = np.einsum("bhwo,bhwk->ok", grad_out, cols).reshape(weight.shape)
                weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1, 2)))
        if x.requires_grad:
            if pool is not None and grad_out.dtype == w_flat.dtype:
                grad_cols = np.matmul(
                    grad_out,
                    w_flat,
                    out=pool.scratch(
                        "conv2d.gcols", (batch, out_h, out_w, patch), grad_out.dtype
                    ),
                )
            else:
                grad_cols = grad_out @ w_flat
            grad_padded = _col2im_2d(grad_cols, x_padded_shape, (kh, kw), stride)
            if ph or pw:
                grad_padded = grad_padded[
                    :, :, ph : grad_padded.shape[2] - ph or None, pw : grad_padded.shape[3] - pw or None
                ]
            x._accumulate(grad_padded)

    return Tensor._make(out_view, parents, backward)


# --------------------------------------------------------------------------- #
# Batch normalisation (fused training node)
# --------------------------------------------------------------------------- #
def batch_norm_train(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    *,
    axes: tuple[int, ...],
    shape: tuple[int, ...],
    eps: float,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused training-mode batch norm: normalise + affine as one autograd node.

    Bit-identical — outputs *and* accumulated gradients — to the decomposed
    graph the ``BatchNorm*d`` layers used to build::

        mean = x.mean(axes, keepdims=True)
        var = x.var(axes, keepdims=True)
        (x - mean) / ((var + eps) ** 0.5) * w.reshape(shape) + b.reshape(shape)

    The forward replays the same expression sequence (including the
    reciprocal-count and ``eps`` scalars coerced to the ambient default
    dtype, exactly as ``Tensor._coerce`` would).  The backward replays the
    decomposed graph's DFS execution order: ``x`` receives its four
    contributions in the same sequence (normalised branch, its mean
    reduction, the variance square node's doubled product, the variance mean
    reduction), the square node's gradient is formed as ``p + p`` like the
    double accumulation of ``centered * centered``, and every reduction goes
    through the same sequential per-axis sums as ``_unbroadcast``.  With an
    active :class:`~repro.nn.arena.StepArena` the full-size intermediates
    are pooled; only the tiny per-channel statistics allocate.

    Returns ``(out, mean, var)`` with the batch statistics as raw keepdims
    arrays for the layer's running-average update.
    """
    count = 1
    for axis in axes:
        count *= x.shape[axis]
    c_arr = np.asarray(1.0 / count, dtype=get_default_dtype())
    eps_arr = np.asarray(eps, dtype=get_default_dtype())
    xd = x.data
    arena = active_arena()
    mean = xd.sum(axis=axes, keepdims=True) * c_arr
    w_r = weight.data.reshape(shape)
    b_r = bias.data.reshape(shape)
    pooled = (
        arena is not None
        and mean.dtype == xd.dtype
        and w_r.dtype == xd.dtype
        and b_r.dtype == xd.dtype
    )
    if pooled:
        # buffers take the layout the allocate-fresh expressions would: every
        # node here follows ``xd`` (``mean`` / ``std`` / ``w_r`` broadcast and
        # so don't constrain the result layout), and reductions over these
        # arrays must iterate exactly like the reference's
        like = result_template(xd.shape, xd)
        centered = np.subtract(
            xd, mean, out=arena.buffer("bn.centered", xd.shape, xd.dtype, like=like)
        )
        square = np.multiply(
            centered, centered, out=arena.scratch("bn.sq", xd.shape, xd.dtype, like=centered)
        )
    else:
        centered = xd - mean
        square = centered * centered
    var = square.sum(axis=axes, keepdims=True) * c_arr
    a3 = var + eps_arr
    std = a3**0.5
    if pooled:
        normalised = np.divide(
            centered, std, out=arena.buffer("bn.norm", xd.shape, xd.dtype, like=centered)
        )
        out_data = np.multiply(
            normalised, w_r, out=arena.buffer("bn.out", xd.shape, xd.dtype, like=normalised)
        )
        np.add(out_data, b_r, out=out_data)
    else:
        normalised = centered / std
        out_data = normalised * w_r + b_r

    def backward(g):
        pool = active_arena()
        # the pooled backward is layout-faithful only for a C-contiguous
        # incoming gradient: the reference's ``broadcast_to(...).astype``
        # addends are C, so every fresh intermediate below lands in C order
        # exactly when ``g`` starts there (mixed-layout products fall back to
        # C).  A permuted ``g`` takes the allocate-fresh reference branch.
        use_pool = (
            pool is not None
            and g.dtype == xd.dtype
            and mean.dtype == xd.dtype
            and g.flags.c_contiguous
        )
        std2 = std**2
        if x.requires_grad:
            if use_pool:
                gd = np.multiply(g, w_r, out=pool.scratch("bn.gd", xd.shape, g.dtype))
                gx = np.divide(gd, std, out=pool.scratch("bn.gx", xd.shape, g.dtype))
            else:
                gd = g * w_r
                gx = gd / std
            # contribution 2: through the normalised branch's mean node
            gs1 = -_unbroadcast(gx, mean.shape) * c_arr
            if use_pool:
                np.add(gx, gs1, out=gx)
            else:
                gx = gx + np.broadcast_to(gs1, xd.shape).astype(xd.dtype)
            # variance branch: divide node -> pow node -> mean -> square
            if use_pool:
                tmp = np.negative(gd, out=pool.scratch("bn.tmp", xd.shape, g.dtype))
                np.multiply(tmp, centered, out=tmp)
                np.divide(tmp, std2, out=tmp)
            else:
                tmp = -gd * centered / std2
            gp1 = _unbroadcast(tmp, mean.shape)
            ga3 = gp1 * 0.5 * a3 ** (-0.5)
            gs2 = ga3 * c_arr
            # contribution 3: the square node accumulates its product twice
            if use_pool:
                prod = np.multiply(gs2, centered, out=pool.scratch("bn.p", xd.shape, g.dtype))
                np.add(prod, prod, out=prod)
                np.add(gx, prod, out=gx)
                gs1b = -_unbroadcast(prod, mean.shape) * c_arr
                np.add(gx, gs1b, out=gx)
            else:
                spread = np.broadcast_to(gs2, xd.shape).astype(xd.dtype)
                prod = spread * centered
                ga1 = prod + prod
                gx = gx + ga1
                gs1b = -_unbroadcast(ga1, mean.shape) * c_arr
                gx = gx + np.broadcast_to(gs1b, xd.shape).astype(xd.dtype)
            x._accumulate(gx)
        if weight.requires_grad:
            if use_pool:
                tw = np.multiply(g, normalised, out=pool.scratch("bn.tmp", xd.shape, g.dtype))
            else:
                tw = g * normalised
            weight._accumulate(_unbroadcast(tw, mean.shape).reshape(weight.shape))
        if bias.requires_grad:
            bias._accumulate(_unbroadcast(g, mean.shape).reshape(bias.shape))

    out = Tensor._make(out_data, (x, weight, bias), backward)
    return out, mean, var


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over square windows of a ``(B, C, H, W)`` tensor."""
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (B, C, oh, ow, k, k)
    flat = windows.reshape(batch, channels, out_h, out_w, -1)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1).squeeze(-1)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        k_rows, k_cols = np.unravel_index(argmax, (kernel_size, kernel_size))
        b_idx, c_idx, oh_idx, ow_idx = np.indices(argmax.shape)
        rows = oh_idx * stride + k_rows
        cols = ow_idx * stride + k_cols
        np.add.at(grad_x, (b_idx, c_idx, rows, cols), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def _avg_pool1d_data(data: np.ndarray, output_size: int) -> np.ndarray:
    """Adaptive 1-D average pooling on a raw ``(B, C, T)`` array."""
    batch, channels, length = data.shape
    if output_size == 1:
        return data.sum(axis=2, keepdims=True) * (1.0 / length)
    edges = np.linspace(0, length, output_size + 1).astype(int)
    if length % output_size == 0:
        step = length // output_size
        return data.reshape(batch, channels, output_size, step).sum(axis=3) * (1.0 / step)
    out = np.empty((batch, channels, output_size), dtype=data.dtype)
    for index, (start, stop) in enumerate(zip(edges[:-1], edges[1:])):
        out[:, :, index] = data[:, :, start:stop].sum(axis=2) * (1.0 / (stop - start))
    return out


def _avg_pool2d_data(data: np.ndarray, output_size: int) -> np.ndarray:
    """Adaptive 2-D average pooling on a raw ``(B, C, H, W)`` array."""
    batch, channels, height, width = data.shape
    if output_size == 1:
        return data.sum(axis=(2, 3), keepdims=True) * (1.0 / (height * width))
    h_edges = np.linspace(0, height, output_size + 1).astype(int)
    w_edges = np.linspace(0, width, output_size + 1).astype(int)
    if height % output_size == 0 and width % output_size == 0:
        sh, sw = height // output_size, width // output_size
        # summing the in-bin row axis first, then the in-bin column axis,
        # reproduces the slice path's sum(axis=(2, 3)) accumulation order
        binned = data.reshape(batch, channels, output_size, sh, output_size, sw)
        return binned.sum(axis=3).sum(axis=4) * (1.0 / (sh * sw))
    out = np.empty((batch, channels, output_size, output_size), dtype=data.dtype)
    for i, (h0, h1) in enumerate(zip(h_edges[:-1], h_edges[1:])):
        for j, (w0, w1) in enumerate(zip(w_edges[:-1], w_edges[1:])):
            out[:, :, i, j] = data[:, :, h0:h1, w0:w1].sum(axis=(2, 3)) * (
                1.0 / ((h1 - h0) * (w1 - w0))
            )
    return out


def adaptive_avg_pool1d(x: Tensor, output_size: int = 1) -> Tensor:
    """Average pool a ``(B, C, T)`` tensor down to ``(B, C, output_size)``.

    A single autograd node instead of the former per-bin slice/concat graph:
    equal bins reduce via one reshape-sum (bit-identical to the slice path),
    unequal bins fall back to per-bin NumPy sums (same arithmetic, still no
    per-bin graph nodes), and the backward is one uniform scatter.
    """
    if output_size == 1:
        return x.mean(axis=2, keepdims=True)
    counts = np.diff(np.linspace(0, x.shape[2], output_size + 1).astype(int))
    out_data = _avg_pool1d_data(x.data, output_size)

    def backward(grad):
        if x.requires_grad:
            scale = (1.0 / counts).astype(grad.dtype, copy=False)
            x._accumulate(np.repeat(grad * scale, counts, axis=2))

    return Tensor._make(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Average pool a ``(B, C, H, W)`` tensor down to ``(B, C, s, s)``.

    Vectorized like :func:`adaptive_avg_pool1d`: one autograd node, equal
    bins via a reshape-sum (bit-identical to the former nested h/w slice
    loops), unequal bins via per-bin NumPy sums.
    """
    if output_size == 1:
        return x.mean(axis=(2, 3), keepdims=True)
    h_counts = np.diff(np.linspace(0, x.shape[2], output_size + 1).astype(int))
    w_counts = np.diff(np.linspace(0, x.shape[3], output_size + 1).astype(int))
    out_data = _avg_pool2d_data(x.data, output_size)

    def backward(grad):
        if x.requires_grad:
            scale = (1.0 / (h_counts[:, None] * w_counts[None, :])).astype(grad.dtype, copy=False)
            spread = np.repeat(grad * scale, h_counts, axis=2)
            x._accumulate(np.repeat(spread, w_counts, axis=3))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)
