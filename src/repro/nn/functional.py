"""Functional neural-network primitives built on :class:`repro.nn.tensor.Tensor`.

The convolutions are implemented with im2col/col2im so that both the forward
and backward passes reduce to dense matrix multiplications, which keeps the
pure-NumPy substrate fast enough for the experiments in this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray, *, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` of shape ``(B, C)`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Unnormalised class scores.
    targets:
        Integer class indices of shape ``(B,)``.
    reduction:
        Either ``"mean"`` or ``"sum"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError("targets must be a 1-D array matching the logits batch size")
    log_probs = log_softmax(logits, axis=-1)
    batch = np.arange(logits.shape[0])
    picked = log_probs[batch, targets]
    loss = -picked.sum()
    if reduction == "mean":
        loss = loss * (1.0 / logits.shape[0])
    elif reduction != "sum":
        raise ValueError(f"unknown reduction {reduction!r}")
    return loss


def nll_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy of argmax predictions."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())


# --------------------------------------------------------------------------- #
# Normalisation / similarity
# --------------------------------------------------------------------------- #
def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project ``x`` onto the unit hypersphere along ``axis``."""
    norm = (x * x).sum(axis=axis, keepdims=True).clamp_min(eps) ** 0.5
    return x / norm


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` (n, d) and ``b`` (m, d)."""
    a_norm = l2_normalize(a, axis=-1)
    b_norm = l2_normalize(b, axis=-1)
    return a_norm @ b_norm.transpose()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=np.float64))
    diff = prediction - target
    return (diff * diff).mean()


# --------------------------------------------------------------------------- #
# im2col helpers (1-D)
# --------------------------------------------------------------------------- #
def _im2col_1d(x: np.ndarray, kernel: int, stride: int, dilation: int) -> np.ndarray:
    """Turn ``(B, C, T_padded)`` into ``(B, out_t, C*kernel)`` patches."""
    batch, channels, length = x.shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, span, axis=2)
    windows = windows[:, :, ::stride, ::dilation]  # (B, C, out_t, kernel)
    cols = windows.transpose(0, 2, 1, 3).reshape(batch, out_t, channels * kernel)
    return np.ascontiguousarray(cols)


def _col2im_1d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int],
    kernel: int,
    stride: int,
    dilation: int,
) -> np.ndarray:
    """Scatter ``(B, out_t, C*kernel)`` gradients back to ``(B, C, T_padded)``."""
    batch, channels, length = x_shape
    span = (kernel - 1) * dilation + 1
    out_t = (length - span) // stride + 1
    grad_x = np.zeros(x_shape, dtype=np.float64)
    cols = cols.reshape(batch, out_t, channels, kernel)
    for k in range(kernel):
        offset = k * dilation
        positions = np.arange(out_t) * stride + offset
        np.add.at(grad_x, (slice(None), slice(None), positions), cols[:, :, :, k].transpose(0, 2, 1))
    return grad_x


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, T)``.
    weight:
        Kernel of shape ``(C_out, C_in, K)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    """
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (B, C, T) input, got shape {x.shape}")
    out_channels, in_channels, kernel = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    x_padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding))) if padding else x.data
    cols = _im2col_1d(x_padded, kernel, stride, dilation)  # (B, out_t, C_in*K)
    w_flat = weight.data.reshape(out_channels, -1)  # (C_out, C_in*K)
    out_data = cols @ w_flat.T  # (B, out_t, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.transpose(0, 2, 1)  # (B, C_out, out_t)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_out = grad.transpose(0, 2, 1)  # (B, out_t, C_out)
        if weight.requires_grad:
            grad_w = np.einsum("bto,btk->ok", grad_out, cols).reshape(weight.shape)
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1)))
        if x.requires_grad:
            grad_cols = grad_out @ w_flat  # (B, out_t, C_in*K)
            grad_padded = _col2im_1d(grad_cols, x_padded.shape, kernel, stride, dilation)
            if padding:
                grad_padded = grad_padded[:, :, padding:-padding]
            x._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# im2col helpers (2-D)
# --------------------------------------------------------------------------- #
def _im2col_2d(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]) -> np.ndarray:
    """Turn ``(B, C, H, W)`` into ``(B, out_h, out_w, C*kh*kw)`` patches."""
    kh, kw = kernel
    sh, sw = stride
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw]  # (B, C, out_h, out_w, kh, kw)
    batch, channels, out_h, out_w = windows.shape[:4]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h, out_w, channels * kh * kw)
    return np.ascontiguousarray(cols)


def _col2im_2d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
) -> np.ndarray:
    """Scatter patch gradients back onto the padded input image."""
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    grad_x = np.zeros(x_shape, dtype=np.float64)
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            rows = np.arange(out_h) * sh + i
            cols_idx = np.arange(out_w) * sw + j
            grad_x[:, :, rows[:, None], cols_idx[None, :]] += cols[:, :, :, :, i, j].transpose(
                0, 3, 1, 2
            )
    return grad_x


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D convolution over ``(B, C_in, H, W)`` input with ``(C_out, C_in, kh, kw)`` kernels."""
    if x.ndim != 4:
        raise ValueError(f"conv2d expects (B, C, H, W) input, got shape {x.shape}")
    stride = (stride, stride) if isinstance(stride, int) else tuple(stride)
    padding = (padding, padding) if isinstance(padding, int) else tuple(padding)
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    ph, pw = padding
    x_padded = (
        np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    )
    cols = _im2col_2d(x_padded, (kh, kw), stride)  # (B, oh, ow, C*kh*kw)
    w_flat = weight.data.reshape(out_channels, -1)
    out_data = cols @ w_flat.T  # (B, oh, ow, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_out = grad.transpose(0, 2, 3, 1)  # (B, oh, ow, C_out)
        if weight.requires_grad:
            grad_w = np.einsum("bhwo,bhwk->ok", grad_out, cols).reshape(weight.shape)
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1, 2)))
        if x.requires_grad:
            grad_cols = grad_out @ w_flat
            grad_padded = _col2im_2d(grad_cols, x_padded.shape, (kh, kw), stride)
            if ph or pw:
                grad_padded = grad_padded[
                    :, :, ph : grad_padded.shape[2] - ph or None, pw : grad_padded.shape[3] - pw or None
                ]
            x._accumulate(grad_padded)

    return Tensor._make(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over square windows of a ``(B, C, H, W)`` tensor."""
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (B, C, oh, ow, k, k)
    flat = windows.reshape(batch, channels, out_h, out_w, -1)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1).squeeze(-1)

    def backward(grad):
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        k_rows, k_cols = np.unravel_index(argmax, (kernel_size, kernel_size))
        b_idx, c_idx, oh_idx, ow_idx = np.indices(argmax.shape)
        rows = oh_idx * stride + k_rows
        cols = ow_idx * stride + k_cols
        np.add.at(grad_x, (b_idx, c_idx, rows, cols), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def adaptive_avg_pool1d(x: Tensor, output_size: int = 1) -> Tensor:
    """Average pool a ``(B, C, T)`` tensor down to ``(B, C, output_size)``."""
    if output_size == 1:
        return x.mean(axis=2, keepdims=True)
    batch, channels, length = x.shape
    edges = np.linspace(0, length, output_size + 1).astype(int)
    pieces = [x[:, :, start:stop].mean(axis=2, keepdims=True) for start, stop in zip(edges[:-1], edges[1:])]
    return Tensor.concat(pieces, axis=2)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Average pool a ``(B, C, H, W)`` tensor down to ``(B, C, s, s)``."""
    if output_size == 1:
        return x.mean(axis=(2, 3), keepdims=True)
    batch, channels, height, width = x.shape
    h_edges = np.linspace(0, height, output_size + 1).astype(int)
    w_edges = np.linspace(0, width, output_size + 1).astype(int)
    rows = []
    for h0, h1 in zip(h_edges[:-1], h_edges[1:]):
        cells = [
            x[:, :, h0:h1, w0:w1].mean(axis=(2, 3), keepdims=True)
            for w0, w1 in zip(w_edges[:-1], w_edges[1:])
        ]
        rows.append(Tensor.concat(cells, axis=3))
    return Tensor.concat(rows, axis=2)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)
