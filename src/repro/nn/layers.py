"""Layer library for the NumPy substrate.

The layers mirror a compact subset of ``torch.nn``: dense and convolutional
layers, batch/layer normalisation, dropout, activations, pooling and the
``Sequential`` container.  Everything consumes and produces
:class:`repro.nn.tensor.Tensor` objects so the contrastive losses can
backpropagate end to end.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, get_default_dtype
from repro.utils.seeding import new_rng


class Linear(Module):
    """Affine layer ``y = x W^T + b`` over the last dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv1d(Module):
    """1-D convolution layer with optional dilation (used by the TS encoder)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(init.kaiming_uniform((out_channels, in_channels, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor, relu: bool = False) -> Tensor:
        return F.conv1d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
            relu=relu,
        )

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"d={self.dilation})"
        )


class Conv2d(Module):
    """2-D convolution layer (used by the image encoder)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor, relu: bool = False) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, relu=relu
        )


class BatchNorm1d(Module):
    """Batch normalisation over ``(B, C)`` or ``(B, C, T)`` tensors.

    Training-mode normalisation runs through the fused
    :func:`repro.nn.functional.batch_norm_train` node (bit-identical to the
    decomposed graph); set ``fused = False`` to fall back to the closure
    reference, which the precision tests use as the comparison baseline.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.fused = True
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=get_default_dtype())
        self.running_var = np.ones(num_features, dtype=get_default_dtype())

    def _buffers(self):
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def _update_running(self, mean_data: np.ndarray, var_data: np.ndarray) -> None:
        self.running_mean = (
            (1 - self.momentum) * self.running_mean + self.momentum * mean_data.reshape(-1)
        )
        self.running_var = (
            (1 - self.momentum) * self.running_var + self.momentum * var_data.reshape(-1)
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            axes, shape = (0,), (1, self.num_features)
        elif x.ndim == 3:
            axes, shape = (0, 2), (1, self.num_features, 1)
        else:
            raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got shape {x.shape}")
        if self.training:
            if self.fused:
                out, mean_data, var_data = F.batch_norm_train(
                    x, self.weight, self.bias, axes=axes, shape=shape, eps=self.eps
                )
                self._update_running(mean_data, var_data)
                return out
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            self._update_running(mean.data, var.data)
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return normalised * self.weight.reshape(shape) + self.bias.reshape(shape)


class BatchNorm2d(Module):
    """Batch normalisation over ``(B, C, H, W)`` tensors.

    Uses the same fused training node (and ``fused`` escape hatch) as
    :class:`BatchNorm1d`.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.fused = True
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=get_default_dtype())
        self.running_var = np.ones(num_features, dtype=get_default_dtype())

    def _buffers(self):
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def _update_running(self, mean_data: np.ndarray, var_data: np.ndarray) -> None:
        self.running_mean = (
            (1 - self.momentum) * self.running_mean + self.momentum * mean_data.reshape(-1)
        )
        self.running_var = (
            (1 - self.momentum) * self.running_var + self.momentum * var_data.reshape(-1)
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got shape {x.shape}")
        shape = (1, self.num_features, 1, 1)
        if self.training:
            if self.fused:
                out, mean_data, var_data = F.batch_norm_train(
                    x, self.weight, self.bias, axes=(0, 2, 3), shape=shape, eps=self.eps
                )
                self._update_running(mean_data, var_data)
                return out
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self._update_running(mean.data, var.data)
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return normalised * self.weight.reshape(shape) + self.bias.reshape(shape)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalised = (x - mean) / ((var + self.eps) ** 0.5)
        return normalised * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout."""

    def __init__(self, p: float = 0.1, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    """No-op module, useful as a configurable placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool1d(Module):
    """Adaptive average pooling for ``(B, C, T)`` tensors."""

    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool1d(x, self.output_size)


class AdaptiveAvgPool2d(Module):
    """Adaptive average pooling for ``(B, C, H, W)`` tensors."""

    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.register_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes.

    Used both as the non-linear projection heads of the contrastive objectives
    and as the downstream task classifier.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        *,
        activation: str = "relu",
        dropout: float = 0.0,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        activations = {"relu": ReLU, "gelu": GELU, "tanh": Tanh}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}")
        layers: list[Module] = []
        previous = in_features
        for hidden in hidden_features:
            layers.append(Linear(previous, hidden, rng=rng))
            layers.append(activations[activation]())
            if dropout > 0:
                layers.append(Dropout(dropout, rng=rng))
            previous = hidden
        layers.append(Linear(previous, out_features, rng=rng))
        self.network = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
