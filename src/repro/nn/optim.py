"""First-order optimizers for the NumPy substrate.

Moment buffers are allocated with ``np.zeros_like`` on the parameters and all
update arithmetic uses Python scalars, so under a float32 ``DtypePolicy`` the
optimizer state (SGD velocity, Adam first/second moments) stays float32 end
to end — no silent float64 upcasts on the hot path — and checkpoint restores
cast back to each slot's dtype (:meth:`Optimizer._load_slots`).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------ state
    def state_dict(self) -> dict:
        """Serializable optimizer state: scalars plus per-parameter arrays.

        Subclasses extend the dict with their moment buffers (as lists of
        arrays aligned with the parameter order).  Checkpointing code splits
        list-valued entries into bundle arrays and keeps scalars in the
        manifest (see :meth:`repro.engine.Trainer.save_checkpoint`).
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    def _load_slots(self, state: dict, key: str, slots: list) -> None:
        """Copy a list-of-arrays entry into ``slots`` with shape checks."""
        values = state[key]
        if len(values) != len(slots):
            raise ValueError(
                f"optimizer state {key!r} has {len(values)} entries for "
                f"{len(slots)} parameters"
            )
        for index, (slot, value) in enumerate(zip(slots, values)):
            value = np.asarray(value)
            if value.shape != slot.shape:
                raise ValueError(
                    f"shape mismatch for optimizer state {key}[{index}]: "
                    f"expected {slot.shape}, got {value.shape}"
                )
            slots[index] = value.astype(slot.dtype, copy=True)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_slots(state, "velocity", self._velocity)

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the optimizer used by the paper."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["step"] = self._step
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._load_slots(state, "m", self._m)
        self._load_slots(state, "v", self._v)

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1**self._step
        bias_correction2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data = param.data * (1.0 - self.lr * self.weight_decay)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
