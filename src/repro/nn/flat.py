"""Flat parameter/gradient packing for data-parallel training.

The sharded gradient workers (:mod:`repro.engine.parallel`) broadcast
parameters and reduce gradients through shared memory.  :class:`FlatLayout`
maps an ordered parameter list onto **one contiguous 1-D buffer per dtype**
(float32 parameters never round-trip through float64), so a broadcast is a
single ``copyto`` per dtype into a shared segment and a reduction is a
fixed-order ``scale * buffer`` accumulation over the workers' segments — no
pickling, no per-parameter traffic.

The layout is purely positional: parent and worker build it from the *same*
``loop.parameters()`` order (both sides construct the identical module stack),
and :meth:`FlatLayout.signature` lets the worker verify that assumption
before training starts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class FlatLayout:
    """Per-dtype contiguous layout over an ordered list of parameters.

    Parameters
    ----------
    parameters:
        The parameters, in the stable order both sides of a broadcast use
        (e.g. ``list(loop.parameters())``).
    """

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("FlatLayout requires at least one parameter")
        #: per-parameter (dtype_key, offset, size) slots, aligned with
        #: :attr:`parameters`
        self.slots: list[tuple[str, int, int]] = []
        sizes: dict[str, int] = {}
        for param in self.parameters:
            key = np.dtype(param.data.dtype).name
            offset = sizes.get(key, 0)
            size = int(param.data.size)
            self.slots.append((key, offset, size))
            sizes[key] = offset + size
        #: total element count per dtype name (e.g. ``{"float32": 12345}``)
        self.sizes: dict[str, int] = sizes
        # reusable reduction work buffers (allocated on first reduce_grads)
        self._reduce_total: dict[str, np.ndarray] | None = None
        self._reduce_scratch: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------ shape
    def signature(self) -> list[tuple[tuple[int, ...], str]]:
        """Picklable per-parameter ``(shape, dtype)`` list for validation."""
        return [
            (tuple(param.data.shape), np.dtype(param.data.dtype).name)
            for param in self.parameters
        ]

    def nbytes(self) -> dict[str, int]:
        """Byte size of each per-dtype buffer."""
        return {key: size * np.dtype(key).itemsize for key, size in self.sizes.items()}

    def allocate(self) -> dict[str, np.ndarray]:
        """Fresh (non-shared) per-dtype buffers, mainly for tests."""
        return {key: np.zeros(size, dtype=key) for key, size in self.sizes.items()}

    # ------------------------------------------------------------------- data
    def pack_data(self, buffers: dict[str, np.ndarray]) -> None:
        """Copy every parameter's values into the flat buffers."""
        for param, (key, offset, size) in zip(self.parameters, self.slots):
            buffers[key][offset : offset + size] = param.data.reshape(-1)

    def unpack_data(self, buffers: dict[str, np.ndarray]) -> None:
        """Copy the flat buffers back into the parameters, *in place*.

        ``param.data`` keeps its identity (``np.copyto``), so optimizer moment
        buffers and any views held elsewhere stay attached.
        """
        for param, (key, offset, size) in zip(self.parameters, self.slots):
            np.copyto(param.data, buffers[key][offset : offset + size].reshape(param.data.shape))

    # ------------------------------------------------------------------ grads
    def pack_grads(self, buffers: dict[str, np.ndarray]) -> None:
        """Copy every parameter's gradient into the flat buffers (None → 0)."""
        for param, (key, offset, size) in zip(self.parameters, self.slots):
            segment = buffers[key][offset : offset + size]
            if param.grad is None:
                segment[:] = 0.0
            else:
                segment[:] = param.grad.reshape(-1)

    def reduce_grads(
        self,
        worker_buffers: Sequence[dict[str, np.ndarray]],
        weights: Sequence[float],
        *,
        accumulate: bool = False,
    ) -> None:
        """Fixed-order weighted reduction of worker gradients into ``.grad``.

        ``sum_w weights[w] * worker_buffers[w]`` is accumulated in ascending
        worker order — the order is part of the determinism contract: floats
        don't associate, so a fixed reduction order makes multi-worker runs
        reproducible at a fixed worker count.  With ``accumulate`` the result
        is *added* to any existing gradient (gradient-accumulation windows).
        """
        if len(worker_buffers) != len(weights):
            raise ValueError("one weight per worker buffer set is required")
        if self._reduce_total is None:
            # lazily allocated once: this runs on every training step, so the
            # accumulator and the per-worker scratch are reused across steps
            self._reduce_total = self.allocate()
            self._reduce_scratch = self.allocate()
        totals = self._reduce_total
        scratch = self._reduce_scratch
        for key, size in self.sizes.items():
            total = totals[key][:size]
            total[:] = 0.0
            for buffers, weight in zip(worker_buffers, weights):
                np.multiply(buffers[key][:size], np.dtype(key).type(weight), out=scratch[key][:size])
                total += scratch[key][:size]
        for param, (key, offset, size) in zip(self.parameters, self.slots):
            segment = totals[key][offset : offset + size].reshape(param.data.shape)
            if accumulate and param.grad is not None:
                param.grad = param.grad + segment
            else:
                # copy: `totals` is a reused buffer, but param.grad must own
                # its data past the next reduction
                param.grad = segment.copy()
