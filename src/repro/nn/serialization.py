"""Checkpoint serialization for :class:`repro.nn.module.Module` state dicts."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state_dict(module_or_state: Module | dict[str, np.ndarray], path: str | os.PathLike) -> str:
    """Save a module's ``state_dict`` (or a raw state dict) to an ``.npz`` file.

    Returns the path written.  ``.npz`` is appended when missing; the check is
    case-insensitive so ``"model.NPZ"`` is not double-suffixed.  Array dtypes
    are preserved exactly (``np.savez`` stores them verbatim).
    """
    state = module_or_state.state_dict() if isinstance(module_or_state, Module) else dict(module_or_state)
    path = str(path)
    if not path.lower().endswith(".npz"):
        path = path + ".npz"
    # write through a file handle: np.savez would re-append ".npz" to a
    # string path whose suffix differs in case (e.g. "model.NPZ")
    with open(path, "wb") as handle:
        np.savez(handle, **state)
    return path


def load_state_dict(path: str | os.PathLike, module: Module | None = None) -> dict[str, np.ndarray]:
    """Load a state dict from ``path``; optionally apply it to ``module``.

    The arrays come back with exactly the dtypes they were saved with;
    :meth:`Module.load_state_dict` preserves them rather than silently
    upcasting (a float32 checkpoint stays float32 after the round trip).
    """
    with np.load(str(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    if module is not None:
        module.load_state_dict(state)
    return state
