"""Weight initialisation schemes.

Every scheme takes an optional ``dtype``; when omitted, draws are cast to the
ambient default tensor dtype (see :func:`repro.nn.tensor.default_dtype`), so
modules constructed under a float32 ``DtypePolicy`` get float32 parameters
holding exactly the float64 draws rounded once.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import get_default_dtype
from repro.utils.seeding import new_rng


def _resolve_dtype(dtype) -> np.dtype:
    return get_default_dtype() if dtype is None else np.dtype(dtype)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None, dtype=None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = new_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(_resolve_dtype(dtype), copy=False)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None, dtype=None
) -> np.ndarray:
    """He/Kaiming uniform initialisation (for ReLU fan-in)."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape).astype(_resolve_dtype(dtype), copy=False)


def normal(
    shape: tuple[int, ...],
    std: float = 0.02,
    rng: np.random.Generator | int | None = None,
    dtype=None,
) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    rng = new_rng(rng)
    return rng.normal(0.0, std, size=shape).astype(_resolve_dtype(dtype), copy=False)


def zeros(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=_resolve_dtype(dtype))


def ones(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    """All-one initialisation (normalisation scales)."""
    return np.ones(shape, dtype=_resolve_dtype(dtype))
