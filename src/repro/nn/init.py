"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import new_rng


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = new_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (for ReLU fan-in)."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], std: float = 0.02, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    rng = new_rng(rng)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (normalisation scales)."""
    return np.ones(shape)
