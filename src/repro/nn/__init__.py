"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The AimTS paper is implemented in PyTorch; PyTorch is not available in this
offline environment, so this subpackage provides the minimal-but-complete
substrate the framework needs:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode automatic differentiation
  over NumPy arrays with broadcasting-aware gradients.
* :mod:`~repro.nn.functional` — convolutions, pooling, normalisation and the
  loss primitives used by the contrastive objectives.
* :mod:`~repro.nn.layers` — ``Module`` based layers (Linear, Conv1d, Conv2d,
  BatchNorm, Dropout, activations, containers).
* :mod:`~repro.nn.inference` — fused no-grad serving kernels: the
  :class:`~repro.nn.inference.Workspace` buffer arena, raw-array layer
  kernels and eval-time Conv→BatchNorm folding.
* :mod:`~repro.nn.flat` — flat per-dtype parameter/gradient packing used by
  the sharded data-parallel workers (:mod:`repro.engine.parallel`).
* :mod:`~repro.nn.optim` — SGD, Adam and AdamW optimizers.
* :mod:`~repro.nn.schedulers` — StepLR and cosine learning-rate schedules.
* :mod:`~repro.nn.serialization` — ``state_dict`` save/load as ``.npz``.

The API deliberately mirrors (a small subset of) PyTorch so that the AimTS
model code reads like the original.
"""

from repro.nn import functional, inference, init
from repro.nn.flat import FlatLayout
from repro.nn.inference import Workspace
from repro.nn.layers import (
    GELU,
    MLP,
    AdaptiveAvgPool1d,
    AdaptiveAvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.schedulers import CosineAnnealingLR, LRScheduler, StepLR
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    no_grad,
    set_default_dtype,
)

__all__ = [
    "Tensor",
    "no_grad",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "Module",
    "Parameter",
    "functional",
    "inference",
    "init",
    "Workspace",
    "FlatLayout",
    "Linear",
    "Conv1d",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AdaptiveAvgPool1d",
    "AdaptiveAvgPool2d",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "save_state_dict",
    "load_state_dict",
]
