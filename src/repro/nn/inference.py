"""Fused no-grad inference kernels for the NumPy substrate.

Training runs through :class:`repro.nn.tensor.Tensor` autograd; serving does
not need any of that bookkeeping.  This module provides the fused eval-time
path the estimators' ``encode`` / ``predict`` surfaces stream micro-batches
through:

* :class:`Workspace` — a reusable buffer arena keyed by call-site tag, so
  repeated ``encode`` calls stop reallocating im2col patch matrices, padded
  inputs and convolution outputs.
* :func:`conv1d_forward` / :func:`conv2d_forward` / :func:`linear_forward` —
  raw-``ndarray`` layer kernels (no Tensor wrappers, no backward closures)
  computing the same arithmetic as the autograd forward.  The linear kernel
  is additionally **batch-invariant** (row-wise compute), so a sample's
  fused result never depends on how many neighbours shared its batch — the
  property ``repro.serving`` needs for micro-batched responses bit-identical
  to direct ``predict``; vs. the autograd gemm it differs by <= 1 ulp.
* :func:`fold_conv_bn` — batch-norm folding: at eval time a BN layer is an
  affine transform per channel, which folds into the preceding convolution's
  weights (``w' = w * gamma/sqrt(var+eps)``), removing the BN pass entirely.
* :func:`module_forward` — a small eval-only interpreter over the layer
  vocabulary (with automatic Conv→BN folding inside ``Sequential``), used by
  the encoders' ``infer`` methods and falling back to a ``no_grad`` Tensor
  forward for unknown modules.

Returned arrays may alias workspace buffers mid-network; every public
``infer`` entry point ends on an op that allocates a fresh output, so callers
can hold results across micro-batches safely.  A :class:`Workspace` is not
thread-safe; use one per serving thread.
"""

from __future__ import annotations

import numpy as np

from repro.nn import layers as L
from repro.nn.functional import _avg_pool1d_data, _avg_pool2d_data
from repro.nn.tensor import Tensor, default_dtype, no_grad

#: serving micro-batch size the estimator configs and ``FineTuner`` default
#: to (re-exported as ``repro.api.estimator.DEFAULT_SERVING_BATCH_SIZE``).
#: Profiling for PR 5 (benchmarks/test_perf_inference.py) showed fused
#: throughput is flat in the micro-batch size once the workspace is warm;
#: 256 quarters the per-micro-batch dispatch overhead of the old 64 and
#: hands threaded BLAS wider matmuls.
DEFAULT_SERVING_BATCH_SIZE = 256


class Workspace:
    """A reusable buffer arena for the fused inference path.

    Buffers are keyed by ``(tag, shape, dtype)``, so a serving loop whose
    last micro-batch is smaller than the rest (``n % batch_size != 0``) keeps
    one buffer per shape instead of reallocating on every size flip.
    :attr:`hits` / :attr:`misses` count reuses and allocations, which the
    perf suite uses to assert that steady-state serving allocates nothing;
    :attr:`peak_bytes` is the high-water mark of the pooled footprint.  The
    counters surface through :meth:`stats` (and from there through
    ``ModelServer.stats()`` and ``bench_report``).
    """

    __slots__ = ("_buffers", "_nbytes", "hits", "misses", "peak_bytes")

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.peak_bytes = 0

    def buffer(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Return an uninitialised buffer of ``shape``/``dtype`` for ``tag``."""
        key = (tag, tuple(shape), np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
            self._nbytes += buf.nbytes
            if self._nbytes > self.peak_bytes:
                self.peak_bytes = self._nbytes
        else:
            self.hits += 1
        return buf

    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return self._nbytes

    def clear(self) -> None:
        """Drop every buffer (e.g. after a one-off oversized batch)."""
        self._buffers.clear()
        self._nbytes = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot (plain ints, JSON-safe) for reports and tests."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "nbytes": int(self._nbytes),
            "peak_bytes": int(self.peak_bytes),
            "buffers": len(self._buffers),
        }


def _buffer(workspace: Workspace | None, tag: str, shape, dtype) -> np.ndarray:
    return np.empty(shape, dtype=dtype) if workspace is None else workspace.buffer(tag, shape, dtype)


# --------------------------------------------------------------------------- #
# Layer kernels
# --------------------------------------------------------------------------- #
def linear_forward(x: np.ndarray, layer: L.Linear) -> np.ndarray:
    """``x W^T + b`` on raw arrays; always allocates a fresh output.

    2-D inputs are computed row by row (gemv): a full-batch gemm picks its
    kernel — and therefore its accumulation order — from the row count, so a
    sample's output would depend on how many neighbours shared its batch.
    Row-wise compute makes every sample's result independent of batch
    composition, which the serving micro-batcher (:mod:`repro.serving`)
    relies on for responses bit-identical under any coalescing.  Higher-rank
    inputs keep the batched matmul: each leading slice is its own fixed-shape
    gemm, already composition-independent.
    """
    weight_t = layer.weight.data.T
    if x.ndim == 2:
        out = np.empty(
            (x.shape[0], weight_t.shape[1]), dtype=np.result_type(x, weight_t)
        )
        for index in range(x.shape[0]):
            np.matmul(x[index], weight_t, out=out[index])
    else:
        out = x @ weight_t
    if layer.bias is not None:
        out += layer.bias.data
    return out


def conv1d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    *,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    workspace: Workspace | None = None,
    tag: str = "conv1d",
) -> np.ndarray:
    """1-D convolution on raw arrays (same im2col arithmetic as autograd).

    The padded input, the contiguous patch matrix and the matmul output all
    come from ``workspace``, so steady-state calls allocate nothing.  The
    returned ``(B, C_out, out_t)`` array is a transposed view of a workspace
    buffer — consume it (or copy) before the same tag runs again.
    """
    out_channels, in_channels, kernel = weight.shape
    batch, channels, length = x.shape
    if padding:
        padded = _buffer(workspace, f"{tag}.pad", (batch, channels, length + 2 * padding), x.dtype)
        padded[:, :, :padding] = 0.0
        padded[:, :, length + padding :] = 0.0
        padded[:, :, padding : length + padding] = x
    else:
        padded = x
    span = (kernel - 1) * dilation + 1
    out_t = (padded.shape[2] - span) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(padded, span, axis=2)
    windows = windows[:, :, ::stride, ::dilation]  # (B, C, out_t, K)
    cols = _buffer(workspace, f"{tag}.cols", (batch, out_t, channels, kernel), x.dtype)
    np.copyto(cols, windows.transpose(0, 2, 1, 3))
    out = _buffer(workspace, f"{tag}.out", (batch, out_t, out_channels), x.dtype)
    np.matmul(cols.reshape(batch, out_t, channels * kernel), weight.reshape(out_channels, -1).T, out=out)
    if bias is not None:
        out += bias
    return out.transpose(0, 2, 1)


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    *,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
    workspace: Workspace | None = None,
    tag: str = "conv2d",
) -> np.ndarray:
    """2-D convolution on raw arrays; see :func:`conv1d_forward`."""
    stride = (stride, stride) if isinstance(stride, int) else tuple(stride)
    padding = (padding, padding) if isinstance(padding, int) else tuple(padding)
    out_channels, in_channels, kh, kw = weight.shape
    batch, channels, height, width = x.shape
    ph, pw = padding
    if ph or pw:
        padded = _buffer(
            workspace, f"{tag}.pad", (batch, channels, height + 2 * ph, width + 2 * pw), x.dtype
        )
        padded[:] = 0.0
        padded[:, :, ph : height + ph, pw : width + pw] = x
    else:
        padded = x
    sh, sw = stride
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw]  # (B, C, oh, ow, kh, kw)
    out_h, out_w = windows.shape[2], windows.shape[3]
    cols = _buffer(workspace, f"{tag}.cols", (batch, out_h, out_w, channels, kh, kw), x.dtype)
    np.copyto(cols, windows.transpose(0, 2, 3, 1, 4, 5))
    out = _buffer(workspace, f"{tag}.out", (batch, out_h, out_w, out_channels), x.dtype)
    np.matmul(
        cols.reshape(batch, out_h * out_w, channels * kh * kw),
        weight.reshape(out_channels, -1).T,
        out=out.reshape(batch, out_h * out_w, out_channels),
    )
    if bias is not None:
        out += bias
    return out.transpose(0, 3, 1, 2)


def relu_(x: np.ndarray) -> np.ndarray:
    """In-place ReLU (safe on workspace-owned activations)."""
    return np.maximum(x, 0.0, out=x)


def fold_conv_bn(conv: L.Conv1d | L.Conv2d, bn: L.BatchNorm1d | L.BatchNorm2d):
    """Fold an eval-mode batch norm into the preceding convolution.

    Returns ``(weight, bias)`` arrays such that ``conv(x; weight, bias)``
    equals ``bn(conv(x))`` with the BN in eval mode (running statistics).
    Recomputed per call — folding is O(parameters), negligible next to the
    convolution itself, and this way weight updates are always reflected.
    """
    scale = bn.weight.data / (bn.running_var + bn.eps) ** 0.5
    shape = (-1,) + (1,) * (conv.weight.data.ndim - 1)
    weight = conv.weight.data * scale.reshape(shape)
    bias = conv.bias.data if conv.bias is not None else 0.0
    bias = (bias - bn.running_mean) * scale + bn.bias.data
    dtype = conv.weight.data.dtype
    return weight.astype(dtype, copy=False), bias.astype(dtype, copy=False)


def fold_batchnorms(module: L.Module) -> int:
    """Bake Conv→BN folding into ``module`` in place; returns pairs folded.

    Walks every :class:`~repro.nn.layers.Sequential` container reachable from
    ``module`` and, for each ``Conv1d → BatchNorm1d`` / ``Conv2d →
    BatchNorm2d`` pair, overwrites the convolution's weights with the folded
    values of :func:`fold_conv_bn` (creating a bias parameter when the
    convolution had none) and replaces the batch norm with
    :class:`~repro.nn.layers.Identity`.  The folded module computes exactly
    what the fused inference path computed by folding per call — but the
    O(parameters) fold now happens once instead of on every ``predict``.

    Eval-time only: the folded module no longer tracks batch statistics and
    its ``state_dict`` has the folded layout (no BN entries), so it must not
    be trained further or re-saved as a bundle — use it for serving
    (``load_estimator(path, eval_mode=True)``) and keep the original bundle
    file as the source of truth.
    """
    from repro.nn.module import Parameter

    folded = 0
    for child in module.modules():
        if not isinstance(child, L.Sequential):
            continue
        names = list(child._order)
        for index, name in enumerate(names[:-1]):
            layer = child._modules[name]
            successor = child._modules[names[index + 1]]
            pair = (
                isinstance(layer, L.Conv1d) and isinstance(successor, L.BatchNorm1d)
            ) or (isinstance(layer, L.Conv2d) and isinstance(successor, L.BatchNorm2d))
            if not pair:
                continue
            weight, bias = fold_conv_bn(layer, successor)
            layer.weight.data = weight
            if layer.bias is None:
                # pin the new parameter to the conv's dtype, not the ambient
                # default (a float32 model must stay float32 after folding)
                with default_dtype(weight.dtype):
                    layer.bias = Parameter(bias)
            else:
                layer.bias.data = bias
            child.register_module(names[index + 1], L.Identity())
            folded += 1
    return folded


def _batchnorm_eval(x: np.ndarray, bn: L.BatchNorm1d | L.BatchNorm2d) -> np.ndarray:
    """Eval-mode batch norm on raw arrays (for BN layers with no conv to fold into)."""
    shape = (1, bn.num_features) + (1,) * (x.ndim - 2)
    normalised = (x - bn.running_mean.reshape(shape)) / (
        (bn.running_var.reshape(shape) + bn.eps) ** 0.5
    )
    return normalised * bn.weight.data.reshape(shape) + bn.bias.data.reshape(shape)


def _max_pool2d(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel_size, kernel_size), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    return windows.max(axis=(4, 5))


# --------------------------------------------------------------------------- #
# Module interpreter
# --------------------------------------------------------------------------- #
def module_forward(
    module: L.Module,
    x: np.ndarray,
    *,
    workspace: Workspace | None = None,
    tag: str = "",
    owned: bool = False,
) -> np.ndarray:
    """Eval-only fused forward through ``module`` on a raw array.

    ``owned`` marks ``x`` as an intermediate this interpreter may mutate in
    place (activations); caller-supplied inputs must pass ``owned=False``.
    Unknown module types fall back to a ``no_grad`` Tensor forward, so any
    composition stays correct — just without the fused fast path.
    """
    if isinstance(module, L.Sequential):
        return _sequential_forward(module, x, workspace=workspace, tag=tag, owned=owned)
    if isinstance(module, L.MLP):
        return _sequential_forward(module.network, x, workspace=workspace, tag=tag, owned=owned)
    if isinstance(module, L.Linear):
        return linear_forward(x, module)
    if isinstance(module, L.Conv1d):
        return conv1d_forward(
            x,
            module.weight.data,
            None if module.bias is None else module.bias.data,
            stride=module.stride,
            padding=module.padding,
            dilation=module.dilation,
            workspace=workspace,
            tag=tag,
        )
    if isinstance(module, L.Conv2d):
        return conv2d_forward(
            x,
            module.weight.data,
            None if module.bias is None else module.bias.data,
            stride=module.stride,
            padding=module.padding,
            workspace=workspace,
            tag=tag,
        )
    if isinstance(module, (L.BatchNorm1d, L.BatchNorm2d)):
        return _batchnorm_eval(x, module)
    if isinstance(module, L.ReLU):
        return relu_(x) if owned else np.maximum(x, 0.0)
    if isinstance(module, L.Tanh):
        return np.tanh(x, out=x) if owned else np.tanh(x)
    if isinstance(module, L.Sigmoid):
        return 1.0 / (1.0 + np.exp(-x))
    if isinstance(module, L.GELU):
        c = np.sqrt(2.0 / np.pi)
        return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))
    if isinstance(module, (L.Dropout, L.Identity)):
        return x  # eval-mode no-ops
    if isinstance(module, L.Flatten):
        return x.reshape(x.shape[0], -1)
    if isinstance(module, L.MaxPool2d):
        return _max_pool2d(x, module.kernel_size, module.stride)
    if isinstance(module, L.AdaptiveAvgPool1d):
        return _avg_pool1d_data(x, module.output_size)
    if isinstance(module, L.AdaptiveAvgPool2d):
        return _avg_pool2d_data(x, module.output_size)
    # unknown module: correctness first, speed second; the default_dtype
    # scope keeps the activation in the model's dtype (no float64 upcast)
    was_training = module.training
    module.eval()
    try:
        with no_grad(), default_dtype(x.dtype):
            return module(Tensor(np.ascontiguousarray(x))).data
    finally:
        module.train(was_training)


def batched_infer(
    encoder,
    X: np.ndarray,
    *,
    batch_size: int,
    workspace: Workspace | None = None,
    fused: bool = True,
    head=None,
) -> np.ndarray:
    """Stream micro-batches of ``X`` through the fused no-grad path.

    The one serving loop behind every ``encode`` / ``predict_logits``
    surface: ``encoder`` (and the optional ``head``, e.g. a classifier) runs
    fused via its ``infer`` method when available and ``fused`` is set;
    otherwise each micro-batch takes the plain eval-mode autograd forward
    under ``no_grad`` in the input's dtype.  Always returns a fresh array.
    """
    outputs = []
    if fused and hasattr(encoder, "infer"):
        for start in range(0, X.shape[0], batch_size):
            out = encoder.infer(X[start : start + batch_size], workspace=workspace)
            if head is not None:
                out = head.infer(out, workspace=workspace)
            outputs.append(out)
        return np.concatenate(outputs, axis=0)
    modules = [encoder] if head is None else [encoder, head]
    for module in modules:
        module.eval()
    try:
        with no_grad(), default_dtype(X.dtype):
            for start in range(0, X.shape[0], batch_size):
                out = encoder(X[start : start + batch_size])
                if head is not None:
                    out = head(out)
                outputs.append(out.data)
    finally:
        for module in modules:
            module.train()
    return np.concatenate(outputs, axis=0)


def _sequential_forward(
    seq: L.Sequential,
    x: np.ndarray,
    *,
    workspace: Workspace | None,
    tag: str,
    owned: bool,
) -> np.ndarray:
    """Run a :class:`Sequential` fused, folding Conv→BatchNorm pairs."""
    children = list(seq)
    index = 0
    while index < len(children):
        layer = children[index]
        successor = children[index + 1] if index + 1 < len(children) else None
        layer_tag = f"{tag}.{index}" if tag else str(index)
        if isinstance(layer, L.Conv1d) and isinstance(successor, L.BatchNorm1d):
            weight, bias = fold_conv_bn(layer, successor)
            x = conv1d_forward(
                x,
                weight,
                bias,
                stride=layer.stride,
                padding=layer.padding,
                dilation=layer.dilation,
                workspace=workspace,
                tag=layer_tag,
            )
            index += 2
            owned = True
            continue
        if isinstance(layer, L.Conv2d) and isinstance(successor, L.BatchNorm2d):
            weight, bias = fold_conv_bn(layer, successor)
            x = conv2d_forward(
                x,
                weight,
                bias,
                stride=layer.stride,
                padding=layer.padding,
                workspace=workspace,
                tag=layer_tag,
            )
            index += 2
            owned = True
            continue
        out = module_forward(layer, x, workspace=workspace, tag=layer_tag, owned=owned)
        if not owned:
            # pass-through layers (Dropout, Identity) and views (Flatten)
            # still alias the caller's input; only a fresh array is ours
            owned = not np.may_share_memory(out, x)
        x = out
        index += 1
    return x
