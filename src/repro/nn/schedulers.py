"""Learning-rate schedules.

The paper uses Adam with ``StepLR`` decay during pre-training; a cosine
schedule is provided as a common alternative for the ablation harness.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` once per :meth:`step` call."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.last_epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr

    def state_dict(self) -> dict:
        """Serializable schedule progress (constructor args are not included:
        a restored schedule is rebuilt with the same hyper-parameters and
        only its position is state)."""
        return {"last_epoch": self.last_epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore progress saved by :meth:`state_dict`.

        The optimizer's current learning rate is restored separately (via
        :meth:`repro.nn.optim.Optimizer.load_state_dict`), so this does not
        re-apply ``get_lr``.
        """
        self.last_epoch = int(state["last_epoch"])
        self.base_lr = float(state["base_lr"])


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
