"""``Module`` / ``Parameter`` base classes for the NumPy substrate.

A :class:`Module` owns named parameters and child modules, exactly like a
(very small) ``torch.nn.Module``: parameters are discovered recursively, the
training flag cascades to children, and ``state_dict`` round-trips through
plain dictionaries of NumPy arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; the base class tracks them so optimizers and serialization can
    discover every parameter recursively.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ----------------------------------------------------------- registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (used by containers)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -------------------------------------------------------------- iteration
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter in this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules."""
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(int(p.size) for p in self.parameters())

    # ------------------------------------------------------------------ state
    def train(self, mode: bool = True) -> "Module":
        """Set the training flag on this module and all children."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (disables dropout, freezes batch-norm stats)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter (and buffer) names to arrays."""
        state: dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, value in self._buffers().items():
            state[f"{prefix}{name}"] = value.copy()
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        """Load parameters (and buffers) from a :meth:`state_dict` mapping.

        Dtypes are preserved with full fidelity: a float32 state loaded into a
        float64-initialised module leaves the parameters float32 (no silent
        upcast), and non-floating state for a floating parameter is rejected.
        """
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: expected {param.shape}, got {value.shape}"
                )
            if not np.issubdtype(value.dtype, np.floating):
                raise TypeError(
                    f"dtype mismatch for {key!r}: expected a floating dtype, got {value.dtype}"
                )
            param.data = value.copy()
        for name in self._buffers():
            key = f"{prefix}{name}"
            if key in state:
                setattr(self, name, np.asarray(state[key]).copy())
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    def _buffers(self) -> dict[str, np.ndarray]:
        """Non-trainable persistent arrays (e.g. batch-norm running stats)."""
        return {}

    # ------------------------------------------------------------------- call
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules)
        return f"{type(self).__name__}({child_repr})"
