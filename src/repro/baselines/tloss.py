"""T-Loss baseline (Franceschi et al., NeurIPS 2019).

T-Loss samples a reference subseries, a positive subseries contained in the
reference, and negative subseries drawn from other samples, and optimises a
triplet-style logistic loss:

    -log sigma(f(ref) . f(pos)) - sum_k log sigma(-f(ref) . f(neg_k)).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import crop_window
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TLoss(SelfSupervisedBaseline):
    """Triplet loss over random subseries."""

    name = "T-Loss"
    api_name = "tloss"

    def __init__(self, config: BaselineConfig | None = None, *, n_negatives: int = 4):
        super().__init__(config)
        self.n_negatives = n_negatives

    def _manifest_init_kwargs(self) -> dict:
        return {"n_negatives": self.n_negatives}

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        B, M, T = batch.shape
        ref_window = max(8, int(round(0.8 * T)))
        pos_window = max(4, int(round(0.4 * T)))
        ref_start = int(self._rng.integers(0, T - ref_window + 1))
        pos_start = ref_start + int(self._rng.integers(0, ref_window - pos_window + 1))
        reference = crop_window(batch, ref_start, ref_window)
        positive = crop_window(batch, pos_start, pos_window)

        ref_proj = F.l2_normalize(self.projection(self.encoder(reference)), axis=-1)
        pos_proj = F.l2_normalize(self.projection(self.encoder(positive)), axis=-1)
        positive_score = (ref_proj * pos_proj).sum(axis=1)
        loss = -(positive_score.sigmoid().clamp_min(1e-8).log()).mean()

        for _ in range(self.n_negatives):
            permutation = self._rng.permutation(B)
            # avoid accidental self-pairs which would make a "negative" positive
            permutation = np.where(permutation == np.arange(B), (permutation + 1) % B, permutation)
            neg_start = int(self._rng.integers(0, T - pos_window + 1))
            negative = crop_window(batch[permutation], neg_start, pos_window)
            neg_proj = F.l2_normalize(self.projection(self.encoder(negative)), axis=-1)
            negative_score = (ref_proj * neg_proj).sum(axis=1)
            loss = loss - ((negative_score * -1.0).sigmoid().clamp_min(1e-8).log()).mean()
        return loss
