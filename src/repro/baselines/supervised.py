"""Supervised case-by-case baselines (Table II).

The paper's Table II compares against supervised deep models (TimesNet,
PatchTST, Crossformer, OS-CNN, TapNet, DLinear, ...).  Two representative
supervised baselines are provided:

* :class:`SupervisedCNN` — the same dilated-convolution encoder as AimTS,
  trained end-to-end with cross-entropy (stands for the deep CNN family).
* :class:`LinearClassifier` — a DLinear-style linear model over the flattened,
  z-normalised series (stands for the simple linear family).

Both implement the :class:`repro.api.Estimator` contract; their ``pretrain``
is a documented no-op (``supports_pretraining`` is False), so the protocol
runner treats them uniformly with the self-supervised methods.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.estimator import FineTunedPredictorMixin, RidgePredictorMixin
from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuner, FineTuneResult
from repro.data.dataset import TimeSeriesDataset
from repro.data.fewshot import few_shot_view
from repro.data.loaders import z_normalize
from repro.encoders import TSEncoder
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class SupervisedCNN(FineTunedPredictorMixin):
    """Dilated-CNN classifier trained from scratch on each dataset."""

    name = "SupervisedCNN"
    api_name = "supervised_cnn"
    supports_pretraining = False

    def __init__(
        self,
        *,
        hidden_channels: int = 16,
        repr_dim: int = 32,
        depth: int = 2,
        epochs: int = 20,
        learning_rate: float = 1e-3,
        batch_size: int = 8,
        seed: int = 3407,
    ):
        check_positive("epochs", epochs)
        self.hidden_channels = hidden_channels
        self.repr_dim = repr_dim
        self.depth = depth
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._finetuner: FineTuner | None = None
        self._label_map: np.ndarray | None = None

    def pretrain(self, corpus_or_X=None, **kwargs) -> None:
        """No-op: supervised models have no pre-training stage."""
        return None

    def _build_encoder(self, rng: np.random.Generator) -> TSEncoder:
        return TSEncoder(
            hidden_channels=self.hidden_channels,
            repr_dim=self.repr_dim,
            depth=self.depth,
            channel_independent=True,
            channel_aggregation="concat",
            rng=int(rng.integers(0, 2**31)),
        )

    def _default_config(self) -> FineTuneConfig:
        return FineTuneConfig(
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )

    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        finetune_config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
    ) -> FineTuneResult:
        """Train end-to-end on ``dataset.train`` and evaluate on ``dataset.test``."""
        rng = new_rng(self.seed)
        encoder = self._build_encoder(rng)
        config = finetune_config or self._default_config()
        finetuner = FineTuner(encoder, dataset.n_classes, config)
        working = few_shot_view(dataset, label_ratio, seed=self.seed)
        result = finetuner.fit_and_evaluate(working)
        self._finetuner = finetuner
        self._label_map = np.arange(dataset.n_classes, dtype=np.int64)
        return result

    def fit_and_evaluate(self, dataset: TimeSeriesDataset) -> float:
        """Train on ``dataset.train`` and return test accuracy."""
        return self.fine_tune(dataset).accuracy

    def encode(self, X: np.ndarray, *, batch_size: int = 64) -> np.ndarray:
        """Representations from the trained encoder (requires :meth:`fine_tune`)."""
        from repro.nn.tensor import no_grad

        self._require_fitted()
        encoder = self._finetuner.encoder
        X = z_normalize(np.asarray(X, dtype=np.float64))
        encoder.eval()
        with no_grad():
            outputs = [
                encoder(X[start : start + batch_size]).data
                for start in range(0, X.shape[0], batch_size)
            ]
        encoder.train()
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------ persistence
    def save(self, path) -> str:
        """Save a full-bundle checkpoint (see :mod:`repro.api.bundle`)."""
        from repro.api.bundle import save_bundle

        self._require_fitted()
        arrays: dict[str, np.ndarray] = {}
        manifest = {
            "estimator": self.api_name,
            "init_kwargs": {
                "hidden_channels": self.hidden_channels,
                "repr_dim": self.repr_dim,
                "depth": self.depth,
                "epochs": self.epochs,
                "learning_rate": self.learning_rate,
                "batch_size": self.batch_size,
                "seed": self.seed,
            },
        }
        self._pack_finetuner(arrays, manifest)
        return save_bundle(path, arrays, manifest)

    def load(self, path) -> "SupervisedCNN":
        """Load a checkpoint saved by :meth:`save` into this instance."""
        from repro.api.bundle import load_bundle

        return self._load_from_state(*load_bundle(path))

    def _load_from_state(self, state: dict, manifest: dict) -> "SupervisedCNN":
        """Restore from already-read bundle contents (single-read load path)."""
        finetune = manifest["finetune"]
        finetuner = FineTuner(
            self._build_encoder(new_rng(self.seed)),
            finetune["n_classes"],
            FineTuneConfig(**finetune["config"]),
        )
        self._restore_finetuner(finetuner, state, finetune)
        return self


class LinearClassifier(RidgePredictorMixin):
    """Multinomial ridge classifier on the flattened series (DLinear-style).

    Trained in closed form against one-hot targets, so it is deterministic and
    extremely fast — a useful lower bound in the supervised comparison.
    """

    name = "Linear"
    api_name = "linear"
    supports_pretraining = False

    def __init__(self, *, ridge: float = 1.0, seed: int = 3407):
        check_positive("ridge", ridge)
        self.ridge = ridge
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._n_classes: int | None = None
        self._label_map: np.ndarray | None = None

    @staticmethod
    def _features(X: np.ndarray) -> np.ndarray:
        X = z_normalize(np.asarray(X, dtype=np.float64))
        flat = X.reshape(X.shape[0], -1)
        return np.concatenate([flat, np.ones((flat.shape[0], 1))], axis=1)

    def pretrain(self, corpus_or_X=None, **kwargs) -> None:
        """No-op: the closed-form model has no pre-training stage."""
        return None

    def encode(self, X: np.ndarray) -> np.ndarray:
        """The flattened z-normalised series (the model's feature space)."""
        return self._features(X)[:, :-1]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearClassifier":
        """Closed-form ridge regression against one-hot labels."""
        features = self._features(X)
        y = np.asarray(y, dtype=np.int64)
        self._n_classes = int(y.max()) + 1
        targets = np.eye(self._n_classes)[y]
        gram = features.T @ features + self.ridge * np.eye(features.shape[1])
        self._weights = np.linalg.solve(gram, features.T @ targets)
        self._label_map = None  # any previous fine_tune label map is stale now
        return self

    def _decision_scores(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("call fit() before predict()")
        return self._features(X) @ self._weights

    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        finetune_config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
    ) -> FineTuneResult:
        """Fit in closed form on ``dataset.train``; ``finetune_config`` is unused."""
        working = few_shot_view(dataset, label_ratio, seed=self.seed)
        start = time.perf_counter()
        self.fit(working.train.X, working.train.y)
        elapsed = time.perf_counter() - start
        self._label_map = np.arange(max(dataset.n_classes, self._n_classes), dtype=np.int64)
        return FineTuneResult(
            dataset=dataset.name,
            accuracy=float((self.predict(dataset.test.X) == dataset.test.y).mean()),
            train_accuracy=float((self.predict(working.train.X) == working.train.y).mean()),
            # the closed-form ridge fit runs no epoch loop
            n_epochs=0,
            fit_seconds=elapsed,
            history=[],
        )

    def fit_and_evaluate(self, dataset: TimeSeriesDataset) -> float:
        """Train on ``dataset.train`` and return test accuracy."""
        return self.fine_tune(dataset).accuracy

    # ------------------------------------------------------------ persistence
    def save(self, path) -> str:
        """Save a full-bundle checkpoint (see :mod:`repro.api.bundle`)."""
        from repro.api.bundle import save_bundle

        if self._weights is None:
            raise RuntimeError("call fit() or fine_tune() before save()")
        arrays = {"weights": self._weights}
        if self._label_map is not None:
            arrays["label_map"] = np.asarray(self._label_map, dtype=np.int64)
        manifest = {
            "estimator": self.api_name,
            "init_kwargs": {"ridge": self.ridge, "seed": self.seed},
            "n_classes": self._n_classes,
        }
        return save_bundle(path, arrays, manifest)

    def load(self, path) -> "LinearClassifier":
        """Load a checkpoint saved by :meth:`save` into this instance."""
        from repro.api.bundle import load_bundle

        return self._load_from_state(*load_bundle(path))

    def _load_from_state(self, state: dict, manifest: dict) -> "LinearClassifier":
        """Restore from already-read bundle contents (single-read load path)."""
        self._weights = np.asarray(state["weights"], dtype=np.float64)
        self._n_classes = manifest.get("n_classes")
        self._label_map = (
            np.asarray(state["label_map"], dtype=np.int64) if "label_map" in state else None
        )
        return self
