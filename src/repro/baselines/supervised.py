"""Supervised case-by-case baselines (Table II).

The paper's Table II compares against supervised deep models (TimesNet,
PatchTST, Crossformer, OS-CNN, TapNet, DLinear, ...).  Two representative
supervised baselines are provided:

* :class:`SupervisedCNN` — the same dilated-convolution encoder as AimTS,
  trained end-to-end with cross-entropy (stands for the deep CNN family).
* :class:`LinearClassifier` — a DLinear-style linear model over the flattened,
  z-normalised series (stands for the simple linear family).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.data.dataset import TimeSeriesDataset
from repro.data.loaders import z_normalize
from repro.encoders import TSEncoder
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class SupervisedCNN:
    """Dilated-CNN classifier trained from scratch on each dataset."""

    name = "SupervisedCNN"

    def __init__(
        self,
        *,
        hidden_channels: int = 16,
        repr_dim: int = 32,
        depth: int = 2,
        epochs: int = 20,
        learning_rate: float = 1e-3,
        batch_size: int = 8,
        seed: int = 3407,
    ):
        check_positive("epochs", epochs)
        self.hidden_channels = hidden_channels
        self.repr_dim = repr_dim
        self.depth = depth
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed

    def fit_and_evaluate(self, dataset: TimeSeriesDataset) -> float:
        """Train on ``dataset.train`` and return test accuracy."""
        rng = new_rng(self.seed)
        encoder = TSEncoder(
            hidden_channels=self.hidden_channels,
            repr_dim=self.repr_dim,
            depth=self.depth,
            channel_independent=True,
            channel_aggregation="concat",
            rng=int(rng.integers(0, 2**31)),
        )
        config = FineTuneConfig(
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        finetuner = FineTuner(encoder, dataset.n_classes, config)
        return finetuner.fit_and_evaluate(dataset).accuracy


class LinearClassifier:
    """Multinomial ridge classifier on the flattened series (DLinear-style).

    Trained in closed form against one-hot targets, so it is deterministic and
    extremely fast — a useful lower bound in the supervised comparison.
    """

    name = "Linear"

    def __init__(self, *, ridge: float = 1.0):
        check_positive("ridge", ridge)
        self.ridge = ridge
        self._weights: np.ndarray | None = None
        self._n_classes: int | None = None

    @staticmethod
    def _features(X: np.ndarray) -> np.ndarray:
        X = z_normalize(np.asarray(X, dtype=np.float64))
        flat = X.reshape(X.shape[0], -1)
        return np.concatenate([flat, np.ones((flat.shape[0], 1))], axis=1)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearClassifier":
        """Closed-form ridge regression against one-hot labels."""
        features = self._features(X)
        y = np.asarray(y, dtype=np.int64)
        self._n_classes = int(y.max()) + 1
        targets = np.eye(self._n_classes)[y]
        gram = features.T @ features + self.ridge * np.eye(features.shape[1])
        self._weights = np.linalg.solve(gram, features.T @ targets)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("call fit() before predict()")
        return (self._features(X) @ self._weights).argmax(axis=1)

    def fit_and_evaluate(self, dataset: TimeSeriesDataset) -> float:
        """Train on ``dataset.train`` and return test accuracy."""
        self.fit(dataset.train.X, dataset.train.y)
        predictions = self.predict(dataset.test.X)
        return float((predictions == dataset.test.y).mean())
