"""Shared infrastructure for the self-supervised baselines.

Every neural baseline follows the same recipe: a TS encoder is pre-trained
with the baseline's own self-supervised objective (``batch_loss``), and a
classifier is then fine-tuned on the labelled training split via the same
:class:`~repro.core.finetuner.FineTuner` used by AimTS, so the comparison
isolates the representation-learning objective.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuner, FineTuneResult
from repro.data.dataset import TimeSeriesDataset
from repro.data.loaders import BatchIterator, build_pretraining_pool, z_normalize
from repro.encoders import ProjectionHead, TSEncoder
from repro.nn import Adam
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


@dataclass
class BaselineConfig:
    """Hyper-parameters shared by the neural baselines."""

    repr_dim: int = 32
    proj_dim: int = 16
    hidden_channels: int = 16
    depth: int = 2
    kernel_size: int = 3
    series_length: int = 96
    batch_size: int = 16
    learning_rate: float = 1e-3
    epochs: int = 2
    seed: int = 3407
    #: downstream aggregation of per-variable representations ("concat"/"mean"),
    #: mirroring AimTSConfig so comparisons stay architecture-fair.
    channel_aggregation: str = "concat"

    def __post_init__(self) -> None:
        for name in ("repr_dim", "proj_dim", "hidden_channels", "depth", "batch_size", "epochs"):
            check_positive(name, getattr(self, name))
        check_positive("learning_rate", self.learning_rate)
        if self.channel_aggregation not in ("concat", "mean"):
            raise ValueError(
                f"channel_aggregation must be 'concat' or 'mean', got {self.channel_aggregation!r}"
            )


class SelfSupervisedBaseline:
    """Base class for contrastive / reconstruction pre-training baselines.

    Subclasses implement :meth:`batch_loss`, which receives one mini-batch of
    raw series ``(B, M, T)`` and returns a scalar loss Tensor.
    """

    #: short name used in result tables
    name = "baseline"

    def __init__(self, config: BaselineConfig | None = None):
        self.config = config or BaselineConfig()
        self._rng = new_rng(self.config.seed)
        self.encoder = self._build_encoder()
        self.projection = ProjectionHead(
            self.config.repr_dim, self.config.proj_dim, rng=int(self._rng.integers(0, 2**31))
        )

    def _build_encoder(self) -> TSEncoder:
        return TSEncoder(
            hidden_channels=self.config.hidden_channels,
            repr_dim=self.config.repr_dim,
            depth=self.config.depth,
            kernel_size=self.config.kernel_size,
            channel_independent=True,
            rng=int(self._rng.integers(0, 2**31)),
        )

    # ------------------------------------------------------------- objectives
    def batch_loss(self, batch: np.ndarray) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def _auxiliary_modules(self) -> list:
        """Extra trainable modules beyond encoder + projection (overridable)."""
        return []

    def parameters(self):
        yield from self.encoder.parameters()
        yield from self.projection.parameters()
        for module in self._auxiliary_modules():
            yield from module.parameters()

    # ------------------------------------------------------------ pre-training
    def pretrain(self, X: np.ndarray, *, epochs: int | None = None, verbose: bool = False) -> list[float]:
        """Self-supervised pre-training on unlabeled series ``(N, M, T)``."""
        X = z_normalize(np.asarray(X, dtype=np.float64))
        epochs = epochs or self.config.epochs
        optimizer = Adam(list(self.parameters()), lr=self.config.learning_rate)
        iterator = BatchIterator(X, batch_size=self.config.batch_size, shuffle=True, seed=self._rng)
        curve = []
        for epoch in range(epochs):
            total, batches = 0.0, 0
            for batch, _ in iterator:
                if batch.shape[0] < 2:
                    continue
                optimizer.zero_grad()
                loss = self.batch_loss(batch)
                loss.backward()
                optimizer.step()
                total += float(loss.item())
                batches += 1
            curve.append(total / max(batches, 1))
            if verbose:
                print(f"[{self.name}] epoch {epoch + 1}/{epochs} loss={curve[-1]:.4f}")
        return curve

    def pretrain_multi_source(
        self,
        corpus: list[TimeSeriesDataset],
        *,
        n_variables: int = 1,
        max_samples: int | None = None,
        epochs: int | None = None,
    ) -> list[float]:
        """Pre-train on a merged multi-source pool (Fig. 8d protocol)."""
        pool = build_pretraining_pool(
            corpus,
            length=self.config.series_length,
            n_variables=n_variables,
            max_samples=max_samples,
            seed=self._rng,
        )
        return self.pretrain(pool, epochs=epochs)

    # ------------------------------------------------------------- evaluation
    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        finetune_config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
    ) -> FineTuneResult:
        """Fine-tune a classifier on the downstream dataset (encoder included)."""
        from repro.data.fewshot import few_shot_subset

        encoder_copy = copy.deepcopy(self.encoder)
        # the self-supervised objectives pre-train with "mean" aggregation (the
        # pool has a fixed number of variables); downstream classification uses
        # the configured aggregation so every method sees the same head setup
        encoder_copy.channel_aggregation = self.config.channel_aggregation
        finetuner = FineTuner(encoder_copy, dataset.n_classes, finetune_config)
        working = dataset
        if label_ratio is not None:
            train = few_shot_subset(dataset.train, label_ratio, seed=self.config.seed)
            working = TimeSeriesDataset(
                name=dataset.name,
                domain=dataset.domain,
                train=train,
                test=dataset.test,
                n_classes=dataset.n_classes,
                metadata=dict(dataset.metadata, label_ratio=label_ratio),
            )
        return finetuner.fit_and_evaluate(working)

    def fit_and_evaluate(
        self,
        dataset: TimeSeriesDataset,
        finetune_config: FineTuneConfig | None = None,
        *,
        pretrain_epochs: int | None = None,
    ) -> float:
        """Case-by-case protocol: pre-train on the dataset itself, then fine-tune."""
        self.pretrain(dataset.train.X, epochs=pretrain_epochs)
        return self.fine_tune(dataset, finetune_config).accuracy

    # ------------------------------------------------------------------ utils
    def encode(self, X: np.ndarray, *, batch_size: int = 64) -> np.ndarray:
        """Representations from the (pre-trained) encoder, without gradients."""
        from repro.nn.tensor import no_grad

        X = z_normalize(np.asarray(X, dtype=np.float64))
        outputs = []
        self.encoder.eval()
        with no_grad():
            for start in range(0, X.shape[0], batch_size):
                outputs.append(self.encoder(X[start : start + batch_size]).data)
        self.encoder.train()
        return np.concatenate(outputs, axis=0)
