"""Shared infrastructure for the self-supervised baselines.

Every neural baseline follows the same recipe: a TS encoder is pre-trained
with the baseline's own self-supervised objective (``batch_loss``), and a
classifier is then fine-tuned on the labelled training split via the same
:class:`~repro.core.finetuner.FineTuner` used by AimTS, so the comparison
isolates the representation-learning objective.

All baselines implement the :class:`repro.api.Estimator` contract:
``pretrain`` accepts either a raw ``(N, M, T)`` pool or a list of datasets
(multi-source), ``fine_tune`` returns a ``FineTuneResult`` and arms
``predict`` / ``predict_proba``, and ``save`` / ``load`` round-trip the whole
model through versioned full-bundle checkpoints.
"""

from __future__ import annotations

import copy
import dataclasses
import warnings
from dataclasses import dataclass

import numpy as np

from repro.api.estimator import FineTunedPredictorMixin
from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuner, FineTuneResult
from repro.data.dataset import TimeSeriesDataset
from repro.data.loaders import BatchIterator, build_pretraining_pool, z_normalize
from repro.encoders import ProjectionHead, TSEncoder
from repro.engine import (
    DtypePolicy,
    History,
    LossCurve,
    ProgressLogger,
    Trainer,
    TrainLoop,
)
from repro.nn import Adam, Workspace
from repro.nn.inference import DEFAULT_SERVING_BATCH_SIZE
from repro.nn.tensor import Tensor, default_dtype
from repro.utils.seeding import new_rng
from repro.utils.validation import check_in_options, check_positive


@dataclass
class BaselineConfig:
    """Hyper-parameters shared by the neural baselines."""

    repr_dim: int = 32
    proj_dim: int = 16
    hidden_channels: int = 16
    depth: int = 2
    kernel_size: int = 3
    series_length: int = 96
    batch_size: int = 16
    learning_rate: float = 1e-3
    epochs: int = 2
    seed: int = 3407
    #: downstream aggregation of per-variable representations ("concat"/"mean"),
    #: mirroring AimTSConfig so comparisons stay architecture-fair.
    channel_aggregation: str = "concat"
    #: compute-core precision ("float64" reference / "float32" fast path) and
    #: serving micro-batch size, mirroring AimTSConfig.
    compute_dtype: str = "float64"
    encode_batch_size: int = DEFAULT_SERVING_BATCH_SIZE
    #: sharded data-parallel pre-training (>= 2 spawns a gradient worker
    #: pool; 1 is the bit-exact sequential path) and the batched-augmentation
    #: toggle, mirroring AimTSConfig.
    n_workers: int = 1
    augment_batched: bool = True
    #: pipelined pre-training (producer processes + ring prefetch), mirroring
    #: AimTSConfig: n_producers >= 1 produces views ahead of the gradient
    #: step with per-batch streams keyed by SeedSequence([seed, epoch, step]);
    #: 0 keeps the classic bit-exact path; prefetch_depth 0 = inline reference.
    n_producers: int = 0
    prefetch_depth: int = 2
    #: pooled autograd workspaces across training steps (StepArena),
    #: mirroring AimTSConfig: values are bit-identical either way; False
    #: restores per-step allocation.
    step_arena: bool = True

    def __post_init__(self) -> None:
        from repro.core.config import _check_pipeline_knobs

        for name in ("repr_dim", "proj_dim", "hidden_channels", "depth", "batch_size", "epochs"):
            check_positive(name, getattr(self, name))
        check_positive("learning_rate", self.learning_rate)
        check_positive("encode_batch_size", self.encode_batch_size)
        check_positive("n_workers", self.n_workers)
        _check_pipeline_knobs(self.n_producers, self.prefetch_depth, self.n_workers)
        check_in_options("compute_dtype", self.compute_dtype, ("float32", "float64"))
        if self.channel_aggregation not in ("concat", "mean"):
            raise ValueError(
                f"channel_aggregation must be 'concat' or 'mean', got {self.channel_aggregation!r}"
            )


class SelfSupervisedBaseline(FineTunedPredictorMixin):
    """Base class for contrastive / reconstruction pre-training baselines.

    Subclasses implement :meth:`batch_loss`, which receives one mini-batch of
    raw series ``(B, M, T)`` and returns a scalar loss Tensor.
    """

    #: short name used in result tables
    name = "baseline"
    #: registry key (see :data:`repro.api.registry.ESTIMATORS`)
    api_name = "baseline"
    supports_pretraining = True
    #: whether the objective splits into a produce stage (augment, no
    #: parameters) and a loss stage — the pipelined pre-training contract
    #: (:meth:`pipeline_produce` / :meth:`pipeline_loss`); objectives whose
    #: stochastic draws happen inside the loss itself (e.g. TS2Vec crops)
    #: keep this False and reject ``n_producers >= 1``
    supports_pipeline = False

    def __init__(self, config: BaselineConfig | None = None):
        self.config = config or BaselineConfig()
        self._rng = new_rng(self.config.seed)
        self.dtype_policy = DtypePolicy(compute_dtype=self.config.compute_dtype)
        with default_dtype(self.dtype_policy.np_compute_dtype):
            self.encoder = self._build_encoder()
            self.projection = ProjectionHead(
                self.config.repr_dim, self.config.proj_dim, rng=int(self._rng.integers(0, 2**31))
            )
        #: reusable buffer arena of the fused :meth:`encode` serving path
        self._workspace = Workspace()
        self._pretrained = False
        self._finetuner: FineTuner | None = None
        self._label_map: np.ndarray | None = None
        #: the engine driver of the most recent / active pretrain() call
        self.trainer: Trainer | None = None
        #: persistent gradient worker pool (config.n_workers >= 2), spawned
        #: lazily on the first pretrain() — see :meth:`shutdown_workers`
        self._worker_pool = None
        #: persistent batch-producer pool (config.n_producers >= 1), spawned
        #: lazily on the first pretrain() — see :meth:`shutdown_workers`
        self._producer_pool = None
        #: optional :class:`repro.engine.parallel.RestartPolicy` armed on the
        #: pools (and the trainer's degradation ladder); set it before
        #: pretrain().  Kept off the config so injectable test clocks never
        #: travel to spawn children with the pickled config.
        self.restart_policy = None

    def _build_encoder(self) -> TSEncoder:
        return TSEncoder(
            hidden_channels=self.config.hidden_channels,
            repr_dim=self.config.repr_dim,
            depth=self.config.depth,
            kernel_size=self.config.kernel_size,
            channel_independent=True,
            rng=int(self._rng.integers(0, 2**31)),
        )

    @property
    def is_pretrained(self) -> bool:
        """Whether :meth:`pretrain` (or :meth:`load`) has been called."""
        return self._pretrained

    # ------------------------------------------------------------- objectives
    def batch_loss(self, batch: np.ndarray) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def _named_auxiliary_modules(self) -> dict:
        """Extra trainable modules beyond encoder + projection (overridable).

        Keys become checkpoint prefixes, so they must be stable across
        versions of a subclass.
        """
        return {}

    def _auxiliary_modules(self) -> list:
        return list(self._named_auxiliary_modules().values())

    def _manifest_init_kwargs(self) -> dict:
        """Constructor keywords (beyond the config) recorded in bundles."""
        return {}

    def parameters(self):
        yield from self.encoder.parameters()
        yield from self.projection.parameters()
        for module in self._auxiliary_modules():
            yield from module.parameters()

    # ------------------------------------------------------------ pre-training
    def _named_rngs(self) -> dict:
        """RNG streams snapshotted into trainer checkpoints (overridable).

        Subclasses with extra stochastic components (e.g. a masking op)
        extend this so checkpoint → resume restores every stream.
        """
        return {"baseline": self._rng}

    def _augmentations(self) -> list:
        """Every augmentation op this baseline holds (attribute scan)."""
        from repro.augmentations import Augmentation

        return [value for value in vars(self).values() if isinstance(value, Augmentation)]

    def _apply_augment_mode(self) -> None:
        """Propagate ``config.augment_batched`` to the held augmentation ops."""
        batched = getattr(self.config, "augment_batched", True)
        for augmentation in self._augmentations():
            augmentation.batched = batched

    def _reseed_for_worker(self, worker_index: int, n_workers: int) -> None:
        """Install the deterministic per-shard RNG streams in a worker replica.

        The objective stream and each held augmentation op get independent
        children of ``SeedSequence([seed, worker_index, n_workers])``; module
        weights are untouched (workers receive the parent's parameters over
        shared memory every step).
        """
        from repro.engine.parallel import derive_worker_seed

        root = derive_worker_seed(self.config.seed, worker_index, n_workers)
        self._install_rng_children(root)

    def _install_rng_children(self, root: np.random.SeedSequence) -> None:
        children = root.spawn(1 + len(self._augmentations()))
        self._rng = np.random.default_rng(children[0])
        for augmentation, child in zip(self._augmentations(), children[1:]):
            augmentation._rng = np.random.default_rng(child)

    def _reseed_for_step(self, epoch: int, step: int) -> None:
        """Install the step-keyed RNG streams of the pipelined produce stage.

        Derived from ``SeedSequence([seed, epoch, step])`` — a pure function
        of the schedule position, so any producer (or the inline reference)
        draws identical views for the same step.
        """
        from repro.engine.parallel import derive_step_seed

        self._install_rng_children(derive_step_seed(self.config.seed, epoch, step))

    # --------------------------------------------------------------- pipeline
    def pipeline_produce(self, batch: np.ndarray):  # pragma: no cover - interface
        """The produce stage of one step (augmented views; no parameters read)."""
        raise NotImplementedError

    def pipeline_loss(self, produced) -> Tensor:  # pragma: no cover - interface
        """The loss on a produced batch (parameters read, no augmentation RNG)."""
        raise NotImplementedError

    def pretrain(
        self,
        corpus_or_X: list[TimeSeriesDataset] | np.ndarray,
        *,
        epochs: int | None = None,
        max_samples: int | None = None,
        n_variables: int = 1,
        verbose: bool = False,
        callbacks=(),
    ) -> LossCurve:
        """Self-supervised pre-training via the unified training engine.

        Accepts either an unlabeled pool ``(N, M, T)`` (case-by-case
        paradigm) or a list of datasets, which are merged into a common-shape
        multi-source pool first (Fig. 8d paradigm).  Returns the per-epoch
        loss curve as a :class:`repro.engine.LossCurve` — still a
        ``list[float]`` (the seed return shape, kept as a deprecation shim)
        that additionally exposes the structured history.  ``callbacks``
        accepts extra :class:`repro.engine.Callback` instances.
        """
        if not isinstance(corpus_or_X, np.ndarray):
            pool = build_pretraining_pool(
                corpus_or_X,
                length=self.config.series_length,
                n_variables=n_variables,
                max_samples=max_samples,
                seed=self._rng,
            )
            return self.pretrain(pool, epochs=epochs, verbose=verbose, callbacks=callbacks)

        X = z_normalize(np.asarray(corpus_or_X, dtype=self.dtype_policy.np_compute_dtype))
        if max_samples is not None and X.shape[0] > max_samples:
            # seeded subsample rather than head-truncation: raw pools are often
            # class-sorted, matching build_pretraining_pool's semantics
            X = X[np.sort(self._rng.choice(X.shape[0], size=max_samples, replace=False))]
        epochs = epochs or self.config.epochs
        if self.config.n_producers >= 1 and not self.supports_pipeline:
            raise ValueError(
                f"{type(self).__name__} does not support pipelined pre-training "
                "(its stochastic draws happen inside the loss stage); set "
                "n_producers=0"
            )
        self._apply_augment_mode()
        optimizer = Adam(list(self.parameters()), lr=self.config.learning_rate)
        loop = _BaselinePretrainLoop(self, X)
        # a pool that broke (or was closed) in an earlier fit is replaced, not
        # reused — e.g. after the trainer degraded a pipelined fit to inline
        if self._worker_pool is not None and not self._worker_pool.usable:
            self._worker_pool.close()
            self._worker_pool = None
        if self._producer_pool is not None and not self._producer_pool.usable:
            self._producer_pool.close()
            self._producer_pool = None
        if self.config.n_workers > 1 and self._worker_pool is None:
            from repro.engine.parallel import GradientWorkerPool

            # persistent pool: spawned once, reused by every subsequent fit
            self._worker_pool = GradientWorkerPool(
                loop.worker_factory(),
                list(self.parameters()),
                n_workers=self.config.n_workers,
                compute_dtype=self.dtype_policy.compute_dtype,
                restart_policy=self.restart_policy,
                step_arena=self.config.step_arena,
            )
        if (
            self.config.n_producers >= 1
            and self.config.prefetch_depth >= 2
            and self._producer_pool is None
        ):
            from repro.engine.parallel import ProducerPool

            # persistent producers: replicas are pure functions of the config
            self._producer_pool = ProducerPool(
                loop.producer_factory(),
                n_producers=self.config.n_producers,
                prefetch_depth=self.config.prefetch_depth,
                compute_dtype=self.dtype_policy.compute_dtype,
                restart_policy=self.restart_policy,
            )
        history = History()
        engine_callbacks = list(callbacks)
        if verbose:
            engine_callbacks.insert(0, ProgressLogger(self.name))
        self.trainer = Trainer(
            loop,
            optimizer,
            callbacks=engine_callbacks,
            history=history,
            rng=self._rng,
            dtype_policy=self.dtype_policy,
            n_workers=self.config.n_workers,
            worker_pool=self._worker_pool,
            n_producers=self.config.n_producers,
            prefetch_depth=self.config.prefetch_depth,
            producer_pool=self._producer_pool,
            restart_policy=self.restart_policy,
            step_arena=self.config.step_arena,
        )
        self.trainer.fit(epochs)
        self._pretrained = True
        return LossCurve(history.curve("loss"), history)

    def shutdown_workers(self) -> None:
        """Stop the persistent worker and producer pools (idempotent no-op
        when sequential / already stopped)."""
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        if self._producer_pool is not None:
            self._producer_pool.close()
            self._producer_pool = None

    def pretrain_multi_source(
        self,
        corpus: list[TimeSeriesDataset],
        *,
        n_variables: int = 1,
        max_samples: int | None = None,
        epochs: int | None = None,
    ) -> list[float]:
        """Pre-train on a merged multi-source pool (alias of :meth:`pretrain`)."""
        return self.pretrain(
            corpus, n_variables=n_variables, max_samples=max_samples, epochs=epochs
        )

    # ------------------------------------------------------------- evaluation
    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        finetune_config: FineTuneConfig | None = None,
        *,
        label_ratio: float | None = None,
    ) -> FineTuneResult:
        """Fine-tune a classifier on the downstream dataset (encoder included)."""
        from repro.data.fewshot import few_shot_view

        encoder_copy = copy.deepcopy(self.encoder)
        # the self-supervised objectives pre-train with "mean" aggregation (the
        # pool has a fixed number of variables); downstream classification uses
        # the configured aggregation so every method sees the same head setup
        encoder_copy.channel_aggregation = self.config.channel_aggregation
        finetuner = FineTuner(encoder_copy, dataset.n_classes, finetune_config)
        working = few_shot_view(dataset, label_ratio, seed=self.config.seed)
        result = finetuner.fit_and_evaluate(working)
        self._finetuner = finetuner
        self._label_map = np.arange(dataset.n_classes, dtype=np.int64)
        return result

    def fit_and_evaluate(
        self,
        dataset: TimeSeriesDataset,
        finetune_config: FineTuneConfig | None = None,
        *,
        pretrain_epochs: int | None = None,
    ) -> float:
        """Deprecated: pre-train on the dataset itself, then fine-tune.

        Use ``pretrain(dataset.train.X)`` + ``fine_tune(dataset)`` directly,
        or :func:`repro.evaluation.run_protocol` for whole-archive runs.
        """
        warnings.warn(
            f"{type(self).__name__}.fit_and_evaluate is deprecated; call "
            "pretrain() + fine_tune() or use repro.evaluation.run_protocol",
            DeprecationWarning,
            stacklevel=2,
        )
        self.pretrain(dataset.train.X, epochs=pretrain_epochs)
        return self.fine_tune(dataset, finetune_config).accuracy

    # ------------------------------------------------------------ persistence
    def _model_modules(self) -> dict:
        return {
            "encoder": self.encoder,
            "projection": self.projection,
            **self._named_auxiliary_modules(),
        }

    def save(self, path) -> str:
        """Save a full-bundle checkpoint (see :mod:`repro.api.bundle`)."""
        from repro.api.bundle import save_bundle

        arrays: dict[str, np.ndarray] = {}
        for prefix, module in self._model_modules().items():
            for key, value in module.state_dict().items():
                arrays[f"model.{prefix}.{key}"] = value
        manifest = {
            "estimator": self.api_name,
            "config": dataclasses.asdict(self.config),
            "init_kwargs": self._manifest_init_kwargs(),
            "pretrained": self._pretrained,
        }
        if self.is_fitted:
            self._pack_finetuner(arrays, manifest)
        return save_bundle(path, arrays, manifest)

    def load(self, path) -> "SelfSupervisedBaseline":
        """Load a checkpoint saved by :meth:`save` into this instance."""
        from repro.api.bundle import load_bundle

        return self._load_from_state(*load_bundle(path))

    def _load_from_state(self, state: dict, manifest: dict) -> "SelfSupervisedBaseline":
        """Restore from already-read bundle contents (single-read load path)."""
        from repro.api.bundle import sub_state

        for prefix, module in self._model_modules().items():
            module.load_state_dict(sub_state(state, f"model.{prefix}"))
        self._pretrained = bool(manifest.get("pretrained", True))
        finetune = manifest.get("finetune")
        if finetune is None:
            # a pretrain-only bundle resets any classifier fitted before load —
            # it was trained against weights this instance no longer has
            self._finetuner = None
            self._label_map = None
        else:
            finetuner = FineTuner(
                copy.deepcopy(self.encoder),
                finetune["n_classes"],
                FineTuneConfig(**finetune["config"]),
            )
            self._restore_finetuner(finetuner, state, finetune)
        return self

    # ------------------------------------------------------------------ utils
    def encode(
        self, X: np.ndarray, *, batch_size: int | None = None, fused: bool = True
    ) -> np.ndarray:
        """Representations from the (pre-trained) encoder, without gradients.

        Micro-batches of ``batch_size`` (default ``config.encode_batch_size``)
        stream through the fused no-grad inference path in the configured
        compute dtype; ``fused=False`` runs the plain eval-mode autograd
        forward instead.
        """
        from repro.nn.inference import batched_infer

        return batched_infer(
            self.encoder,
            z_normalize(np.asarray(X, dtype=self.dtype_policy.np_compute_dtype)),
            batch_size=batch_size or self.config.encode_batch_size,
            workspace=self._workspace,
            fused=fused,
        )


def _baseline_worker_replica(
    baseline_cls, config: BaselineConfig, init_kwargs: dict, worker_index: int, n_workers: int
):
    """Build one gradient-worker replica of a baseline objective.

    Module-level so spawn workers can unpickle it; weights are overwritten by
    the parent's shared-memory broadcast each step, while the stochastic
    streams come from the deterministic per-shard derivation.
    """
    baseline = baseline_cls(config, **init_kwargs)
    baseline._apply_augment_mode()
    baseline._reseed_for_worker(worker_index, n_workers)
    loop = _BaselinePretrainLoop(baseline, None)
    # remember the shard identity so the pool can reseed the replica per step
    # (derive_worker_step_seed) — the bit-identical respawn/replay contract
    loop._worker_key = (int(worker_index), int(n_workers))
    return loop


class _BaselineProducer:
    """Picklable produce-stage replica of a pipelined baseline objective.

    Holds a full baseline instance (cheap at baseline model sizes) but only
    ever runs its parameter-free :meth:`~SelfSupervisedBaseline.pipeline_produce`
    stage, with RNG streams rekeyed per step so every replica — and the inline
    sequential reference — draws identical views for the same ``(epoch, step)``.
    """

    def __init__(self, baseline: SelfSupervisedBaseline):
        self.baseline = baseline

    def produce(self, epoch: int, step: int, payload):
        indices, series = payload
        self.baseline._reseed_for_step(epoch, step)
        return self.baseline.pipeline_produce(series)


def _baseline_producer_replica(
    baseline_cls, config: BaselineConfig, init_kwargs: dict, producer_index: int
):
    """Build one batch-producer replica of a pipelined baseline objective.

    ``producer_index`` is deliberately unused: replicas are interchangeable
    (determinism is keyed by schedule position, not by which producer ran
    the step), which is what lets the pool grow and shrink between epochs.
    """
    baseline = baseline_cls(config, **init_kwargs)
    baseline._apply_augment_mode()
    return _BaselineProducer(baseline)


class _BaselinePretrainLoop(TrainLoop):
    """Engine adapter for the self-supervised baseline objectives."""

    #: contrastive objectives need at least a pair of samples per shard
    shard_min_samples = 2

    #: ``(worker_index, n_workers)`` in worker-replica mode (set by
    #: :func:`_baseline_worker_replica`); enables per-step reseeding
    _worker_key = None

    def __init__(self, baseline: SelfSupervisedBaseline, X: np.ndarray | None):
        self.baseline = baseline
        # shares the baseline's generator so each epoch's shuffle (and any
        # rng the objective itself consumes, e.g. TS2Vec crop offsets)
        # follows the exact stream positions the seed loop did; worker
        # replicas (X=None) only serve batch_loss
        self.iterator = (
            None
            if X is None
            else BatchIterator(
                X, batch_size=baseline.config.batch_size, shuffle=True, seed=baseline._rng
            )
        )

    def named_modules(self) -> dict:
        return dict(self.baseline._model_modules())

    def named_rngs(self) -> dict:
        return dict(self.baseline._named_rngs())

    def worker_factory(self):
        import functools

        return functools.partial(
            _baseline_worker_replica,
            type(self.baseline),
            self.baseline.config,
            self.baseline._manifest_init_kwargs(),
        )

    def reseed_for_step(self, epoch: int, step: int) -> None:
        """Re-derive the replica streams from the (shard, step) key.

        Called by the gradient worker before every ``batch_loss``: each
        sharded step becomes a pure function of ``(seed, worker_index,
        n_workers, epoch, step)``, so a respawned worker recomputes the
        identical gradient for a replayed step.
        """
        from repro.engine.parallel import derive_worker_step_seed

        if self._worker_key is None:
            return
        worker_index, n_workers = self._worker_key
        self.baseline._install_rng_children(
            derive_worker_step_seed(
                self.baseline.config.seed, worker_index, n_workers, epoch, step
            )
        )

    def make_batches(self, rng, epoch):
        if self.iterator is None:
            raise RuntimeError("worker-replica loops only provide batch_loss()")
        for batch, _ in self.iterator:
            if batch.shape[0] < 2:
                continue  # contrastive objectives need at least two samples
            yield batch

    def batch_loss(self, batch) -> Tensor:
        return self.baseline.batch_loss(batch)

    # --------------------------------------------------- pipelined pre-training
    def producer_factory(self):
        if not self.baseline.supports_pipeline:
            return None
        import functools

        return functools.partial(
            _baseline_producer_replica,
            type(self.baseline),
            self.baseline.config,
            self.baseline._manifest_init_kwargs(),
        )

    def pipeline_seed(self):
        return self.baseline.config.seed

    def pipeline_batches(self, epoch):
        from repro.data.loaders import epoch_index_batches

        X = self.iterator.X
        corpus = self.iterator.corpus
        for indices in epoch_index_batches(
            X, self.baseline.config.batch_size, epoch=epoch, seed=self.baseline.config.seed
        ):
            if indices.size < 2:
                continue  # contrastive objectives need at least two samples
            series = corpus.gather(indices) if corpus is not None else X[indices]
            yield indices, np.ascontiguousarray(
                series, dtype=self.baseline.dtype_policy.np_compute_dtype
            )

    def consume_batch(self, produced) -> Tensor:
        return self.baseline.pipeline_loss(produced)

    def pipeline_slot_nbytes(self) -> int:
        X = self.iterator.X
        if self.iterator.corpus is not None:
            n_variables, length = self.iterator.corpus.sample_shape
        else:
            n_variables, length = int(X.shape[1]), int(X.shape[2])
        itemsize = np.dtype(self.baseline.dtype_policy.np_compute_dtype).itemsize
        sample = n_variables * length * itemsize
        # produced payloads are (typically) two augmented views of the batch
        return 2 * self.baseline.config.batch_size * sample
