"""Multi-source adaptation "foundation model" baselines (Table IV / V).

The paper compares against MOMENT (Goswami et al., 2024) and UniTS (Gao et
al., 2024), both of which pre-train one model on a large multi-source corpus
and adapt it to downstream classification.  The authors' checkpoints are not
available offline, so two mechanistically analogous baselines are provided:

* :class:`MomentLike` — masked-reconstruction pre-training (MOMENT's masked
  time-series modeling objective) on the merged multi-source pool, followed by
  fine-tuning with a classifier head.
* :class:`UniTSLike` — a unified multi-task objective combining masked
  reconstruction with instance discrimination across the pool (UniTS pre-trains
  jointly over forecasting and classification datasets; the instance
  discrimination term plays the role of the classification-task supervision).

Both reuse :class:`~repro.baselines.base.SelfSupervisedBaseline`, so the
downstream protocol (full fine-tuning + MLP classifier) is identical to
AimTS's, isolating the effect of the pre-training objective.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.augmentations import Masking
from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import nt_xent
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng


class _ReconstructionDecoder(nn.Module):
    """MLP decoder from a pooled representation back to the raw series."""

    def __init__(self, repr_dim: int, series_length: int, rng=None):
        super().__init__()
        self.series_length = series_length
        self.network = nn.MLP(repr_dim, [repr_dim * 2], series_length, rng=rng)

    def forward(self, representation: Tensor) -> Tensor:
        return self.network(representation)


class MomentLike(SelfSupervisedBaseline):
    """Masked time-series reconstruction pre-training (MOMENT-style)."""

    name = "MOMENT"
    api_name = "moment"

    def __init__(self, config: BaselineConfig | None = None, *, mask_ratio: float = 0.3):
        super().__init__(config)
        rng = new_rng(int(self._rng.integers(0, 2**31)))
        self.masking = Masking(mask_ratio=mask_ratio, seed=rng)
        self.decoder = _ReconstructionDecoder(
            self.config.repr_dim, self.config.series_length, rng=int(self._rng.integers(0, 2**31))
        )

    def _named_auxiliary_modules(self) -> dict:
        return {"decoder": self.decoder}

    def _named_rngs(self) -> dict:
        rngs = super()._named_rngs()
        rngs["masking"] = self.masking._rng
        return rngs

    def _manifest_init_kwargs(self) -> dict:
        return {"mask_ratio": self.masking.mask_ratio}

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        """Reconstruct the (first variable of the) original series from a masked view."""
        target_length = self.decoder.series_length
        if batch.shape[2] != target_length:
            # the decoder is sized for the pre-training pool length; resample
            from repro.data.loaders import pad_or_truncate

            batch = pad_or_truncate(batch, target_length)
        masked = self.masking(batch)
        representation = self.encoder(masked)
        reconstruction = self.decoder(representation)
        target = batch.mean(axis=1)  # (B, T): channel-averaged target
        return F.mse_loss(reconstruction, target)


class UniTSLike(MomentLike):
    """Unified reconstruction + instance-discrimination pre-training (UniTS-style)."""

    name = "UniTS"
    api_name = "units"

    def __init__(
        self,
        config: BaselineConfig | None = None,
        *,
        mask_ratio: float = 0.4,
        contrastive_weight: float = 0.5,
        tau: float = 0.2,
    ):
        super().__init__(config, mask_ratio=mask_ratio)
        self.contrastive_weight = contrastive_weight
        self.tau = tau

    def _manifest_init_kwargs(self) -> dict:
        return {
            "mask_ratio": self.masking.mask_ratio,
            "contrastive_weight": self.contrastive_weight,
            "tau": self.tau,
        }

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        reconstruction_loss = super().batch_loss(batch)
        view_a = self.masking(batch)
        view_b = self.masking(batch)
        proj_a = self.projection(self.encoder(view_a))
        proj_b = self.projection(self.encoder(view_b))
        contrastive_loss = nt_xent(proj_a, proj_b, tau=self.tau)
        return reconstruction_loss * (1.0 - self.contrastive_weight) + contrastive_loss * self.contrastive_weight
