"""TS2Vec-style contrastive baseline (Yue et al., AAAI 2022).

TS2Vec contrasts representations of two *augmented context views*: two
overlapping crops of the same series whose shared region should produce
consistent representations, with other samples in the batch as negatives.
This reimplementation keeps the overlapping-crop view construction and the
instance-level part of the hierarchical loss (the timestamp-level terms
collapse once representations are pooled over time, which is what our
fixed-size encoder produces).

It also exposes :meth:`SelfSupervisedBaseline.pretrain_multi_source`, used by
the Fig. 8d experiment to show that naive multi-source pre-training of TS2Vec
suffers negative transfer while AimTS does not.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import crop_window, nt_xent
from repro.nn.tensor import Tensor


class TS2Vec(SelfSupervisedBaseline):
    """Overlapping-crop contextual contrastive learning."""

    name = "TS2Vec"
    api_name = "ts2vec"

    def __init__(self, config: BaselineConfig | None = None, *, tau: float = 0.2, min_overlap: float = 0.3):
        super().__init__(config)
        self.tau = tau
        self.min_overlap = min_overlap

    def _manifest_init_kwargs(self) -> dict:
        return {"tau": self.tau, "min_overlap": self.min_overlap}

    def _sample_overlapping_crops(self, batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Two crops with a guaranteed overlapping region (the context views)."""
        T = batch.shape[2]
        window = max(8, int(round(0.7 * T)))
        max_offset = max(1, int((1.0 - self.min_overlap) * window))
        start_a = int(self._rng.integers(0, max(1, T - window + 1)))
        offset = int(self._rng.integers(0, max_offset))
        start_b = min(max(0, start_a + offset), max(0, T - window))
        return crop_window(batch, start_a, window), crop_window(batch, start_b, window)

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        crop_a, crop_b = self._sample_overlapping_crops(batch)
        proj_a = self.projection(self.encoder(crop_a))
        proj_b = self.projection(self.encoder(crop_b))
        return nt_xent(proj_a, proj_b, tau=self.tau)
