"""SimCLR adapted to time series (Chen et al., ICML 2020).

Two random augmented views of every sample are produced with a fixed
augmentation pipeline (jitter → scaling → time-warp) and contrasted with the
NT-Xent loss.  This is the "plain augmentation contrastive" control that the
single-source generalization comparison (Table III) includes.
"""

from __future__ import annotations

import numpy as np

from repro.augmentations import Compose, Jitter, Scaling, TimeWarp
from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import nt_xent
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng


class SimCLR(SelfSupervisedBaseline):
    """Two-view NT-Xent contrastive learning with a fixed augmentation pipeline."""

    name = "SimCLR"
    api_name = "simclr"
    #: all stochastic draws happen in the two augmentation calls, so the
    #: objective splits cleanly into produce (views) and loss (NT-Xent) stages
    supports_pipeline = True

    def __init__(self, config: BaselineConfig | None = None, *, tau: float = 0.2):
        super().__init__(config)
        self.tau = tau
        rng = new_rng(int(self._rng.integers(0, 2**31)))
        self.augmentation = Compose(
            [Jitter(sigma=0.08, seed=rng), Scaling(sigma=0.1, seed=rng), TimeWarp(strength=0.1, seed=rng)]
        )

    def _manifest_init_kwargs(self) -> dict:
        return {"tau": self.tau}

    def pipeline_produce(self, batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        view_a = self.augmentation(batch)
        view_b = self.augmentation(batch)
        return view_a, view_b

    def pipeline_loss(self, produced: tuple[np.ndarray, np.ndarray]) -> Tensor:
        view_a, view_b = produced
        proj_a = self.projection(self.encoder(view_a))
        proj_b = self.projection(self.encoder(view_b))
        return nt_xent(proj_a, proj_b, tau=self.tau)

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        # the classic path is exactly produce → loss, so op and RNG order stay
        # bit-identical whether or not the produce stage runs in a producer
        return self.pipeline_loss(self.pipeline_produce(batch))
