"""SimCLR adapted to time series (Chen et al., ICML 2020).

Two random augmented views of every sample are produced with a fixed
augmentation pipeline (jitter → scaling → time-warp) and contrasted with the
NT-Xent loss.  This is the "plain augmentation contrastive" control that the
single-source generalization comparison (Table III) includes.
"""

from __future__ import annotations

import numpy as np

from repro.augmentations import Compose, Jitter, Scaling, TimeWarp
from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import nt_xent
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng


class SimCLR(SelfSupervisedBaseline):
    """Two-view NT-Xent contrastive learning with a fixed augmentation pipeline."""

    name = "SimCLR"
    api_name = "simclr"

    def __init__(self, config: BaselineConfig | None = None, *, tau: float = 0.2):
        super().__init__(config)
        self.tau = tau
        rng = new_rng(int(self._rng.integers(0, 2**31)))
        self.augmentation = Compose(
            [Jitter(sigma=0.08, seed=rng), Scaling(sigma=0.1, seed=rng), TimeWarp(strength=0.1, seed=rng)]
        )

    def _manifest_init_kwargs(self) -> dict:
        return {"tau": self.tau}

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        view_a = self.augmentation(batch)
        view_b = self.augmentation(batch)
        proj_a = self.projection(self.encoder(view_a))
        proj_b = self.projection(self.encoder(view_b))
        return nt_xent(proj_a, proj_b, tau=self.tau)
