"""``repro.baselines`` — reimplementations of the methods AimTS is compared against.

The paper's evaluation spans three paradigms (Fig. 1); each baseline here is a
small-scale but mechanistically faithful reimplementation of one comparison
method (or family of methods):

Case-by-case representation learning (Table I):
    * :class:`~repro.baselines.ts2vec.TS2Vec` — hierarchical/temporal contrastive
      learning over overlapping crops.
    * :class:`~repro.baselines.tstcc.TSTCC` — weak/strong augmented views with
      cross-view prediction and contextual contrasting.
    * :class:`~repro.baselines.tloss.TLoss` — triplet loss with random subseries.
    * :class:`~repro.baselines.tnc.TNC` — temporal neighborhood coding.
    * :class:`~repro.baselines.simclr.SimCLR` — NT-Xent over two augmented views.

Case-by-case supervised methods (Table II):
    * :class:`~repro.baselines.supervised.SupervisedCNN` — a TS-encoder +
      classifier trained end-to-end (stands for TimesNet/OS-CNN/TapNet-style
      deep supervised models).
    * :class:`~repro.baselines.supervised.LinearClassifier` — DLinear-style
      linear model on the flattened series.
    * :class:`~repro.baselines.rocket.Rocket` / ``MiniRocket`` — random
      convolutional kernel features + ridge classifier.

Multi-source adaptation foundation models (Table IV / V):
    * :class:`~repro.baselines.foundation.MomentLike` — masked-reconstruction
      pre-training on a multi-source pool (MOMENT-style).
    * :class:`~repro.baselines.foundation.UniTSLike` — multi-source pre-training
      with a joint reconstruction + instance-discrimination objective
      (UniTS-style unified model).
"""

from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.foundation import MomentLike, UniTSLike
from repro.baselines.rocket import MiniRocket, Rocket
from repro.baselines.simclr import SimCLR
from repro.baselines.supervised import LinearClassifier, SupervisedCNN
from repro.baselines.tloss import TLoss
from repro.baselines.tnc import TNC
from repro.baselines.ts2vec import TS2Vec
from repro.baselines.tstcc import TSTCC

__all__ = [
    "BaselineConfig",
    "SelfSupervisedBaseline",
    "TS2Vec",
    "TSTCC",
    "TLoss",
    "TNC",
    "SimCLR",
    "SupervisedCNN",
    "LinearClassifier",
    "Rocket",
    "MiniRocket",
    "MomentLike",
    "UniTSLike",
]
