"""Small shared loss helpers for the contrastive baselines."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def nt_xent(view_a: Tensor, view_b: Tensor, tau: float = 0.2) -> Tensor:
    """NT-Xent / InfoNCE between two aligned batches of projections.

    ``view_a[i]`` and ``view_b[i]`` form the positive pair; all other samples
    in either view are negatives.  Both inputs are L2-normalised internally.
    """
    view_a = F.l2_normalize(view_a, axis=-1)
    view_b = F.l2_normalize(view_b, axis=-1)
    batch = view_a.shape[0]
    eye = Tensor(np.eye(batch))
    sims_ab = (view_a @ view_b.transpose()) * (1.0 / tau)
    sims_aa = (view_a @ view_a.transpose()) * (1.0 / tau)
    positives = (sims_ab * eye).sum(axis=1)
    denominator = (sims_ab.exp() + sims_aa.exp() * (1.0 - eye)).sum(axis=1)
    loss_a = denominator.log() - positives
    sims_ba = sims_ab.transpose()
    sims_bb = (view_b @ view_b.transpose()) * (1.0 / tau)
    denominator_b = (sims_ba.exp() + sims_bb.exp() * (1.0 - eye)).sum(axis=1)
    loss_b = denominator_b.log() - positives
    return (loss_a + loss_b).mean() * 0.5


def random_crop(batch: np.ndarray, crop_ratio: float, rng: np.random.Generator) -> np.ndarray:
    """Crop a random window (same length for the whole batch) and resample back.

    Keeping the output length equal to the input keeps the encoders happy and
    matches how subseries-based methods (T-Loss, TS2Vec) are adapted to a
    fixed-length encoder.
    """
    B, M, T = batch.shape
    window = max(4, int(round(crop_ratio * T)))
    out = np.empty_like(batch)
    grid = np.linspace(0.0, 1.0, T)
    for i in range(B):
        start = int(rng.integers(0, T - window + 1))
        crop = batch[i, :, start : start + window]
        crop_grid = np.linspace(0.0, 1.0, window)
        for m in range(M):
            out[i, m] = np.interp(grid, crop_grid, crop[m])
    return out


def crop_window(batch: np.ndarray, start: int, window: int) -> np.ndarray:
    """Extract a fixed window and linearly resample it to the original length."""
    B, M, T = batch.shape
    stop = min(start + window, T)
    crop = batch[:, :, start:stop]
    grid = np.linspace(0.0, 1.0, T)
    crop_grid = np.linspace(0.0, 1.0, crop.shape[2])
    out = np.empty_like(batch)
    for i in range(B):
        for m in range(M):
            out[i, m] = np.interp(grid, crop_grid, crop[i, m])
    return out
