"""ROCKET and MiniRocket baselines (Dempster et al., DMKD 2020).

ROCKET convolves the series with a large bank of random kernels and feeds two
pooled features per kernel — the maximum response and the proportion of
positive values (PPV) — into a linear (ridge) classifier.  MiniRocket uses a
fixed small kernel alphabet with random dilations and biases and PPV-only
features.  Both are implemented directly in NumPy (no autograd needed).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.loaders import z_normalize
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


def _ridge_fit(features: np.ndarray, y: np.ndarray, ridge: float) -> tuple[np.ndarray, int]:
    n_classes = int(np.max(y)) + 1
    targets = np.eye(n_classes)[np.asarray(y, dtype=np.int64)]
    design = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)
    gram = design.T @ design + ridge * np.eye(design.shape[1])
    weights = np.linalg.solve(gram, design.T @ targets)
    return weights, n_classes


def _ridge_predict(features: np.ndarray, weights: np.ndarray) -> np.ndarray:
    design = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)
    return (design @ weights).argmax(axis=1)


class Rocket:
    """Random convolutional kernel transform + ridge classifier."""

    name = "Rocket"

    def __init__(self, n_kernels: int = 200, *, ridge: float = 1.0, seed: int = 3407):
        check_positive("n_kernels", n_kernels)
        check_positive("ridge", ridge)
        self.n_kernels = n_kernels
        self.ridge = ridge
        self.seed = seed
        self._kernels: list[tuple[np.ndarray, float, int, int]] = []
        self._weights: np.ndarray | None = None
        self._feature_stats: tuple[np.ndarray, np.ndarray] | None = None

    def _generate_kernels(self, length: int) -> None:
        rng = new_rng(self.seed)
        self._kernels = []
        for _ in range(self.n_kernels):
            kernel_length = int(rng.choice([7, 9, 11]))
            weights = rng.normal(0.0, 1.0, kernel_length)
            weights = weights - weights.mean()
            bias = float(rng.uniform(-1.0, 1.0))
            max_exponent = max(0, int(np.log2((length - 1) / (kernel_length - 1))) if length > kernel_length else 0)
            dilation = int(2 ** rng.integers(0, max_exponent + 1))
            padding = ((kernel_length - 1) * dilation) // 2 if rng.random() < 0.5 else 0
            self._kernels.append((weights, bias, dilation, padding))

    def _transform(self, X: np.ndarray) -> np.ndarray:
        """Compute (max, PPV) features for every kernel, averaged over variables."""
        X = z_normalize(np.asarray(X, dtype=np.float64))
        n, m, t = X.shape
        features = np.zeros((n, 2 * len(self._kernels)))
        for k, (weights, bias, dilation, padding) in enumerate(self._kernels):
            kernel_length = weights.shape[0]
            span = (kernel_length - 1) * dilation + 1
            padded = np.pad(X, ((0, 0), (0, 0), (padding, padding))) if padding else X
            if padded.shape[2] < span:
                padded = np.pad(padded, ((0, 0), (0, 0), (0, span - padded.shape[2])))
            windows = np.lib.stride_tricks.sliding_window_view(padded, span, axis=2)[:, :, :, ::dilation]
            responses = np.einsum("nmtk,k->nmt", windows, weights) + bias
            features[:, 2 * k] = responses.max(axis=(1, 2))
            features[:, 2 * k + 1] = (responses > 0).mean(axis=(1, 2))
        return features

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Rocket":
        """Generate kernels, transform the training data and fit the ridge head."""
        self._generate_kernels(X.shape[2])
        features = self._transform(X)
        mean, std = features.mean(axis=0), features.std(axis=0) + 1e-8
        self._feature_stats = (mean, std)
        self._weights, _ = _ridge_fit((features - mean) / std, y, self.ridge)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None or self._feature_stats is None:
            raise RuntimeError("call fit() before predict()")
        mean, std = self._feature_stats
        features = (self._transform(X) - mean) / std
        return _ridge_predict(features, self._weights)

    def fit_and_evaluate(self, dataset: TimeSeriesDataset) -> float:
        """Train on ``dataset.train`` and return test accuracy."""
        self.fit(dataset.train.X, dataset.train.y)
        return float((self.predict(dataset.test.X) == dataset.test.y).mean())


class MiniRocket(Rocket):
    """MiniRocket: fixed two-valued kernels, random dilations, PPV-only features."""

    name = "Minirocket"

    def _generate_kernels(self, length: int) -> None:
        rng = new_rng(self.seed)
        self._kernels = []
        kernel_length = 9
        for _ in range(self.n_kernels):
            weights = np.full(kernel_length, -1.0)
            high_positions = rng.choice(kernel_length, size=3, replace=False)
            weights[high_positions] = 2.0
            bias = float(rng.normal(0.0, 1.0))
            max_exponent = max(0, int(np.log2((length - 1) / (kernel_length - 1))) if length > kernel_length else 0)
            dilation = int(2 ** rng.integers(0, max_exponent + 1))
            padding = ((kernel_length - 1) * dilation) // 2
            self._kernels.append((weights, bias, dilation, padding))

    def _transform(self, X: np.ndarray) -> np.ndarray:
        full = super()._transform(X)
        # keep only the PPV features (odd columns), as in MiniRocket
        return full[:, 1::2]
