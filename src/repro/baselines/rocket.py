"""ROCKET and MiniRocket baselines (Dempster et al., DMKD 2020).

ROCKET convolves the series with a large bank of random kernels and feeds two
pooled features per kernel — the maximum response and the proportion of
positive values (PPV) — into a linear (ridge) classifier.  MiniRocket uses a
fixed small kernel alphabet with random dilations and biases and PPV-only
features.  Both are implemented directly in NumPy (no autograd needed) and
implement the :class:`repro.api.Estimator` contract (``pretrain`` is a no-op;
``fine_tune`` fits the kernels + ridge head on the labelled training split).
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.estimator import RidgePredictorMixin
from repro.core.finetuner import FineTuneResult
from repro.data.dataset import TimeSeriesDataset
from repro.data.fewshot import few_shot_view
from repro.data.loaders import z_normalize
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


def _ridge_fit(features: np.ndarray, y: np.ndarray, ridge: float) -> tuple[np.ndarray, int]:
    n_classes = int(np.max(y)) + 1
    targets = np.eye(n_classes)[np.asarray(y, dtype=np.int64)]
    design = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)
    gram = design.T @ design + ridge * np.eye(design.shape[1])
    weights = np.linalg.solve(gram, design.T @ targets)
    return weights, n_classes


def _ridge_scores(features: np.ndarray, weights: np.ndarray) -> np.ndarray:
    design = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)
    return design @ weights


class Rocket(RidgePredictorMixin):
    """Random convolutional kernel transform + ridge classifier."""

    name = "Rocket"
    api_name = "rocket"
    supports_pretraining = False

    def __init__(self, n_kernels: int = 200, *, ridge: float = 1.0, seed: int = 3407):
        check_positive("n_kernels", n_kernels)
        check_positive("ridge", ridge)
        self.n_kernels = n_kernels
        self.ridge = ridge
        self.seed = seed
        self._kernels: list[tuple[np.ndarray, float, int, int]] = []
        self._weights: np.ndarray | None = None
        self._feature_stats: tuple[np.ndarray, np.ndarray] | None = None
        self._label_map: np.ndarray | None = None

    def _generate_kernels(self, length: int) -> None:
        rng = new_rng(self.seed)
        self._kernels = []
        for _ in range(self.n_kernels):
            kernel_length = int(rng.choice([7, 9, 11]))
            weights = rng.normal(0.0, 1.0, kernel_length)
            weights = weights - weights.mean()
            bias = float(rng.uniform(-1.0, 1.0))
            max_exponent = max(0, int(np.log2((length - 1) / (kernel_length - 1))) if length > kernel_length else 0)
            dilation = int(2 ** rng.integers(0, max_exponent + 1))
            padding = ((kernel_length - 1) * dilation) // 2 if rng.random() < 0.5 else 0
            self._kernels.append((weights, bias, dilation, padding))

    def _transform(self, X: np.ndarray) -> np.ndarray:
        """Compute (max, PPV) features for every kernel, averaged over variables."""
        X = z_normalize(np.asarray(X, dtype=np.float64))
        n, m, t = X.shape
        features = np.zeros((n, 2 * len(self._kernels)))
        for k, (weights, bias, dilation, padding) in enumerate(self._kernels):
            kernel_length = weights.shape[0]
            span = (kernel_length - 1) * dilation + 1
            padded = np.pad(X, ((0, 0), (0, 0), (padding, padding))) if padding else X
            if padded.shape[2] < span:
                padded = np.pad(padded, ((0, 0), (0, 0), (0, span - padded.shape[2])))
            windows = np.lib.stride_tricks.sliding_window_view(padded, span, axis=2)[:, :, :, ::dilation]
            responses = np.einsum("nmtk,k->nmt", windows, weights) + bias
            features[:, 2 * k] = responses.max(axis=(1, 2))
            features[:, 2 * k + 1] = (responses > 0).mean(axis=(1, 2))
        return features

    # --------------------------------------------------------------- contract
    def pretrain(self, corpus_or_X=None, **kwargs) -> None:
        """No-op: the random-kernel transform has no pre-training stage."""
        return None

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Normalised random-kernel features (requires a fitted model)."""
        if self._feature_stats is None:
            raise RuntimeError("call fit() or fine_tune() before encode()")
        mean, std = self._feature_stats
        return (self._transform(X) - mean) / std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Rocket":
        """Generate kernels, transform the training data and fit the ridge head."""
        self._generate_kernels(X.shape[2])
        features = self._transform(X)
        mean, std = features.mean(axis=0), features.std(axis=0) + 1e-8
        self._feature_stats = (mean, std)
        self._weights, _ = _ridge_fit((features - mean) / std, y, self.ridge)
        self._label_map = None  # any previous fine_tune label map is stale now
        return self

    def _decision_scores(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None or self._feature_stats is None:
            raise RuntimeError("call fit() before predict()")
        return _ridge_scores(self.encode(X), self._weights)

    def fine_tune(
        self,
        dataset: TimeSeriesDataset,
        finetune_config=None,
        *,
        label_ratio: float | None = None,
    ) -> FineTuneResult:
        """Fit on ``dataset.train`` and score ``dataset.test``; config is unused."""
        working = few_shot_view(dataset, label_ratio, seed=self.seed)
        working_train = working.train
        start = time.perf_counter()
        self.fit(working_train.X, working_train.y)
        elapsed = time.perf_counter() - start
        self._label_map = np.arange(max(dataset.n_classes, self._weights.shape[1]), dtype=np.int64)
        return FineTuneResult(
            dataset=dataset.name,
            accuracy=float((self.predict(dataset.test.X) == dataset.test.y).mean()),
            train_accuracy=float((self.predict(working_train.X) == working_train.y).mean()),
            # the ridge head is fitted in closed form: no epoch loop runs
            n_epochs=0,
            fit_seconds=elapsed,
            history=[],
        )

    def fit_and_evaluate(self, dataset: TimeSeriesDataset) -> float:
        """Train on ``dataset.train`` and return test accuracy."""
        self.fit(dataset.train.X, dataset.train.y)
        return float((self.predict(dataset.test.X) == dataset.test.y).mean())

    # ------------------------------------------------------------ persistence
    def save(self, path) -> str:
        """Save a full-bundle checkpoint (see :mod:`repro.api.bundle`)."""
        from repro.api.bundle import save_bundle

        if self._weights is None or self._feature_stats is None:
            raise RuntimeError("call fit() or fine_tune() before save()")
        arrays: dict[str, np.ndarray] = {
            "ridge_weights": self._weights,
            "feature_mean": self._feature_stats[0],
            "feature_std": self._feature_stats[1],
            "kernel_biases": np.array([bias for _, bias, _, _ in self._kernels]),
            "kernel_dilations": np.array([d for _, _, d, _ in self._kernels], dtype=np.int64),
            "kernel_paddings": np.array([p for _, _, _, p in self._kernels], dtype=np.int64),
        }
        for index, (weights, _, _, _) in enumerate(self._kernels):
            arrays[f"kernel.{index}.weights"] = weights
        if self._label_map is not None:
            arrays["label_map"] = np.asarray(self._label_map, dtype=np.int64)
        manifest = {
            "estimator": self.api_name,
            "init_kwargs": {"n_kernels": self.n_kernels, "ridge": self.ridge, "seed": self.seed},
        }
        return save_bundle(path, arrays, manifest)

    def load(self, path) -> "Rocket":
        """Load a checkpoint saved by :meth:`save` into this instance."""
        from repro.api.bundle import load_bundle

        return self._load_from_state(*load_bundle(path))

    def _load_from_state(self, state: dict, manifest: dict) -> "Rocket":
        """Restore from already-read bundle contents (single-read load path)."""
        biases = state["kernel_biases"]
        dilations = state["kernel_dilations"]
        paddings = state["kernel_paddings"]
        self._kernels = [
            (
                np.asarray(state[f"kernel.{index}.weights"], dtype=np.float64),
                float(biases[index]),
                int(dilations[index]),
                int(paddings[index]),
            )
            for index in range(len(biases))
        ]
        self._weights = np.asarray(state["ridge_weights"], dtype=np.float64)
        self._feature_stats = (
            np.asarray(state["feature_mean"], dtype=np.float64),
            np.asarray(state["feature_std"], dtype=np.float64),
        )
        self._label_map = (
            np.asarray(state["label_map"], dtype=np.int64) if "label_map" in state else None
        )
        return self


class MiniRocket(Rocket):
    """MiniRocket: fixed two-valued kernels, random dilations, PPV-only features."""

    name = "Minirocket"
    api_name = "minirocket"

    def _generate_kernels(self, length: int) -> None:
        rng = new_rng(self.seed)
        self._kernels = []
        kernel_length = 9
        for _ in range(self.n_kernels):
            weights = np.full(kernel_length, -1.0)
            high_positions = rng.choice(kernel_length, size=3, replace=False)
            weights[high_positions] = 2.0
            bias = float(rng.normal(0.0, 1.0))
            max_exponent = max(0, int(np.log2((length - 1) / (kernel_length - 1))) if length > kernel_length else 0)
            dilation = int(2 ** rng.integers(0, max_exponent + 1))
            padding = ((kernel_length - 1) * dilation) // 2
            self._kernels.append((weights, bias, dilation, padding))

    def _transform(self, X: np.ndarray) -> np.ndarray:
        full = super()._transform(X)
        # keep only the PPV features (odd columns), as in MiniRocket
        return full[:, 1::2]
