"""TS-TCC-style baseline (Eldele et al., IJCAI 2021).

TS-TCC creates a *weak* view (jitter + scaling) and a *strong* view
(permutation + jitter) of every sample, then applies temporal and contextual
contrasting across the two views.  With a pooled-representation encoder the
two contrasting heads reduce to a cross-view InfoNCE between the weak and
strong contexts, which is what this reimplementation computes.
"""

from __future__ import annotations

import numpy as np

from repro.augmentations import Compose, Jitter, Permutation, Scaling
from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import nt_xent
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng


class TSTCC(SelfSupervisedBaseline):
    """Weak/strong augmentation cross-view contrastive learning."""

    name = "TS-TCC"
    api_name = "tstcc"

    def __init__(self, config: BaselineConfig | None = None, *, tau: float = 0.2):
        super().__init__(config)
        self.tau = tau
        seed = int(self._rng.integers(0, 2**31))
        rng = new_rng(seed)
        self.weak_augmentation = Compose(
            [Jitter(sigma=0.05, seed=rng), Scaling(sigma=0.1, seed=rng)]
        )
        self.strong_augmentation = Compose(
            [Permutation(max_segments=5, seed=rng), Jitter(sigma=0.1, seed=rng)]
        )

    def _manifest_init_kwargs(self) -> dict:
        return {"tau": self.tau}

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        weak = self.weak_augmentation(batch)
        strong = self.strong_augmentation(batch)
        proj_weak = self.projection(self.encoder(weak))
        proj_strong = self.projection(self.encoder(strong))
        return nt_xent(proj_weak, proj_strong, tau=self.tau)
