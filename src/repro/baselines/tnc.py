"""TNC baseline (Tonekaboni et al., ICLR 2021).

Temporal Neighborhood Coding treats windows that are temporally close as
positives and windows far away (or from other samples) as negatives, trained
with a discriminator-style logistic loss.  This reimplementation uses window
pairs with a small vs. large temporal offset.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, SelfSupervisedBaseline
from repro.baselines.contrastive_utils import crop_window
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TNC(SelfSupervisedBaseline):
    """Temporal neighborhood coding with a bilinear-free logistic objective."""

    name = "TNC"
    api_name = "tnc"

    def __init__(self, config: BaselineConfig | None = None, *, window_ratio: float = 0.4):
        super().__init__(config)
        self.window_ratio = window_ratio

    def _manifest_init_kwargs(self) -> dict:
        return {"window_ratio": self.window_ratio}

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        B, M, T = batch.shape
        window = max(4, int(round(self.window_ratio * T)))
        anchor_start = int(self._rng.integers(0, T - window + 1))
        # neighbour: small offset from the anchor
        max_neighbour_offset = max(1, window // 4)
        neighbour_start = int(
            np.clip(anchor_start + self._rng.integers(-max_neighbour_offset, max_neighbour_offset + 1), 0, T - window)
        )
        # distant window: opposite end of the series
        distant_start = (anchor_start + T // 2) % max(1, T - window + 1)

        anchor = crop_window(batch, anchor_start, window)
        neighbour = crop_window(batch, neighbour_start, window)
        distant = crop_window(batch, distant_start, window)

        anchor_proj = F.l2_normalize(self.projection(self.encoder(anchor)), axis=-1)
        neighbour_proj = F.l2_normalize(self.projection(self.encoder(neighbour)), axis=-1)
        distant_proj = F.l2_normalize(self.projection(self.encoder(distant)), axis=-1)

        positive_score = (anchor_proj * neighbour_proj).sum(axis=1)
        negative_score = (anchor_proj * distant_proj).sum(axis=1)
        positive_loss = -(positive_score.sigmoid().clamp_min(1e-8).log()).mean()
        negative_loss = -((negative_score * -1.0).sigmoid().clamp_min(1e-8).log()).mean()
        return positive_loss + negative_loss
