"""The paper's evaluation protocols behind one generic runner.

:func:`run_protocol` evaluates any set of registered estimators — given by
name, spec dict or instance — on any archive (given by name or as a dataset
list) under one of the three paper paradigms:

* ``"case_by_case"`` — estimators with a pre-training stage that enter the
  protocol un-pretrained are pre-trained on each downstream dataset's own
  training split (paradigms 1/2 of Fig. 1, Tables I–III); already
  pre-trained estimators (e.g. a multi-source AimTS) are only fine-tuned.
* ``"multi_source"`` — every pre-trainable estimator is pre-trained once on
  a shared corpus and fine-tuned per dataset (Table IV, Fig. 8d).
* ``"few_shot"`` — the multi-source protocol repeated per label ratio
  (Table V).

The original three protocol functions (:func:`run_case_by_case_comparison`,
:func:`run_multisource_comparison`, :func:`run_fewshot_comparison`) are thin
wrappers over the same engine and keep their legacy semantics, with one
deliberate refinement: estimators that enter the case-by-case protocol
*already pre-trained* (the typical multi-source AimTS) are never re-pretrained
per dataset — the old code special-cased AimTS; the new engine generalises the
exemption to any pre-trained estimator.

All protocol functions return ``{method: {dataset: accuracy}}`` dictionaries
that plug directly into :mod:`repro.evaluation.metrics` and
:mod:`repro.evaluation.ranking`.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.config import FineTuneConfig
from repro.core.model import AimTS
from repro.data.dataset import TimeSeriesDataset
from repro.evaluation.metrics import summarize_methods

PROTOCOLS = ("case_by_case", "multi_source", "few_shot")


@dataclass
class ComparisonResult:
    """Raw per-dataset accuracies plus the paper-style summary metrics."""

    accuracies: dict[str, dict[str, float]]
    summary: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.summary:
            self.summary = summarize_methods(self.accuracies)

    def best_method(self) -> str:
        """Method with the highest average accuracy."""
        return max(self.summary, key=lambda m: self.summary[m]["avg_acc"])


# --------------------------------------------------------------- resolution
def _resolve_estimators(estimators) -> dict[str, object]:
    """Normalise names / spec dicts / instances into ``{display_name: estimator}``."""
    from repro.api.registry import make_estimator

    def build(item):
        if isinstance(item, (str, Mapping)):
            return make_estimator(item)
        return item

    # a mapping is a single spec dict only when its "name" entry is a registry
    # key; {"name": <estimator instance>, ...} is a display-name mapping
    if isinstance(estimators, Mapping) and not isinstance(estimators.get("name"), str):
        return {name: build(item) for name, item in estimators.items()}
    if isinstance(estimators, (str, Mapping)) or not isinstance(estimators, Sequence):
        estimators = [estimators]
    resolved = {}
    for item in estimators:
        built = build(item)
        display = getattr(built, "name", type(built).__name__)
        if display in resolved:
            raise ValueError(f"duplicate estimator display name {display!r}")
        resolved[display] = built
    return resolved


def _resolve_datasets(archive) -> list[TimeSeriesDataset]:
    """Normalise an archive name / dataset / dataset list into a list."""
    from repro.data import load_archive

    if isinstance(archive, str):
        return load_archive(archive)
    if isinstance(archive, TimeSeriesDataset):
        return [archive]
    return list(archive)


def _resolve_corpus(pretrain_corpus, corpus_kwargs: dict):
    from repro.data import load_pretraining_corpus

    if isinstance(pretrain_corpus, str):
        return load_pretraining_corpus(pretrain_corpus, **corpus_kwargs)
    return pretrain_corpus


# ------------------------------------------------------------------- engine
def _supports_pretraining(estimator) -> bool:
    """Whether the estimator's ``pretrain`` does real work.

    Falls back to ``hasattr(estimator, "pretrain")`` for duck-typed objects
    written against the pre-unification contract, which exposed ``pretrain``
    only when pre-training was meaningful.
    """
    return bool(getattr(estimator, "supports_pretraining", hasattr(estimator, "pretrain")))


def _run_comparison(
    estimators: dict[str, object],
    datasets: list[TimeSeriesDataset],
    *,
    case_by_case: bool,
    finetune_config: FineTuneConfig | None,
    label_ratio: float | None,
    pretrain_kwargs: dict,
    config_free_when_unpretrainable: bool,
    verbose: bool,
    tag: str,
    already_pretrained: frozenset[str] = frozenset(),
) -> ComparisonResult:
    """Shared fine-tune/evaluate loop for every protocol flavour.

    ``case_by_case`` re-pretrains, per dataset, every estimator that supports
    pre-training and entered the protocol un-pretrained (snapshot taken up
    front, so a pre-trained AimTS keeps its multi-source weights).
    ``config_free_when_unpretrainable`` reproduces the legacy behaviour where
    supervised / closed-form baselines trained with their own built-in
    hyper-parameters instead of the shared ``finetune_config``.  Duck-typed
    objects exposing only ``fit_and_evaluate(dataset)`` (the pre-unification
    baseline contract) are still supported, with their own hyper-parameters.
    """
    pretrained_at_start = {
        name: name in already_pretrained or bool(getattr(est, "is_pretrained", False))
        for name, est in estimators.items()
    }
    accuracies: dict[str, dict[str, float]] = {}
    for name, estimator in estimators.items():
        accuracies[name] = {}
        pretrainable = _supports_pretraining(estimator)
        for dataset in datasets:
            if not hasattr(estimator, "fine_tune"):  # legacy duck-typed objects
                if label_ratio is not None:
                    raise TypeError(
                        f"estimator {name!r} only exposes fit_and_evaluate() and "
                        "cannot honour label_ratio; implement fine_tune() for "
                        "few-shot protocols"
                    )
                accuracy = estimator.fit_and_evaluate(dataset)
                accuracies[name][dataset.name] = accuracy
                if verbose:
                    print(f"[{tag}] {name} on {dataset.name}: {accuracy:.3f}")
                continue
            if case_by_case and pretrainable and not pretrained_at_start[name]:
                estimator.pretrain(dataset.train.X, **pretrain_kwargs)
            config = finetune_config
            if config_free_when_unpretrainable and not pretrainable:
                config = None
            result = estimator.fine_tune(dataset, config, label_ratio=label_ratio)
            accuracies[name][dataset.name] = result.accuracy
            if verbose:
                print(f"[{tag}] {name} on {dataset.name}: {result.accuracy:.3f}")
    return ComparisonResult(accuracies)


def run_protocol(
    estimators,
    archive,
    *,
    protocol: str = "case_by_case",
    pretrain_corpus=None,
    finetune_config: FineTuneConfig | None = None,
    label_ratio: float | None = None,
    ratios: tuple[float, ...] = (0.05, 0.15, 0.20),
    pretrain_kwargs: dict | None = None,
    verbose: bool = False,
):
    """Evaluate estimators on an archive under one paper protocol.

    Parameters
    ----------
    estimators:
        A registry name (``"rocket"``), a spec dict (``{"name": "ts2vec",
        "repr_dim": 32}``), an estimator instance, a sequence of any of
        those, or a ``{display_name: name_or_spec_or_instance}`` mapping.
    archive:
        An archive name (``"ucr"``, ``"uea"``), one dataset, or a dataset
        list.
    protocol:
        ``"case_by_case"``, ``"multi_source"`` or ``"few_shot"``.
    pretrain_corpus:
        Corpus for the multi-source protocols: a corpus source name
        (``"monash"``), a dataset list, or a raw pool array.  Estimators that
        are already pre-trained are left untouched.
    pretrain_kwargs:
        Extra keywords for ``estimator.pretrain`` (e.g. ``max_samples``,
        ``epochs``); ``n_datasets`` / ``seed`` are routed to the corpus
        loader when ``pretrain_corpus`` is a name.
    ratios:
        Label ratios for the few-shot protocol.

    Returns a :class:`ComparisonResult`, or ``{ratio: ComparisonResult}``
    for the few-shot protocol.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}")
    if protocol == "few_shot" and label_ratio is not None:
        raise ValueError(
            "the few_shot protocol takes its label fractions from `ratios`; "
            "pass ratios=(...) instead of label_ratio"
        )
    if protocol == "case_by_case" and pretrain_corpus is not None:
        raise ValueError(
            "pretrain_corpus turns a run into the multi-source paradigm; use "
            "protocol='multi_source', or pre-train the estimator yourself "
            "before a case_by_case run"
        )
    resolved = _resolve_estimators(estimators)
    datasets = _resolve_datasets(archive)
    pretrain_kwargs = dict(pretrain_kwargs or {})
    corpus_kwargs = {
        key: pretrain_kwargs.pop(key) for key in ("n_datasets", "seed") if key in pretrain_kwargs
    }
    if corpus_kwargs and not isinstance(pretrain_corpus, str):
        raise ValueError(
            f"pretrain_kwargs {sorted(corpus_kwargs)} configure the corpus "
            "loader and only apply when pretrain_corpus is a corpus name"
        )
    corpus = _resolve_corpus(pretrain_corpus, corpus_kwargs)

    corpus_pretrained = set()
    if corpus is not None:
        for name, estimator in resolved.items():
            if _supports_pretraining(estimator) and not getattr(
                estimator, "is_pretrained", False
            ):
                if verbose:
                    print(f"[{protocol}] pre-training {name} on the shared corpus")
                estimator.pretrain(corpus, **pretrain_kwargs)
                # recorded explicitly so duck-typed estimators without an
                # is_pretrained attribute are not re-pretrained per dataset
                corpus_pretrained.add(name)
    elif protocol in ("multi_source", "few_shot"):
        unpretrained = [
            name
            for name, estimator in resolved.items()
            if _supports_pretraining(estimator)
            and hasattr(estimator, "is_pretrained")
            and not estimator.is_pretrained
        ]
        if unpretrained:
            warnings.warn(
                f"{protocol} protocol without pretrain_corpus: {unpretrained} "
                "are not pre-trained, so their results reflect randomly "
                "initialised encoders",
                UserWarning,
                stacklevel=2,
            )

    common = dict(
        finetune_config=finetune_config,
        pretrain_kwargs=pretrain_kwargs,
        config_free_when_unpretrainable=False,
        verbose=verbose,
        already_pretrained=frozenset(corpus_pretrained),
    )
    if protocol == "few_shot":
        return {
            ratio: _run_comparison(
                resolved,
                datasets,
                case_by_case=False,
                label_ratio=ratio,
                tag=f"few-shot {ratio:g}",
                **common,
            )
            for ratio in ratios
        }
    return _run_comparison(
        resolved,
        datasets,
        case_by_case=(protocol == "case_by_case"),
        label_ratio=label_ratio,
        tag=protocol.replace("_", "-"),
        **common,
    )


# ------------------------------------------------------------ legacy facades
def run_case_by_case_comparison(
    aimts: AimTS,
    baselines: dict[str, object],
    datasets: list[TimeSeriesDataset],
    *,
    finetune_config: FineTuneConfig | None = None,
    baseline_pretrain_epochs: int | None = None,
    verbose: bool = False,
) -> ComparisonResult:
    """Compare a pre-trained AimTS model against case-by-case baselines.

    Parameters
    ----------
    aimts:
        An already pre-trained :class:`AimTS` model (multi-source paradigm).
    baselines:
        Mapping from display name to baseline estimator.  Estimators that
        support pre-training and enter un-pretrained are pre-trained on each
        dataset's own training split (ones that are already pre-trained keep
        their weights, like ``aimts`` itself); supervised / closed-form
        baselines train with their built-in hyper-parameters, as before the
        unified API.
    datasets:
        The downstream evaluation suite.
    """
    return _run_comparison(
        {"AimTS": aimts, **baselines},
        datasets,
        case_by_case=True,
        finetune_config=finetune_config,
        label_ratio=None,
        pretrain_kwargs={"epochs": baseline_pretrain_epochs},
        config_free_when_unpretrainable=True,
        verbose=verbose,
        tag="case-by-case",
    )


def run_multisource_comparison(
    aimts: AimTS,
    pretrained_baselines: dict[str, object],
    datasets: list[TimeSeriesDataset],
    *,
    finetune_config: FineTuneConfig | None = None,
    label_ratio: float | None = None,
    verbose: bool = False,
) -> ComparisonResult:
    """Compare multi-source pre-trained models (AimTS vs. foundation baselines).

    Every baseline in ``pretrained_baselines`` must already have been
    pre-trained (e.g. via ``pretrain(corpus)``); this protocol only runs
    the downstream fine-tuning, optionally with a few-shot ``label_ratio``.
    """
    return _run_comparison(
        {"AimTS": aimts, **pretrained_baselines},
        datasets,
        case_by_case=False,
        finetune_config=finetune_config,
        label_ratio=label_ratio,
        pretrain_kwargs={},
        config_free_when_unpretrainable=False,
        verbose=verbose,
        tag="multi-source",
    )


def run_fewshot_comparison(
    aimts: AimTS,
    pretrained_baselines: dict[str, object],
    datasets: list[TimeSeriesDataset],
    ratios: tuple[float, ...] = (0.05, 0.15, 0.20),
    *,
    finetune_config: FineTuneConfig | None = None,
    verbose: bool = False,
) -> dict[float, ComparisonResult]:
    """Few-shot learning protocol (Table V): one comparison per label ratio."""
    results = {}
    for ratio in ratios:
        results[ratio] = run_multisource_comparison(
            aimts,
            pretrained_baselines,
            datasets,
            finetune_config=finetune_config,
            label_ratio=ratio,
            verbose=verbose,
        )
    return results
