"""The paper's three evaluation protocols.

* :func:`run_case_by_case_comparison` — every baseline is trained separately
  on each downstream dataset (paradigms 1/2 of Fig. 1), while AimTS is
  pre-trained once on a multi-source corpus and fine-tuned per dataset
  (Tables I, II, III).
* :func:`run_multisource_comparison` — all methods are pre-trained once on a
  multi-source corpus and fine-tuned per dataset (Table IV, Fig. 8d).
* :func:`run_fewshot_comparison` — pre-trained models are fine-tuned with only
  a fraction of the downstream labels (Table V).

All protocol functions return ``{method: {dataset: accuracy}}`` dictionaries
that plug directly into :mod:`repro.evaluation.metrics` and
:mod:`repro.evaluation.ranking`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FineTuneConfig
from repro.core.model import AimTS
from repro.data.dataset import TimeSeriesDataset
from repro.evaluation.metrics import summarize_methods


@dataclass
class ComparisonResult:
    """Raw per-dataset accuracies plus the paper-style summary metrics."""

    accuracies: dict[str, dict[str, float]]
    summary: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.summary:
            self.summary = summarize_methods(self.accuracies)

    def best_method(self) -> str:
        """Method with the highest average accuracy."""
        return max(self.summary, key=lambda m: self.summary[m]["avg_acc"])


def run_case_by_case_comparison(
    aimts: AimTS,
    baselines: dict[str, object],
    datasets: list[TimeSeriesDataset],
    *,
    finetune_config: FineTuneConfig | None = None,
    baseline_pretrain_epochs: int | None = None,
    verbose: bool = False,
) -> ComparisonResult:
    """Compare a pre-trained AimTS model against case-by-case baselines.

    Parameters
    ----------
    aimts:
        An already pre-trained :class:`AimTS` model (multi-source paradigm).
    baselines:
        Mapping from display name to baseline object.  Objects exposing
        ``fit_and_evaluate(dataset)`` are used directly (supervised and
        Rocket-style baselines); objects additionally exposing ``pretrain``
        are treated as case-by-case self-supervised learners.
    datasets:
        The downstream evaluation suite.
    """
    accuracies: dict[str, dict[str, float]] = {"AimTS": {}}
    for dataset in datasets:
        result = aimts.fine_tune(dataset, finetune_config)
        accuracies["AimTS"][dataset.name] = result.accuracy
        if verbose:
            print(f"[case-by-case] AimTS on {dataset.name}: {result.accuracy:.3f}")
    for name, baseline in baselines.items():
        accuracies[name] = {}
        for dataset in datasets:
            if hasattr(baseline, "pretrain") and hasattr(baseline, "fine_tune"):
                baseline.pretrain(dataset.train.X, epochs=baseline_pretrain_epochs)
                accuracy = baseline.fine_tune(dataset, finetune_config).accuracy
            else:
                accuracy = baseline.fit_and_evaluate(dataset)
            accuracies[name][dataset.name] = accuracy
            if verbose:
                print(f"[case-by-case] {name} on {dataset.name}: {accuracy:.3f}")
    return ComparisonResult(accuracies)


def run_multisource_comparison(
    aimts: AimTS,
    pretrained_baselines: dict[str, object],
    datasets: list[TimeSeriesDataset],
    *,
    finetune_config: FineTuneConfig | None = None,
    label_ratio: float | None = None,
    verbose: bool = False,
) -> ComparisonResult:
    """Compare multi-source pre-trained models (AimTS vs. foundation baselines).

    Every baseline in ``pretrained_baselines`` must already have been
    pre-trained (e.g. via ``pretrain_multi_source``); this protocol only runs
    the downstream fine-tuning, optionally with a few-shot ``label_ratio``.
    """
    accuracies: dict[str, dict[str, float]] = {"AimTS": {}}
    for dataset in datasets:
        result = aimts.fine_tune(dataset, finetune_config, label_ratio=label_ratio)
        accuracies["AimTS"][dataset.name] = result.accuracy
        if verbose:
            print(f"[multi-source] AimTS on {dataset.name}: {result.accuracy:.3f}")
    for name, baseline in pretrained_baselines.items():
        accuracies[name] = {}
        for dataset in datasets:
            accuracy = baseline.fine_tune(dataset, finetune_config, label_ratio=label_ratio).accuracy
            accuracies[name][dataset.name] = accuracy
            if verbose:
                print(f"[multi-source] {name} on {dataset.name}: {accuracy:.3f}")
    return ComparisonResult(accuracies)


def run_fewshot_comparison(
    aimts: AimTS,
    pretrained_baselines: dict[str, object],
    datasets: list[TimeSeriesDataset],
    ratios: tuple[float, ...] = (0.05, 0.15, 0.20),
    *,
    finetune_config: FineTuneConfig | None = None,
    verbose: bool = False,
) -> dict[float, ComparisonResult]:
    """Few-shot learning protocol (Table V): one comparison per label ratio."""
    results = {}
    for ratio in ratios:
        results[ratio] = run_multisource_comparison(
            aimts,
            pretrained_baselines,
            datasets,
            finetune_config=finetune_config,
            label_ratio=ratio,
            verbose=verbose,
        )
    return results
