"""Representation-quality metrics for contrastive learning.

The paper grounds its geodesic mixup in the alignment/uniformity view of
contrastive learning on the hypersphere (Wang & Isola, ICML 2020, its
reference [48]).  This module provides those two quantities plus two
label-aware diagnostics (silhouette score and nearest-centroid accuracy) so
users can inspect *why* a pre-trained encoder transfers well, independently of
any downstream classifier:

* :func:`alignment` — mean squared distance between positive pairs (lower is
  better): how tightly augmented views / modality pairs are pulled together.
* :func:`uniformity` — log of the mean Gaussian potential between all pairs
  (lower is better): how evenly representations cover the hypersphere.
* :func:`silhouette_score` — classic cluster-quality score of representations
  under their class labels.
* :func:`nearest_centroid_accuracy` — accuracy of a nearest-class-centroid
  classifier in representation space (a training-free probe).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_positive


def _normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    return x / np.maximum(norms, eps)


def alignment(positives_a: np.ndarray, positives_b: np.ndarray, *, alpha: float = 2.0) -> float:
    """Alignment of positive pairs: ``E ||f(x) - f(x+)||^alpha`` on the unit sphere.

    Parameters
    ----------
    positives_a, positives_b:
        Arrays of shape ``(n, d)``; row ``i`` of each forms a positive pair.
    alpha:
        Exponent of the distance (2 in Wang & Isola).
    """
    a = _normalize_rows(check_array("positives_a", np.asarray(positives_a, dtype=np.float64), ndim=2))
    b = _normalize_rows(check_array("positives_b", np.asarray(positives_b, dtype=np.float64), ndim=2))
    if a.shape != b.shape:
        raise ValueError(f"positive pairs must align: {a.shape} vs {b.shape}")
    check_positive("alpha", alpha)
    return float((np.linalg.norm(a - b, axis=1) ** alpha).mean())


def uniformity(representations: np.ndarray, *, t: float = 2.0) -> float:
    """Uniformity: ``log E exp(-t ||f(x) - f(y)||^2)`` over all pairs (lower = more uniform)."""
    x = _normalize_rows(check_array("representations", np.asarray(representations, dtype=np.float64), ndim=2))
    check_positive("t", t)
    if x.shape[0] < 2:
        raise ValueError("uniformity needs at least two representations")
    squared_distances = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=-1)
    mask = ~np.eye(x.shape[0], dtype=bool)
    return float(np.log(np.exp(-t * squared_distances[mask]).mean()))


def silhouette_score(representations: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient of representations grouped by class label.

    Returns a value in ``[-1, 1]``; higher means classes form tighter, better
    separated clusters in representation space.
    """
    x = check_array("representations", np.asarray(representations, dtype=np.float64), ndim=2)
    y = np.asarray(labels)
    if y.shape[0] != x.shape[0]:
        raise ValueError("labels must match the number of representations")
    classes = np.unique(y)
    if classes.size < 2:
        raise ValueError("silhouette score requires at least two classes")
    distances = np.linalg.norm(x[:, None, :] - x[None, :, :], axis=-1)
    scores = np.zeros(x.shape[0])
    for i in range(x.shape[0]):
        same = (y == y[i]) & (np.arange(x.shape[0]) != i)
        if not same.any():
            scores[i] = 0.0
            continue
        intra = distances[i, same].mean()
        inter = min(
            distances[i, y == other].mean() for other in classes if other != y[i]
        )
        denom = max(intra, inter)
        scores[i] = 0.0 if denom == 0 else (inter - intra) / denom
    return float(scores.mean())


def nearest_centroid_accuracy(
    train_representations: np.ndarray,
    train_labels: np.ndarray,
    test_representations: np.ndarray,
    test_labels: np.ndarray,
) -> float:
    """Accuracy of a nearest-class-centroid classifier fit on train representations."""
    train_x = check_array("train_representations", np.asarray(train_representations, dtype=np.float64), ndim=2)
    test_x = check_array("test_representations", np.asarray(test_representations, dtype=np.float64), ndim=2)
    train_y = np.asarray(train_labels)
    test_y = np.asarray(test_labels)
    if train_y.shape[0] != train_x.shape[0] or test_y.shape[0] != test_x.shape[0]:
        raise ValueError("labels must match their representation arrays")
    classes = np.unique(train_y)
    centroids = np.stack([train_x[train_y == c].mean(axis=0) for c in classes])
    distances = np.linalg.norm(test_x[:, None, :] - centroids[None, :, :], axis=-1)
    predictions = classes[distances.argmin(axis=1)]
    return float((predictions == test_y).mean())


def representation_report(
    representations: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    positives: tuple[np.ndarray, np.ndarray] | None = None,
) -> dict[str, float]:
    """Bundle the available metrics into one dictionary.

    ``labels`` enables the label-aware metrics; ``positives`` (a pair of
    aligned arrays) enables the alignment metric.
    """
    report = {"uniformity": uniformity(representations)}
    if positives is not None:
        report["alignment"] = alignment(*positives)
    if labels is not None:
        report["silhouette"] = silhouette_score(representations, labels)
    return report
