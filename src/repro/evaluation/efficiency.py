"""Memory and efficiency probes (Fig. 7c/d and Fig. 8a-c).

The paper measures maximum GPU memory and total fine-tuning + inference time.
On the CPU substrate we report the analogous quantities:

* ``parameter_count`` and ``parameter_bytes`` — model size;
* ``activation_bytes`` — an estimate of the peak activation footprint of one
  forward pass at the given batch size (the quantity that dominates GPU memory
  in the paper's measurement);
* ``total_seconds`` — wall-clock time of fine-tuning plus inference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.data.dataset import TimeSeriesDataset
from repro.encoders import TSEncoder
from repro.nn.module import Module


@dataclass
class EfficiencyReport:
    """Resource usage of one fine-tuning + inference run."""

    method: str
    dataset: str
    parameter_count: int
    parameter_bytes: int
    activation_bytes: int
    total_seconds: float
    accuracy: float

    @property
    def memory_megabytes(self) -> float:
        """Parameters + activations, in MB (the Fig. 7c quantity)."""
        return (self.parameter_bytes + self.activation_bytes) / 1e6


def count_parameters(module: Module) -> int:
    """Number of scalar parameters in a module."""
    return module.num_parameters()


def estimate_activation_bytes(
    encoder: TSEncoder,
    *,
    batch_size: int,
    n_variables: int,
    length: int,
    hidden_channels: int | None = None,
    bytes_per_value: int = 8,
) -> int:
    """Rough peak-activation estimate of one encoder forward pass.

    The dominant activations of the dilated-conv encoder are the
    ``(B*M, hidden, T)`` feature maps of each residual block (two convolutions
    per block plus the block output), which this helper sums.
    """
    hidden = hidden_channels or encoder.input_conv.out_channels
    streams = batch_size * (n_variables if encoder.channel_independent else 1)
    per_block = 3 * streams * hidden * length
    n_blocks = len(list(encoder.blocks)) if hasattr(encoder, "blocks") else 1
    total_values = per_block * (n_blocks + 1)
    return int(total_values * bytes_per_value)


def measure_finetune_efficiency(
    encoder: TSEncoder,
    dataset: TimeSeriesDataset,
    *,
    method: str = "AimTS",
    finetune_config: FineTuneConfig | None = None,
) -> EfficiencyReport:
    """Fine-tune + run inference once, timing the whole procedure (Fig. 7d)."""
    config = finetune_config or FineTuneConfig(epochs=10, batch_size=8)
    finetuner = FineTuner(encoder, dataset.n_classes, config)
    start = time.perf_counter()
    finetuner.fit(dataset.train)
    predictions = finetuner.predict(dataset.test.X)
    elapsed = time.perf_counter() - start
    accuracy = float((predictions == dataset.test.y).mean())
    parameter_count = count_parameters(encoder) + count_parameters(finetuner.classifier)
    activation_bytes = estimate_activation_bytes(
        encoder,
        batch_size=config.batch_size,
        n_variables=dataset.n_variables,
        length=dataset.length,
    )
    return EfficiencyReport(
        method=method,
        dataset=dataset.name,
        parameter_count=parameter_count,
        parameter_bytes=parameter_count * 8,
        activation_bytes=activation_bytes,
        total_seconds=elapsed,
        accuracy=accuracy,
    )


def scalability_sweep(
    build_encoder,
    dataset_factory,
    values: list,
    *,
    vary: str,
    finetune_config: FineTuneConfig | None = None,
) -> list[dict]:
    """Generic sweep helper for the Fig. 8 scalability study.

    Parameters
    ----------
    build_encoder:
        Callable ``value -> TSEncoder`` (for the parameter-count sweep) or a
        zero-argument callable returning a fresh encoder (other sweeps).
    dataset_factory:
        Callable ``value -> TimeSeriesDataset`` producing the workload for a
        sweep point.
    values:
        The sweep points (data sizes, lengths or parameter budgets).
    vary:
        Label of the swept factor, recorded in each result row.
    """
    rows = []
    for value in values:
        encoder = build_encoder(value) if _accepts_argument(build_encoder) else build_encoder()
        dataset = dataset_factory(value)
        report = measure_finetune_efficiency(
            encoder, dataset, method=f"{vary}={value}", finetune_config=finetune_config
        )
        rows.append(
            {
                "vary": vary,
                "value": value,
                "parameters": report.parameter_count,
                "memory_mb": report.memory_megabytes,
                "total_seconds": report.total_seconds,
                "accuracy": report.accuracy,
            }
        )
    return rows


def _accepts_argument(fn) -> bool:
    import inspect

    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return False
    return len(signature.parameters) >= 1
