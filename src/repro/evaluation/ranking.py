"""Statistical comparison of classifiers over multiple datasets (Demsar 2006).

Implements the Friedman test and the Nemenyi post-hoc critical difference used
by the paper's CD diagrams (Fig. 6), plus a plain-text rendering of the
diagram since matplotlib is unavailable offline.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

#: upper quantiles of the studentized range statistic q_alpha (infinite df),
#: divided by sqrt(2), for the Nemenyi test at alpha = 0.05 (index = #methods).
_NEMENYI_Q05 = {
    2: 1.960,
    3: 2.343,
    4: 2.569,
    5: 2.728,
    6: 2.850,
    7: 2.949,
    8: 3.031,
    9: 3.102,
    10: 3.164,
    11: 3.219,
    12: 3.268,
    13: 3.313,
    14: 3.354,
    15: 3.391,
}


def rank_matrix(results: dict[str, dict[str, float]]) -> tuple[list[str], np.ndarray]:
    """Per-dataset ranks (1 = best accuracy) for every method.

    Returns ``(methods, ranks)`` where ``ranks`` has shape
    ``(n_methods, n_datasets)``.
    """
    methods = sorted(results)
    common = set(results[methods[0]])
    for method in methods[1:]:
        common &= set(results[method])
    datasets = sorted(common)
    if len(datasets) < 2:
        raise ValueError("at least two common datasets are required for ranking")
    accuracy = np.array([[results[m][d] for d in datasets] for m in methods])
    ranks = np.apply_along_axis(stats.rankdata, 0, -accuracy)
    return methods, ranks


def friedman_test(results: dict[str, dict[str, float]]) -> dict[str, float]:
    """Friedman chi-square test over the per-dataset ranks.

    Returns the statistic and p-value; a small p-value means the methods are
    not all equivalent and the post-hoc Nemenyi test is meaningful.
    """
    methods, ranks = rank_matrix(results)
    if len(methods) < 3:
        # scipy requires at least 3 related samples; fall back to a Wilcoxon
        # signed-rank test for the two-method case.
        statistic, p_value = stats.wilcoxon(ranks[0], ranks[1])
        return {"statistic": float(statistic), "p_value": float(p_value)}
    statistic, p_value = stats.friedmanchisquare(*[row for row in ranks])
    return {"statistic": float(statistic), "p_value": float(p_value)}


def critical_difference(n_methods: int, n_datasets: int, alpha: float = 0.05) -> float:
    """Nemenyi critical difference ``CD = q_alpha * sqrt(k(k+1) / (6N))``."""
    if alpha != 0.05:
        raise ValueError("only alpha = 0.05 is tabulated")
    if n_methods < 2:
        raise ValueError("need at least two methods")
    q = _NEMENYI_Q05.get(n_methods)
    if q is None:
        # asymptotic approximation via the studentized range distribution
        q = stats.studentized_range.ppf(1 - alpha, n_methods, np.inf) / np.sqrt(2)
    return float(q * np.sqrt(n_methods * (n_methods + 1) / (6.0 * n_datasets)))


def nemenyi_groups(results: dict[str, dict[str, float]], alpha: float = 0.05) -> dict:
    """Average ranks, the critical difference and the cliques of equivalent methods.

    Two methods are statistically indistinguishable (connected by a bar in the
    CD diagram) when their average ranks differ by less than the CD.
    """
    methods, ranks = rank_matrix(results)
    average_ranks = {method: float(ranks[i].mean()) for i, method in enumerate(methods)}
    cd = critical_difference(len(methods), ranks.shape[1], alpha)
    ordered = sorted(average_ranks, key=average_ranks.get)
    groups = []
    for i, method in enumerate(ordered):
        clique = [
            other
            for other in ordered
            if abs(average_ranks[other] - average_ranks[method]) <= cd
        ]
        if len(clique) > 1 and not any(set(clique).issubset(set(g)) for g in groups):
            groups.append(clique)
    return {"average_ranks": average_ranks, "critical_difference": cd, "groups": groups}


def render_cd_diagram(results: dict[str, dict[str, float]], alpha: float = 0.05, width: int = 60) -> str:
    """Plain-text critical-difference diagram (Fig. 6 substitute).

    Methods are placed on a horizontal axis by average rank; lines below the
    axis connect methods whose rank difference is below the critical
    difference (i.e. not statistically different at the given alpha).
    """
    analysis = nemenyi_groups(results, alpha)
    average_ranks = analysis["average_ranks"]
    cd = analysis["critical_difference"]
    ordered = sorted(average_ranks, key=average_ranks.get)
    best, worst = average_ranks[ordered[0]], average_ranks[ordered[-1]]
    span = max(worst - best, 1e-9)

    def position(rank: float) -> int:
        return int(round((rank - best) / span * (width - 1)))

    lines = [f"Critical difference (Nemenyi, alpha={alpha}): {cd:.3f}", "-" * width]
    for method in ordered:
        rank = average_ranks[method]
        marker_line = [" "] * width
        marker_line[position(rank)] = "|"
        lines.append("".join(marker_line) + f"  {rank:.3f}  {method}")
    for group in analysis["groups"]:
        group_ranks = [average_ranks[m] for m in group]
        start, stop = position(min(group_ranks)), position(max(group_ranks))
        bar = [" "] * width
        for column in range(start, stop + 1):
            bar[column] = "="
        lines.append("".join(bar) + "  (not significantly different)")
    return "\n".join(lines)
