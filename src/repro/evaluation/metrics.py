"""Classification metrics used by the paper's tables.

The paper evaluates every method on many datasets and reports, per method:
average accuracy (Avg. ACC), average rank (Avg. Rank) and the number of
datasets on which the method is the sole best performer (Num. Top-1).
"""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain classification accuracy."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float((y_true == y_pred).mean())


def _accuracy_matrix(results: dict[str, dict[str, float]]) -> tuple[list[str], list[str], np.ndarray]:
    """Convert ``{method: {dataset: acc}}`` into an aligned matrix.

    Only datasets present for every method are kept, so partially-run
    comparisons never silently mix different dataset sets.
    """
    methods = sorted(results)
    if not methods:
        raise ValueError("results must contain at least one method")
    common = set(results[methods[0]])
    for method in methods[1:]:
        common &= set(results[method])
    datasets = sorted(common)
    if not datasets:
        raise ValueError("methods share no common datasets")
    matrix = np.array([[results[m][d] for d in datasets] for m in methods])
    return methods, datasets, matrix


def average_accuracy(results: dict[str, dict[str, float]]) -> dict[str, float]:
    """Avg. ACC per method over the datasets shared by all methods."""
    methods, _, matrix = _accuracy_matrix(results)
    return {method: float(matrix[i].mean()) for i, method in enumerate(methods)}


def average_rank(results: dict[str, dict[str, float]]) -> dict[str, float]:
    """Avg. Rank per method (rank 1 = best accuracy; ties share the mean rank)."""
    from scipy.stats import rankdata

    methods, _, matrix = _accuracy_matrix(results)
    # rankdata ranks ascending, so rank the negated accuracies
    ranks = np.apply_along_axis(rankdata, 0, -matrix)
    return {method: float(ranks[i].mean()) for i, method in enumerate(methods)}


def num_top1(results: dict[str, dict[str, float]]) -> dict[str, int]:
    """Num. Top-1 per method: datasets where the method is the *sole* winner.

    Following the paper, datasets where several methods tie for the best
    accuracy do not count towards anyone's Top-1 tally.
    """
    methods, datasets, matrix = _accuracy_matrix(results)
    counts = {method: 0 for method in methods}
    for j in range(len(datasets)):
        column = matrix[:, j]
        best = column.max()
        winners = np.flatnonzero(np.isclose(column, best))
        if winners.size == 1:
            counts[methods[int(winners[0])]] += 1
    return counts


def summarize_methods(results: dict[str, dict[str, float]]) -> dict[str, dict[str, float]]:
    """Combine Avg. ACC, Avg. Rank and Num. Top-1 into one summary per method."""
    acc = average_accuracy(results)
    rank = average_rank(results)
    top1 = num_top1(results)
    return {
        method: {"avg_acc": acc[method], "avg_rank": rank[method], "num_top1": float(top1[method])}
        for method in acc
    }
