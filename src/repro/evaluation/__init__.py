"""``repro.evaluation`` — metrics, statistical tests and evaluation protocols.

* :mod:`~repro.evaluation.metrics` — accuracy, average accuracy, average rank
  and Num.Top-1 (the metrics of Tables I–V).
* :mod:`~repro.evaluation.ranking` — Friedman test, Nemenyi critical
  difference and a text rendering of the CD diagram (Fig. 6).
* :mod:`~repro.evaluation.protocols` — the three evaluation paradigms
  (case-by-case, multi-source generalization, few-shot learning).
* :mod:`~repro.evaluation.efficiency` — parameter counts, activation-memory
  estimates and wall-clock timing (Fig. 7c/d, Fig. 8a-c).
"""

from repro.evaluation.efficiency import EfficiencyReport, measure_finetune_efficiency
from repro.evaluation.metrics import (
    accuracy_score,
    average_accuracy,
    average_rank,
    num_top1,
    summarize_methods,
)
from repro.evaluation.protocols import (
    PROTOCOLS,
    ComparisonResult,
    run_case_by_case_comparison,
    run_fewshot_comparison,
    run_multisource_comparison,
    run_protocol,
)
from repro.evaluation.ranking import (
    critical_difference,
    friedman_test,
    nemenyi_groups,
    rank_matrix,
    render_cd_diagram,
)
from repro.evaluation.representation import (
    alignment,
    nearest_centroid_accuracy,
    representation_report,
    silhouette_score,
    uniformity,
)

__all__ = [
    "accuracy_score",
    "average_accuracy",
    "average_rank",
    "num_top1",
    "summarize_methods",
    "rank_matrix",
    "friedman_test",
    "critical_difference",
    "nemenyi_groups",
    "render_cd_diagram",
    "ComparisonResult",
    "PROTOCOLS",
    "run_protocol",
    "run_case_by_case_comparison",
    "run_multisource_comparison",
    "run_fewshot_comparison",
    "EfficiencyReport",
    "measure_finetune_efficiency",
    "alignment",
    "uniformity",
    "silhouette_score",
    "nearest_centroid_accuracy",
    "representation_report",
]
