"""AimTS reproduction — Augmented Series and Image Contrastive Learning for TSC.

This package is a full, from-scratch NumPy reproduction of

    *AimTS: Augmented Series and Image Contrastive Learning for Time Series
    Classification* (ICDE 2025, arXiv:2504.09993),

including every substrate the paper depends on: a small autograd/NN framework
(:mod:`repro.nn`), synthetic UCR/UEA/Monash-style archives (:mod:`repro.data`),
the augmentation bank (:mod:`repro.augmentations`), a line-chart rasteriser
(:mod:`repro.imaging`), the encoders (:mod:`repro.encoders`), the AimTS
framework itself (:mod:`repro.core`), the comparison baselines
(:mod:`repro.baselines`), the unified training engine behind every loop
(:mod:`repro.engine`) and the evaluation protocols
(:mod:`repro.evaluation`).

Quick start
-----------
>>> from repro import AimTS, AimTSConfig
>>> from repro.data import load_pretraining_corpus, load_dataset
>>> model = AimTS(AimTSConfig(epochs=1))
>>> model.pretrain(load_pretraining_corpus("monash", n_datasets=4))   # doctest: +SKIP
>>> model.fine_tune(load_dataset("ECG200")).accuracy                  # doctest: +SKIP
"""

from repro.core import AimTS, AimTSConfig, FineTuneConfig
from repro.api import estimator_names, load_estimator, make_estimator, serve

__version__ = "1.1.0"

__all__ = [
    "AimTS",
    "AimTSConfig",
    "FineTuneConfig",
    "make_estimator",
    "load_estimator",
    "estimator_names",
    "serve",
    "__version__",
]
