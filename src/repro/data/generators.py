"""Class-conditional synthetic pattern families.

Each *family* emulates one application domain of the UCR/UEA/Monash archives.
A family draws per-class template parameters once (from the dataset seed) and
then renders individual samples as the template plus sample-level nuisance
variation: random phase, amplitude scaling, mild time warping and additive
noise.  This gives datasets whose classes are separable by structure (shape)
rather than by trivial statistics, which is exactly the regime the AimTS paper
targets with its series-image contrastive learning.

All generators return ``(X, y)`` with ``X`` of shape ``(n, n_variables, length)``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.utils.seeding import new_rng

GeneratorFn = Callable[..., tuple[np.ndarray, np.ndarray]]

_FAMILIES: dict[str, GeneratorFn] = {}


def register_family(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    """Decorator that registers a pattern family under ``name``."""

    def decorator(fn: GeneratorFn) -> GeneratorFn:
        _FAMILIES[name] = fn
        return fn

    return decorator


def family_names() -> list[str]:
    """Names of all registered pattern families."""
    return sorted(_FAMILIES)


def get_family(name: str) -> GeneratorFn:
    """Look up a registered family by name."""
    if name not in _FAMILIES:
        raise KeyError(f"unknown pattern family {name!r}; known: {family_names()}")
    return _FAMILIES[name]


# --------------------------------------------------------------------------- #
# Shared sample-level nuisance machinery
# --------------------------------------------------------------------------- #
def _gaussian_bump(t: np.ndarray, center: float, width: float, amplitude: float) -> np.ndarray:
    return amplitude * np.exp(-0.5 * ((t - center) / max(width, 1e-3)) ** 2)


def _random_warp(series: np.ndarray, rng: np.random.Generator, strength: float = 0.05) -> np.ndarray:
    """Smoothly re-time a 1-D series by a small random monotone warp."""
    length = series.shape[-1]
    n_knots = 4
    knot_positions = np.linspace(0, 1, n_knots)
    knot_offsets = rng.normal(0, strength, size=n_knots)
    offsets = np.interp(np.linspace(0, 1, length), knot_positions, knot_offsets)
    warped_positions = np.clip(np.linspace(0, 1, length) + offsets, 0, 1)
    original_positions = np.linspace(0, 1, length)
    return np.interp(warped_positions, original_positions, series)


def _finalize(
    clean: np.ndarray,
    rng: np.random.Generator,
    *,
    noise: float,
    warp: float,
    amplitude_jitter: float = 0.1,
) -> np.ndarray:
    """Apply sample-level nuisance variation to a clean ``(M, T)`` template."""
    sample = np.empty_like(clean)
    scale = 1.0 + rng.normal(0, amplitude_jitter)
    for variable in range(clean.shape[0]):
        warped = _random_warp(clean[variable], rng, strength=warp) if warp > 0 else clean[variable]
        sample[variable] = scale * warped + rng.normal(0, noise, size=clean.shape[1])
    return sample


def _render_dataset(
    template_fn: Callable[[int, np.ndarray, np.random.Generator], np.ndarray],
    *,
    n_samples: int,
    n_classes: int,
    length: int,
    n_variables: int,
    rng: np.random.Generator,
    noise: float,
    warp: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Render ``n_samples`` by calling ``template_fn(class, t, sample_rng)``."""
    t = np.linspace(0, 1, length)
    labels = rng.integers(0, n_classes, size=n_samples)
    X = np.empty((n_samples, n_variables, length))
    for i, label in enumerate(labels):
        clean = template_fn(int(label), t, rng)
        if clean.ndim == 1:
            clean = clean[None, :]
        if clean.shape[0] != n_variables:
            raise ValueError(
                f"template produced {clean.shape[0]} variables, expected {n_variables}"
            )
        X[i] = _finalize(clean, rng, noise=noise, warp=warp)
    return X, labels


# --------------------------------------------------------------------------- #
# Pattern families
# --------------------------------------------------------------------------- #
@register_family("ecg")
def ecg_family(
    n_samples: int,
    n_classes: int = 2,
    length: int = 96,
    n_variables: int = 1,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.08,
    warp: float = 0.03,
) -> tuple[np.ndarray, np.ndarray]:
    """ECG-like heartbeats.

    Class 0 is a "healthy" beat with an upright T wave; higher classes invert
    or attenuate the T wave and widen the QRS complex, mimicking the
    myocardial-infarction example in Fig. 2 of the paper.  Because class
    identity rides on the T-wave polarity, jitter-style augmentations can flip
    the apparent class — the semantic-change failure mode AimTS addresses.
    """
    rng = new_rng(rng)
    t_wave_signs = np.linspace(1.0, -1.0, n_classes)
    qrs_widths = np.linspace(0.012, 0.03, n_classes)

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        beat = np.zeros((n_variables, t.shape[0]))
        n_beats = 2
        for b in range(n_beats):
            center = (b + 0.5) / n_beats
            for variable in range(n_variables):
                lead_scale = 1.0 - 0.2 * variable
                p_wave = _gaussian_bump(t, center - 0.12 / n_beats, 0.015, 0.15 * lead_scale)
                q_dip = _gaussian_bump(t, center - 0.02 / n_beats, 0.006, -0.2 * lead_scale)
                r_spike = _gaussian_bump(t, center, qrs_widths[label], 1.0 * lead_scale)
                s_dip = _gaussian_bump(t, center + 0.02 / n_beats, 0.006, -0.25 * lead_scale)
                t_wave = _gaussian_bump(
                    t, center + 0.14 / n_beats, 0.03, 0.35 * t_wave_signs[label] * lead_scale
                )
                beat[variable] += p_wave + q_dip + r_spike + s_dip + t_wave
        return beat

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("motion")
def motion_family(
    n_samples: int,
    n_classes: int = 4,
    length: int = 96,
    n_variables: int = 3,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.1,
    warp: float = 0.06,
) -> tuple[np.ndarray, np.ndarray]:
    """Accelerometer-style gesture trajectories.

    Each class is a fixed sequence of smooth directional strokes (sums of
    logistic ramps and bumps) per axis, similar to uWave / RacketSports /
    Handwriting-style recordings.
    """
    rng = new_rng(rng)
    n_strokes = 3
    # Per-class stroke parameters drawn once per dataset.
    stroke_centers = rng.uniform(0.1, 0.9, size=(n_classes, n_variables, n_strokes))
    stroke_amps = rng.uniform(-1.0, 1.0, size=(n_classes, n_variables, n_strokes))
    stroke_widths = rng.uniform(0.03, 0.12, size=(n_classes, n_variables, n_strokes))

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        trajectory = np.zeros((n_variables, t.shape[0]))
        for variable in range(n_variables):
            for stroke in range(n_strokes):
                trajectory[variable] += _gaussian_bump(
                    t,
                    stroke_centers[label, variable, stroke],
                    stroke_widths[label, variable, stroke],
                    stroke_amps[label, variable, stroke],
                )
        return trajectory

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("starlight")
def starlight_family(
    n_samples: int,
    n_classes: int = 3,
    length: int = 128,
    n_variables: int = 1,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.05,
    warp: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Star-light-curve style periodic signals.

    Class 0: eclipsing-binary (two sharp dips per period); class 1: cepheid-like
    sawtooth pulsation; class 2+: sinusoidal RR-Lyrae-like variations with
    class-specific harmonic content.
    """
    rng = new_rng(rng)
    periods = rng.uniform(0.2, 0.45, size=n_classes)

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        phase = t / periods[label] * 2 * np.pi
        if label % 3 == 0:
            folded = (t / periods[label]) % 1.0
            curve = -0.8 * np.exp(-0.5 * ((folded - 0.25) / 0.03) ** 2)
            curve += -0.4 * np.exp(-0.5 * ((folded - 0.75) / 0.03) ** 2)
        elif label % 3 == 1:
            folded = (t / periods[label]) % 1.0
            curve = 0.8 * (1.0 - folded) - 0.4
        else:
            curve = 0.5 * np.sin(phase) + 0.25 * np.sin((label + 1) * phase)
        return curve[None, :].repeat(n_variables, axis=0)

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("device")
def device_family(
    n_samples: int,
    n_classes: int = 3,
    length: int = 96,
    n_variables: int = 1,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.08,
    warp: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Appliance load-profile style step/spike patterns.

    Classes differ by duty cycle, number of on/off events and spike amplitude,
    as in the electric-devices datasets of the UCR archive.
    """
    rng = new_rng(rng)
    n_events = rng.integers(1, 4, size=n_classes)
    event_levels = rng.uniform(0.4, 1.2, size=(n_classes, 4))
    event_starts = rng.uniform(0.05, 0.7, size=(n_classes, 4))
    event_durations = rng.uniform(0.1, 0.3, size=(n_classes, 4))

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        profile = np.zeros((n_variables, t.shape[0]))
        for event in range(int(n_events[label])):
            start = event_starts[label, event]
            stop = min(start + event_durations[label, event], 1.0)
            mask = (t >= start) & (t < stop)
            for variable in range(n_variables):
                profile[variable, mask] += event_levels[label, event] * (1.0 - 0.15 * variable)
        return profile

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("eeg")
def eeg_family(
    n_samples: int,
    n_classes: int = 2,
    length: int = 128,
    n_variables: int = 1,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.15,
    warp: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """EEG/EMG-style band-limited oscillations.

    Each class has a characteristic dominant frequency and burst envelope
    (e.g. slow-wave sleep vs. spindle-rich sleep, or seizure vs. baseline
    activity), similar to SleepEEG / Epilepsy / SelfRegulationSCP recordings.
    """
    rng = new_rng(rng)
    base_freqs = rng.uniform(3.0, 7.0, size=n_classes) + 5.0 * np.arange(n_classes)
    burst_centers = rng.uniform(0.25, 0.75, size=n_classes)
    burst_widths = rng.uniform(0.1, 0.3, size=n_classes)

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        signal = np.zeros((n_variables, t.shape[0]))
        envelope = 0.3 + _gaussian_bump(t, burst_centers[label], burst_widths[label], 0.7)
        for variable in range(n_variables):
            channel_phase = variable * np.pi / 4
            carrier = np.sin(2 * np.pi * base_freqs[label] * t + channel_phase)
            slow = 0.3 * np.sin(2 * np.pi * 1.5 * t + channel_phase)
            signal[variable] = envelope * carrier + slow
        return signal

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("vibration")
def vibration_family(
    n_samples: int,
    n_classes: int = 3,
    length: int = 128,
    n_variables: int = 1,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.1,
    warp: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Rotating-machinery vibration signatures (FD-B style).

    Class 0 is a healthy bearing (smooth rotation harmonics); faulty classes add
    periodic impulse trains whose repetition rate encodes the fault location.
    """
    rng = new_rng(rng)
    rotation_freq = 8.0
    impulse_rates = 12.0 + 6.0 * np.arange(n_classes)

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        base = 0.4 * np.sin(2 * np.pi * rotation_freq * t) + 0.2 * np.sin(
            2 * np.pi * 2 * rotation_freq * t
        )
        signal = np.tile(base, (n_variables, 1))
        if label > 0:
            impulse_times = np.arange(0, 1, 1.0 / impulse_rates[label])
            for impulse in impulse_times:
                for variable in range(n_variables):
                    signal[variable] += _gaussian_bump(t, impulse, 0.004, 0.9)
        return signal

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("spectro")
def spectro_family(
    n_samples: int,
    n_classes: int = 4,
    length: int = 96,
    n_variables: int = 2,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.08,
    warp: float = 0.04,
) -> tuple[np.ndarray, np.ndarray]:
    """Speech-formant style chirps (SpokenArabicDigits / JapaneseVowels style).

    Each class has characteristic formant trajectories: per-variable sinusoids
    whose instantaneous frequency glides between class-specific start/end
    values.
    """
    rng = new_rng(rng)
    start_freqs = rng.uniform(2.0, 6.0, size=(n_classes, n_variables))
    end_freqs = rng.uniform(4.0, 12.0, size=(n_classes, n_variables))
    amplitudes = rng.uniform(0.5, 1.0, size=(n_classes, n_variables))

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        signal = np.zeros((n_variables, t.shape[0]))
        envelope = np.sin(np.pi * t) ** 0.5
        for variable in range(n_variables):
            freq = start_freqs[label, variable] + (
                end_freqs[label, variable] - start_freqs[label, variable]
            ) * t
            phase = 2 * np.pi * np.cumsum(freq) / t.shape[0]
            signal[variable] = amplitudes[label, variable] * envelope * np.sin(phase)
        return signal

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("traffic")
def traffic_family(
    n_samples: int,
    n_classes: int = 3,
    length: int = 96,
    n_variables: int = 2,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.07,
    warp: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Daily traffic-occupancy profiles (PEMS-SF style).

    Classes correspond to day types with different rush-hour structure: number,
    position and sharpness of the morning/evening peaks.
    """
    rng = new_rng(rng)
    peak_positions = rng.uniform(0.2, 0.8, size=(n_classes, 2))
    peak_heights = rng.uniform(0.5, 1.0, size=(n_classes, 2))
    peak_widths = rng.uniform(0.05, 0.15, size=(n_classes, 2))

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        base = 0.2 + 0.1 * np.sin(2 * np.pi * t)
        signal = np.zeros((n_variables, t.shape[0]))
        for variable in range(n_variables):
            profile = base.copy()
            n_peaks = 1 + label % 2
            for peak in range(n_peaks):
                profile += _gaussian_bump(
                    t,
                    peak_positions[label, peak],
                    peak_widths[label, peak],
                    peak_heights[label, peak] * (1.0 - 0.1 * variable),
                )
            signal[variable] = profile
        return signal

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )


@register_family("shapes")
def shapes_family(
    n_samples: int,
    n_classes: int = 4,
    length: int = 96,
    n_variables: int = 1,
    rng: np.random.Generator | int | None = None,
    noise: float = 0.08,
    warp: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Generic geometric shapes (triangles, plateaus, ramps, double bumps).

    The catch-all family used to fill out the synthetic UCR archive: classes
    differ purely by line/curve composition, which is exactly the structural
    information AimTS extracts from the image modality.
    """
    rng = new_rng(rng)
    kinds = ["triangle", "plateau", "ramp", "double_bump", "vee", "sine_step"]
    class_kinds = [kinds[(i + int(rng.integers(0, len(kinds)))) % len(kinds)] for i in range(n_classes)]
    centers = rng.uniform(0.3, 0.7, size=n_classes)
    widths = rng.uniform(0.1, 0.25, size=n_classes)

    def template(label: int, t: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        kind = class_kinds[label]
        center, width = centers[label], widths[label]
        if kind == "triangle":
            curve = np.clip(1.0 - np.abs(t - center) / width, 0, None)
        elif kind == "plateau":
            curve = ((t > center - width) & (t < center + width)).astype(float)
        elif kind == "ramp":
            curve = np.clip((t - center + width) / (2 * width), 0, 1)
        elif kind == "double_bump":
            curve = _gaussian_bump(t, center - width, width / 2, 1.0) + _gaussian_bump(
                t, center + width, width / 2, 0.7
            )
        elif kind == "vee":
            curve = -np.clip(1.0 - np.abs(t - center) / width, 0, None)
        else:  # sine_step
            curve = np.sin(2 * np.pi * t / max(width, 0.05)) * (t > center)
        return np.tile(curve, (n_variables, 1))

    return _render_dataset(
        template,
        n_samples=n_samples,
        n_classes=n_classes,
        length=length,
        n_variables=n_variables,
        rng=rng,
        noise=noise,
        warp=warp,
    )
