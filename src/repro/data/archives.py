"""Synthetic stand-ins for the UCR, UEA and Monash archives.

The real archives cannot be downloaded offline; these builders produce the
same *kind* of benchmark suites — many small, heterogeneous classification
datasets spanning several domains — from the pattern families in
:mod:`repro.data.generators`.  Dataset sizes default to small values so the
full paper-style evaluation (pre-train once, fine-tune on every dataset) runs
in minutes on a CPU.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DatasetSplit, TimeSeriesDataset
from repro.data.generators import family_names, get_family
from repro.utils.seeding import new_rng


def make_dataset(
    name: str,
    family: str,
    *,
    n_classes: int,
    n_train: int,
    n_test: int,
    length: int,
    n_variables: int = 1,
    noise: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> TimeSeriesDataset:
    """Build one labelled dataset from a pattern family.

    The train and test splits share the same per-class templates (drawn from
    ``seed``) but contain independent samples, so a classifier must generalise
    over the nuisance variation rather than memorise instances.
    """
    rng = new_rng(seed)
    generator = get_family(family)
    kwargs = {"n_classes": n_classes, "length": length, "n_variables": n_variables, "rng": rng}
    if noise is not None:
        kwargs["noise"] = noise
    X_all, y_all = generator(n_train + n_test, **kwargs)
    train = DatasetSplit(X_all[:n_train], y_all[:n_train])
    test = DatasetSplit(X_all[n_train:], y_all[n_train:])
    return TimeSeriesDataset(
        name=name,
        domain=family,
        train=train,
        test=test,
        n_classes=n_classes,
        metadata={"generator": family, "length": length, "n_variables": n_variables},
    )


# --------------------------------------------------------------------------- #
# Named datasets referenced explicitly in the paper
# --------------------------------------------------------------------------- #
#: name -> (family, n_classes, n_variables, length, n_train, n_test)
NAMED_DATASETS: dict[str, tuple[str, int, int, int, int, int]] = {
    # UCR-style univariate datasets.
    "ECG200": ("ecg", 2, 1, 96, 32, 64),
    "StarLightCurves": ("starlight", 3, 1, 128, 40, 80),
    "AllGestureWiimoteX": ("motion", 4, 1, 96, 32, 64),
    "AllGestureWiimoteY": ("motion", 4, 1, 96, 32, 64),
    "AllGestureWiimoteZ": ("motion", 4, 1, 96, 32, 64),
    "CricketY": ("motion", 6, 1, 96, 36, 72),
    "Crop": ("device", 6, 1, 48, 36, 72),
    "UWaveGestureLibraryAll": ("motion", 8, 1, 128, 40, 80),
    # UEA-style multivariate datasets (Table II / few-shot suites).
    "EthanolConcentration": ("spectro", 4, 3, 96, 28, 56),
    "FaceDetection": ("eeg", 2, 4, 64, 32, 64),
    "Handwriting": ("motion", 8, 3, 96, 32, 64),
    "Heartbeat": ("ecg", 2, 4, 96, 32, 64),
    "JapaneseVowels": ("spectro", 6, 3, 64, 36, 72),
    "PEMS-SF": ("traffic", 4, 4, 96, 28, 56),
    "SelfRegulationSCP1": ("eeg", 2, 3, 96, 32, 64),
    "SelfRegulationSCP2": ("eeg", 2, 3, 96, 32, 64),
    "SpokenArabicDigits": ("spectro", 6, 4, 64, 36, 72),
    "UWaveGestureLibrary": ("motion", 8, 3, 96, 40, 80),
    "RacketSports": ("motion", 4, 3, 64, 32, 64),
    "Epilepsy": ("eeg", 4, 3, 96, 32, 64),
    # Single-source-generalization paradigm datasets (Table III).
    "SleepEEG": ("eeg", 5, 1, 128, 48, 96),
    "FD-B": ("vibration", 3, 1, 128, 32, 64),
    "Gesture": ("motion", 8, 3, 96, 40, 80),
    "EMG": ("eeg", 3, 1, 96, 24, 48),
}

#: the 10 UEA datasets used by Table II (following TimesNet's subset).
UEA10_TABLE2 = [
    "EthanolConcentration",
    "FaceDetection",
    "Handwriting",
    "Heartbeat",
    "JapaneseVowels",
    "PEMS-SF",
    "SelfRegulationSCP1",
    "SelfRegulationSCP2",
    "SpokenArabicDigits",
    "UWaveGestureLibrary",
]

#: the 6 few-shot datasets used by Table V.
FEWSHOT_DATASETS = [
    "ECG200",
    "StarLightCurves",
    "Epilepsy",
    "Handwriting",
    "RacketSports",
    "SelfRegulationSCP1",
]

#: the 4 datasets of the single-source generalization comparison (Table III).
SINGLE_SOURCE_DATASETS = ["Epilepsy", "FD-B", "Gesture", "EMG"]


def _stable_seed(name: str, base_seed: int) -> int:
    """Derive a per-dataset seed that is stable across processes."""
    return (base_seed * 1_000_003 + sum(ord(c) * (i + 1) for i, c in enumerate(name))) % (2**31)


def make_named_dataset(name: str, *, seed: int = 3407, scale: float = 1.0) -> TimeSeriesDataset:
    """Instantiate one of the named datasets from :data:`NAMED_DATASETS`.

    ``scale`` multiplies the number of train/test samples (used by the
    scalability study in Fig. 8).
    """
    if name not in NAMED_DATASETS:
        raise KeyError(f"unknown named dataset {name!r}")
    family, n_classes, n_variables, length, n_train, n_test = NAMED_DATASETS[name]
    return make_dataset(
        name,
        family,
        n_classes=n_classes,
        n_variables=n_variables,
        length=length,
        n_train=max(n_classes * 2, int(n_train * scale)),
        n_test=max(n_classes * 2, int(n_test * scale)),
        seed=_stable_seed(name, seed),
    )


# --------------------------------------------------------------------------- #
# Archive builders
# --------------------------------------------------------------------------- #
def make_ucr_like_archive(
    n_datasets: int = 16,
    *,
    seed: int = 3407,
    min_length: int = 48,
    max_length: int = 144,
) -> list[TimeSeriesDataset]:
    """Build a synthetic UCR-style archive of univariate datasets.

    The real archive has 128 datasets; ``n_datasets`` defaults to a smaller
    suite so the full multi-dataset evaluation remains CPU-friendly, while
    preserving the archive's heterogeneity (every pattern family appears,
    lengths and class counts vary).
    """
    rng = new_rng(seed)
    families = family_names()
    archive = []
    for index in range(n_datasets):
        family = families[index % len(families)]
        n_classes = int(rng.integers(2, 6))
        length = int(rng.integers(min_length, max_length))
        n_train = int(rng.integers(24, 48))
        n_test = int(rng.integers(48, 88))
        dataset = make_dataset(
            f"syn_ucr_{index:03d}_{family}",
            family,
            n_classes=n_classes,
            n_variables=1,
            length=length,
            n_train=n_train,
            n_test=n_test,
            seed=rng,
        )
        archive.append(dataset)
    return archive


def make_uea_like_archive(
    n_datasets: int = 8,
    *,
    seed: int = 3407,
    min_length: int = 48,
    max_length: int = 128,
) -> list[TimeSeriesDataset]:
    """Build a synthetic UEA-style archive of multivariate datasets."""
    rng = new_rng(seed + 1)
    families = ["motion", "eeg", "spectro", "traffic", "ecg", "vibration", "starlight", "shapes"]
    archive = []
    for index in range(n_datasets):
        family = families[index % len(families)]
        n_classes = int(rng.integers(2, 6))
        n_variables = int(rng.integers(2, 5))
        length = int(rng.integers(min_length, max_length))
        n_train = int(rng.integers(24, 44))
        n_test = int(rng.integers(48, 80))
        dataset = make_dataset(
            f"syn_uea_{index:03d}_{family}",
            family,
            n_classes=n_classes,
            n_variables=n_variables,
            length=length,
            n_train=n_train,
            n_test=n_test,
            seed=rng,
        )
        archive.append(dataset)
    return archive


def make_monash_like_corpus(
    n_datasets: int = 19,
    *,
    samples_per_dataset: int = 24,
    seed: int = 3407,
) -> list[TimeSeriesDataset]:
    """Build an unlabeled Monash-style pre-training corpus.

    The real corpus has 19 datasets, 4 univariate and 15 multivariate, spanning
    many domains; the synthetic version preserves that composition.  Labels are
    generated internally (the families are class-conditional) but discarded, so
    pre-training is genuinely self-supervised.
    """
    rng = new_rng(seed + 2)
    families = family_names()
    corpus = []
    for index in range(n_datasets):
        family = families[index % len(families)]
        univariate = index < max(1, round(n_datasets * 4 / 19))
        n_variables = 1 if univariate else int(rng.integers(2, 5))
        length = int(rng.integers(48, 144))
        n_classes = int(rng.integers(2, 6))
        generator = get_family(family)
        X, _ = generator(
            samples_per_dataset, n_classes=n_classes, length=length, n_variables=n_variables, rng=rng
        )
        split = DatasetSplit(X, None)
        corpus.append(
            TimeSeriesDataset(
                name=f"syn_monash_{index:03d}_{family}",
                domain=family,
                train=split,
                test=DatasetSplit(X[:2], None),
                n_classes=0,
                metadata={"unlabeled": True, "generator": family},
            )
        )
    return corpus
