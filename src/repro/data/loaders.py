"""Batching and preprocessing utilities.

Multi-source pre-training mixes datasets with different lengths and variable
counts; :func:`pad_or_truncate` and :func:`z_normalize` bring samples to a
common shape and scale, and :class:`BatchIterator` shuffles and batches them.

All three are vectorized hot paths: :func:`pad_or_truncate` resamples every
series of a ``(n, M, T)`` array with one batched gather (no per-series
``np.interp`` loop), and :func:`z_normalize` / :class:`BatchIterator` accept a
``dtype`` argument and only copy/cast when the input does not already have the
requested dtype (floating inputs are kept as-is by default, so a float32
pipeline never round-trips through float64).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


def as_float_array(X: np.ndarray, dtype: str | np.dtype | None = None) -> np.ndarray:
    """Return ``X`` as a floating array, copying only when a cast is needed.

    ``dtype=None`` keeps floating inputs untouched and promotes everything
    else (ints, bools) to float64; an explicit ``dtype`` casts when required.
    """
    X = np.asarray(X)
    if dtype is None:
        dtype = X.dtype if np.issubdtype(X.dtype, np.floating) else np.float64
    return X.astype(dtype, copy=False)


def z_normalize(
    X: np.ndarray, eps: float = 1e-8, *, dtype: str | np.dtype | None = None
) -> np.ndarray:
    """Per-sample, per-variable z-normalisation of ``(n, M, T)`` data.

    ``dtype`` selects the compute/output dtype; by default floating inputs
    keep their own dtype (no silent float64 upcast) and integer inputs are
    promoted to float64.
    """
    X = as_float_array(X, dtype)
    mean = X.mean(axis=-1, keepdims=True)
    std = X.std(axis=-1, keepdims=True)
    return (X - mean) / (std + eps)


def pad_or_truncate(X: np.ndarray, length: int) -> np.ndarray:
    """Bring ``(n, M, T)`` data to a fixed ``length`` along the time axis.

    Shorter series are linearly interpolated up; longer series are linearly
    interpolated down, preserving shape information better than cropping.
    The resampling runs as one batched gather over all ``n * M`` series at
    once: target positions are mapped into the source index space, and each
    output sample blends its two bracketing observations.
    """
    check_positive("length", length)
    X = as_float_array(X)
    n, m, t = X.shape
    if t == length:
        return X.copy()
    if t == 1:
        return np.repeat(X, length, axis=-1)
    # positions of the target grid in source-index space (both grids span [0, 1])
    positions = np.linspace(0.0, t - 1.0, length)
    left = np.minimum(np.floor(positions).astype(np.intp), t - 2)
    frac = (positions - left).astype(X.dtype, copy=False)
    return X[..., left] * (1.0 - frac) + X[..., left + 1] * frac


def select_variables(X: np.ndarray, n_variables: int) -> np.ndarray:
    """Bring ``(n, M, T)`` data to exactly ``n_variables`` channels.

    Datasets with fewer channels are tiled; datasets with more channels keep
    the first ``n_variables`` (multi-source pre-training needs a common width).
    """
    check_positive("n_variables", n_variables)
    n, m, t = X.shape
    if m == n_variables:
        return X.copy()
    if m > n_variables:
        return X[:, :n_variables].copy()
    repeats = int(np.ceil(n_variables / m))
    return np.tile(X, (1, repeats, 1))[:, :n_variables]


def _is_corpus(obj) -> bool:
    """Duck-typed check for the out-of-core readers of :mod:`repro.data.corpus`.

    Duck-typed (not an isinstance) so this hot module never imports the
    corpus package, which itself imports :func:`z_normalize` from here.
    """
    return (
        hasattr(obj, "gather")
        and hasattr(obj, "iter_index_batches")
        and hasattr(obj, "sample_shape")
    )


class BatchIterator:
    """Shuffling mini-batch iterator over ``(X, y)`` arrays or a sharded corpus.

    Parameters
    ----------
    X:
        Samples of shape ``(n, M, T)``, or an out-of-core
        :class:`repro.data.corpus.ShardedCorpus` / ``CorpusSubset``.  Corpus
        batches are densified per mini-batch via ``gather`` (memmap-backed —
        the corpus itself is never materialised) in the reader's shard-aware
        shuffled order, which for a single-shard corpus is bit-identical to
        the in-RAM global shuffle under the same generator.
    y:
        Optional integer labels.
    batch_size:
        Number of samples per batch; the last incomplete batch is kept.
    shuffle:
        Whether to reshuffle at the start of every epoch.
    seed:
        RNG seed for shuffling.
    dtype:
        Optional dtype for the samples; ``None`` keeps floating inputs
        untouched (no copy) and promotes integer inputs to float64.
    return_indices:
        Yield ``(batch, labels, indices)`` triples, where ``indices`` are the
        positions of the batch rows in ``X`` — the key the cross-epoch render
        cache uses to memoise per-sample images.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray | None = None,
        *,
        batch_size: int = 16,
        shuffle: bool = True,
        seed: int | np.random.Generator | None = None,
        dtype: str | np.dtype | None = None,
        return_indices: bool = False,
    ):
        check_positive("batch_size", batch_size)
        self.corpus = X if _is_corpus(X) else None
        if self.corpus is not None:
            self.X = X
            self._dtype = None if dtype is None else np.dtype(dtype)
        else:
            self.X = as_float_array(X, dtype)
            self._dtype = None
        self.y = None if y is None else np.asarray(y, dtype=np.int64)
        if self.y is not None and self.y.shape[0] != self.X.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.return_indices = bool(return_indices)
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        return int(np.ceil(self.X.shape[0] / self.batch_size))

    def _iter_corpus(self) -> Iterator[tuple]:
        for indices in self.corpus.iter_index_batches(
            self.batch_size, rng=self._rng, shuffle=self.shuffle
        ):
            batch = self.corpus.gather(indices)
            if self._dtype is not None:
                batch = batch.astype(self._dtype, copy=False)
            if self.y is not None:
                labels = self.y[indices]
            else:
                labels = self.corpus.gather_labels(indices)
            yield (batch, labels, indices) if self.return_indices else (batch, labels)

    def __iter__(self) -> Iterator[tuple]:
        if self.corpus is not None:
            yield from self._iter_corpus()
            return
        order = np.arange(self.X.shape[0])
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, order.size, self.batch_size):
            batch = order[start : start + self.batch_size]
            labels = self.y[batch] if self.y is not None else None
            if self.return_indices:
                yield self.X[batch], labels, batch
            else:
                yield self.X[batch], labels


def epoch_index_batches(
    pool,
    batch_size: int,
    *,
    epoch: int,
    seed: int,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Stateless per-epoch batch schedule over an in-RAM pool or a corpus.

    The pipelined pre-training schedule: batch order derives from
    ``SeedSequence([seed, epoch])`` alone — no shared iterator advances — so
    producers, the inline reference path and a resumed run all regenerate the
    identical sequence.  Corpus pools route through the reader's shard-aware
    :meth:`~repro.data.corpus.reader.CorpusReaderBase.batches_for_epoch`;
    in-RAM pools use a global permutation.
    """
    check_positive("batch_size", batch_size)
    batch_size = int(batch_size)
    if _is_corpus(pool):
        yield from pool.batches_for_epoch(
            batch_size, epoch=epoch, seed=seed, shuffle=shuffle
        )
        return
    n_samples = int(pool.shape[0]) if hasattr(pool, "shape") else len(pool)
    order = np.arange(n_samples, dtype=np.int64)
    if shuffle:
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), int(epoch)]))
        rng.shuffle(order)
    for start in range(0, order.size, batch_size):
        yield order[start : start + batch_size]


def build_pretraining_pool(
    corpus: "list[TimeSeriesDataset] | object",
    *,
    length: int = 96,
    n_variables: int = 1,
    max_samples: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Merge a multi-dataset corpus into one ``(N, n_variables, length)`` pool.

    Every dataset is z-normalised and resampled to a common shape so that
    samples from different sources can share mini-batches, as required by the
    multi-source pre-training stage.

    An out-of-core :class:`repro.data.corpus.ShardedCorpus` passes straight
    through (its samples were canonicalised at build time): the corpus —
    seeded-subsampled via ``max_samples`` when requested — is returned as-is
    for :class:`BatchIterator` to stream, never densified.
    """
    rng = new_rng(seed)
    if _is_corpus(corpus):
        if corpus.sample_shape != (n_variables, length):
            raise ValueError(
                f"corpus sample shape {corpus.sample_shape} does not match the "
                f"requested ({n_variables}, {length}); rebuild the corpus at "
                "the target shape"
            )
        if max_samples is not None and len(corpus) > max_samples:
            return corpus.subset(max_samples=max_samples, seed=rng)
        return corpus
    pools = []
    for dataset in corpus:
        X = z_normalize(dataset.train.X)
        X = pad_or_truncate(X, length)
        X = select_variables(X, n_variables)
        pools.append(X)
    pool = np.concatenate(pools, axis=0)
    if max_samples is not None and pool.shape[0] > max_samples:
        keep = rng.choice(pool.shape[0], size=max_samples, replace=False)
        pool = pool[np.sort(keep)]
    return pool
