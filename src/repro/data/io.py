"""Dataset import/export — plugging user data into the AimTS pipeline.

The synthetic archives make the reproduction self-contained, but a downstream
user will want to classify *their own* series.  This module converts plain
NumPy arrays (or files) into the :class:`~repro.data.dataset.TimeSeriesDataset`
container the rest of the library consumes, and round-trips datasets through
``.npz`` files for caching and sharing.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.dataset import DatasetSplit, TimeSeriesDataset
from repro.utils.paths import normalize_npz_path, resolve_npz_read_path
from repro.utils.seeding import new_rng
from repro.utils.validation import check_probability


def dataset_from_arrays(
    name: str,
    X: np.ndarray,
    y: np.ndarray,
    *,
    domain: str = "user",
    test_size: float = 0.3,
    X_test: np.ndarray | None = None,
    y_test: np.ndarray | None = None,
    seed: int | np.random.Generator | None = 0,
) -> TimeSeriesDataset:
    """Build a :class:`TimeSeriesDataset` from raw arrays.

    Parameters
    ----------
    name, domain:
        Identifier and free-form domain tag for the dataset.
    X, y:
        Samples of shape ``(n, M, T)`` (a 2-D ``(n, T)`` array is promoted to
        univariate) and integer labels.  If ``X_test``/``y_test`` are not
        given, a stratified split of ``X`` is used.
    test_size:
        Fraction of samples held out for the test split when no explicit test
        data is provided.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 2:
        X = X[:, None, :]
    y = np.asarray(y)
    labels, y_encoded = np.unique(y, return_inverse=True)
    n_classes = labels.size

    if X_test is not None:
        if y_test is None:
            raise ValueError("y_test must be provided together with X_test")
        X_test = np.asarray(X_test, dtype=np.float64)
        if X_test.ndim == 2:
            X_test = X_test[:, None, :]
        y_test_encoded = np.searchsorted(labels, np.asarray(y_test))
        train = DatasetSplit(X, y_encoded)
        test = DatasetSplit(X_test, y_test_encoded)
    else:
        check_probability("test_size", test_size)
        if not 0.0 < test_size < 1.0:
            raise ValueError("test_size must be strictly between 0 and 1")
        rng = new_rng(seed)
        test_indices: list[int] = []
        for label in range(n_classes):
            class_indices = np.flatnonzero(y_encoded == label)
            n_test = max(1, int(round(test_size * class_indices.size)))
            test_indices.extend(rng.choice(class_indices, size=n_test, replace=False).tolist())
        test_mask = np.zeros(X.shape[0], dtype=bool)
        test_mask[np.asarray(test_indices)] = True
        train = DatasetSplit(X[~test_mask], y_encoded[~test_mask])
        test = DatasetSplit(X[test_mask], y_encoded[test_mask])

    return TimeSeriesDataset(
        name=name,
        domain=domain,
        train=train,
        test=test,
        n_classes=n_classes,
        metadata={"source": "user", "original_labels": labels.tolist()},
    )


def save_dataset(dataset: TimeSeriesDataset, path: str | os.PathLike) -> str:
    """Serialise a dataset to an ``.npz`` file; returns the path written.

    The suffix convention matches :mod:`repro.api.bundle`: a missing ``.npz``
    is appended case-insensitively (``data.NPZ`` stays ``data.NPZ``), and
    :func:`load_dataset_file` accepts the same path string — suffixed or not.
    """
    path = normalize_npz_path(path)
    payload = {
        "train_X": dataset.train.X,
        "test_X": dataset.test.X,
        "name": np.array(dataset.name),
        "domain": np.array(dataset.domain),
        "n_classes": np.array(dataset.n_classes),
    }
    if dataset.train.y is not None:
        payload["train_y"] = dataset.train.y
    if dataset.test.y is not None:
        payload["test_y"] = dataset.test.y
    # write through a file handle: np.savez would re-append ".npz" to a
    # string path whose suffix differs in case (e.g. "data.NPZ")
    with open(path, "wb") as handle:
        np.savez(handle, **payload)
    return path


def load_dataset_file(path: str | os.PathLike) -> TimeSeriesDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    Accepts the same path string ``save_dataset`` was given — the ``.npz``
    suffix is appended when the bare path does not exist on disk.
    """
    path = resolve_npz_read_path(path)
    with np.load(path, allow_pickle=False) as archive:
        train_y = archive["train_y"] if "train_y" in archive.files else None
        test_y = archive["test_y"] if "test_y" in archive.files else None
        return TimeSeriesDataset(
            name=str(archive["name"]),
            domain=str(archive["domain"]),
            train=DatasetSplit(archive["train_X"], train_y),
            test=DatasetSplit(archive["test_X"], test_y),
            n_classes=int(archive["n_classes"]),
            metadata={"source": str(path)},
        )
