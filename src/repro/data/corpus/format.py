"""The on-disk sharded corpus format shared by writer, reader and CLI.

A *corpus directory* holds fixed-shape samples split across ``.npy`` shard
files plus one ``manifest.json`` describing them:

``format`` / ``schema_version``
    The literal ``"repro-corpus"`` and an integer version; opening anything
    else raises :class:`CorpusFormatError` instead of garbage.
``dtype`` / ``sample_shape`` / ``labels_dtype``
    Storage dtype, the common per-sample shape ``(M, T)``, and the label
    dtype (``null`` for unlabeled corpora).
``shards``
    One entry per shard, in order: data file name, sample count, a content
    checksum of the data bytes, and (when labeled) the label file and its
    checksum.  Checksums make corruption detectable (``verify`` subcommand /
    :meth:`ShardedCorpus.verify`) without trusting file sizes.
``provenance``
    Free-form JSON recording how the corpus was produced — the synthetic
    builder stores the seed, block size and per-family sample splits here so
    a corpus is reproducible from its manifest alone.

Shard files are plain ``.npy`` arrays of shape ``(n_samples, M, T)``: they
open zero-copy with ``np.load(..., mmap_mode="r")`` and stay readable by any
NumPy without this library.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

#: current corpus schema; bump when the layout changes incompatibly
SCHEMA_VERSION = 1

_FORMAT = "repro-corpus"

#: manifest file name inside a corpus directory
MANIFEST_NAME = "manifest.json"


class CorpusFormatError(ValueError):
    """Raised when a directory is not a corpus or uses an unsupported schema."""


def shard_file_name(index: int) -> str:
    """Data file name of shard ``index`` (zero-padded so listings sort)."""
    return f"shard-{index:05d}.npy"


def labels_file_name(index: int) -> str:
    """Label file name of shard ``index``."""
    return f"labels-{index:05d}.npy"


def array_checksum(array: np.ndarray) -> str:
    """Hex content digest of one array (value-, dtype- and shape-sensitive)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(array.tobytes(), digest_size=16)
    digest.update(repr((str(array.dtype), array.shape)).encode())
    return digest.hexdigest()


def manifest_path(directory: str | os.PathLike) -> str:
    return os.path.join(str(directory), MANIFEST_NAME)


def write_manifest(directory: str | os.PathLike, manifest: dict) -> str:
    """Write ``manifest`` (stamped with format tag + schema version).

    Atomic (tmp + ``os.replace``): a crash mid-write leaves the previous
    manifest readable, never a truncated JSON file.
    """
    from repro.utils.paths import atomic_write

    manifest = dict(manifest)
    manifest.setdefault("format", _FORMAT)
    manifest.setdefault("schema_version", SCHEMA_VERSION)
    path = manifest_path(directory)

    def _dump(handle) -> None:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")

    return atomic_write(path, _dump, mode="w")


def read_manifest(directory: str | os.PathLike) -> dict:
    """Read and validate the manifest of a corpus directory.

    Raises :class:`CorpusFormatError` when the directory holds no manifest,
    the manifest is not a corpus manifest, or its schema version is
    unsupported.
    """
    path = manifest_path(directory)
    if not os.path.isfile(path):
        raise CorpusFormatError(f"{str(directory)!r} is not a corpus directory (no {MANIFEST_NAME})")
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (ValueError, OSError) as exc:
        raise CorpusFormatError(f"unreadable corpus manifest {path!r}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT:
        raise CorpusFormatError(
            f"{path!r} is not a repro corpus manifest (format={manifest.get('format')!r})"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CorpusFormatError(
            f"{path!r} uses corpus schema version {version!r}; this build only "
            f"supports version {SCHEMA_VERSION} — rebuild the corpus with a "
            "matching version of the library"
        )
    return manifest
