"""Stream the synthetic generator families into an on-disk corpus.

:func:`build_synthetic_corpus` produces the unbounded labelled pre-training
corpora the scaling experiments need (ROADMAP: 10^5–10^7-sample Fig. 8-style
curves) without ever materialising the pool: samples are generated in fixed
*generation blocks* and handed straight to a :class:`CorpusWriter`, so peak
memory is one block plus one shard regardless of ``n_samples``.

Determinism contract
--------------------
Generation is chunked by ``block_size``, **independently of the shard
layout**: block ``b`` of family ``f`` is rendered with the derived generator
``default_rng(SeedSequence([seed, f, b]))``.  Consequences:

* the corpus bytes depend only on ``(seed, families, n_samples, block_size,
  length, n_variables, normalize, dtype)`` — rebuilding with a different
  ``shard_size`` is sample-for-sample byte-identical;
* streaming to disk equals one-shot in-RAM generation:
  :func:`generate_family_samples` (which materialises the same blocks) is
  the bit-exact reference, and a family whose sample count fits one block is
  exactly ``family(n, rng=default_rng(SeedSequence([seed, f, 0])))``;
* per-block class templates are redrawn per block (families draw class
  parameters from their generator), which adds intra-class diversity at
  scale — the per-block template provenance is recorded in the manifest.

Labels are offset per family into one global label space; the per-family
``label_offset`` / sample split lives in the manifest's provenance.
"""

from __future__ import annotations

import inspect
import os

import numpy as np

from repro.data.corpus.writer import CorpusWriter
from repro.data.generators import get_family
from repro.data.loaders import z_normalize
from repro.utils.validation import check_positive

#: default samples per generation block (memory bound of the builder)
DEFAULT_BLOCK_SIZE = 2048

FamilySpec = str | tuple[str, dict]


def _parse_spec(spec: FamilySpec) -> tuple[str, dict]:
    if isinstance(spec, str):
        return spec, {}
    name, kwargs = spec  # a (name, kwargs) pair (tuple or list, e.g. from JSON)
    return str(name), dict(kwargs)


def family_n_classes(name: str, kwargs: dict | None = None) -> int:
    """Class count a family spec will produce (explicit kwarg or the default)."""
    kwargs = kwargs or {}
    if "n_classes" in kwargs:
        return int(kwargs["n_classes"])
    default = inspect.signature(get_family(name)).parameters["n_classes"].default
    return int(default)


def block_rng(seed: int, family_index: int, block_index: int) -> np.random.Generator:
    """The derived generator of one ``(family, block)`` cell."""
    return np.random.default_rng(
        np.random.SeedSequence([int(seed), int(family_index), int(block_index)])
    )


def generate_family_samples(
    spec: FamilySpec,
    n_samples: int,
    *,
    seed: int,
    family_index: int = 0,
    length: int = 96,
    n_variables: int = 1,
    block_size: int = DEFAULT_BLOCK_SIZE,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """The in-RAM reference of one family's streamed samples.

    Materialises exactly the blocks :func:`build_synthetic_corpus` streams
    for this family (same derived generators, same normalisation), so the
    streamed corpus can be asserted byte-identical against a plain in-memory
    call.  Returns float64 ``(X, y)`` — the corpus writer's dtype cast is the
    only difference between this and the bytes on disk.
    """
    check_positive("n_samples", n_samples)
    name, kwargs = _parse_spec(spec)
    family = get_family(name)
    blocks_X, blocks_y = [], []
    for block_index, start in enumerate(range(0, int(n_samples), int(block_size))):
        count = min(int(block_size), int(n_samples) - start)
        X, y = family(
            count,
            length=length,
            n_variables=n_variables,
            rng=block_rng(seed, family_index, block_index),
            **kwargs,
        )
        if normalize:
            X = z_normalize(X)
        blocks_X.append(X)
        blocks_y.append(np.asarray(y, dtype=np.int64))
    return np.concatenate(blocks_X, axis=0), np.concatenate(blocks_y, axis=0)


def split_samples(n_samples: int, n_families: int) -> list[int]:
    """Even per-family sample split (earlier families absorb the remainder)."""
    base, remainder = divmod(int(n_samples), int(n_families))
    return [base + (1 if index < remainder else 0) for index in range(int(n_families))]


def build_synthetic_corpus(
    directory: str | os.PathLike,
    families: list[FamilySpec] | None = None,
    n_samples: int = 10_000,
    *,
    length: int = 96,
    n_variables: int = 1,
    shard_size: int = 4096,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
    dtype: str | np.dtype = "float32",
    normalize: bool = True,
    overwrite: bool = False,
):
    """Stream ``n_samples`` synthetic samples across ``families`` to disk.

    Parameters
    ----------
    directory:
        Target corpus directory (see :class:`CorpusWriter` for overwrite
        semantics).
    families:
        Family specs — names from :func:`repro.data.generators.family_names`
        or ``(name, kwargs)`` pairs; ``None`` uses the ECG/motion/device
        trio.  ``n_samples`` is split evenly across them; samples are laid
        out family-major (shuffling is the reader's job).
    length, n_variables:
        Common sample shape, passed straight to every family.
    shard_size, block_size:
        On-disk shard capacity and generation-block size.  Only
        ``block_size`` affects the sample bytes (see the determinism
        contract above); ``shard_size`` only affects the file layout.
    normalize:
        Apply per-sample :func:`~repro.data.loaders.z_normalize` (the same
        canonicalisation ``build_pretraining_pool`` applies to dataset
        corpora).

    Returns the opened :class:`~repro.data.corpus.ShardedCorpus`.
    """
    from repro.data.corpus.reader import ShardedCorpus

    check_positive("n_samples", n_samples)
    check_positive("block_size", block_size)
    if families is None:
        families = ["ecg", "motion", "device"]
    if not families:
        raise ValueError("families must not be empty")
    specs = [_parse_spec(spec) for spec in families]
    counts = split_samples(n_samples, len(specs))

    label_offset = 0
    provenance_families = []
    for (name, kwargs), count in zip(specs, counts):
        provenance_families.append(
            {
                "name": name,
                "kwargs": kwargs,
                "n_samples": count,
                "label_offset": label_offset,
                "n_classes": family_n_classes(name, kwargs),
            }
        )
        label_offset += family_n_classes(name, kwargs)

    writer = CorpusWriter(
        directory,
        (int(n_variables), int(length)),
        dtype=dtype,
        shard_size=shard_size,
        labeled=True,
        overwrite=overwrite,
        provenance={
            "builder": "build_synthetic_corpus",
            "seed": int(seed),
            "block_size": int(block_size),
            "normalize": bool(normalize),
            "n_classes_total": label_offset,
            "families": provenance_families,
        },
    )
    with writer:
        for family_index, entry in enumerate(provenance_families):
            remaining = entry["n_samples"]
            block_index = 0
            while remaining > 0:
                count = min(int(block_size), remaining)
                X, y = get_family(entry["name"])(
                    count,
                    length=length,
                    n_variables=n_variables,
                    rng=block_rng(seed, family_index, block_index),
                    **entry["kwargs"],
                )
                if normalize:
                    X = z_normalize(X)
                writer.append(X, np.asarray(y, dtype=np.int64) + entry["label_offset"])
                remaining -= count
                block_index += 1
    return ShardedCorpus(directory)
