"""Zero-copy sharded corpus reader with shard-aware shuffled iteration.

:class:`ShardedCorpus` opens the shard files of a corpus directory as
``np.memmap`` views (``np.load(..., mmap_mode="r")``), so a million-sample
corpus costs a handful of file descriptors, not its size in RAM.  Batches
are assembled by :meth:`~CorpusReaderBase.gather`, which groups the requested
indices by shard and slices each memmap once — only batch-sized copies are
ever densified.

Epoch iteration (:meth:`~CorpusReaderBase.iter_index_batches`) is
*shard-aware*: a seeded permutation of the shard order plus a seeded
permutation **within** each shard.  That keeps epochs deterministic at a
fixed seed while the resident index state stays bounded by one shard (plus a
partial-batch carry) instead of a global ``(N,)`` permutation, and it keeps
disk access shard-local so a spinning-disk corpus streams instead of
seeking.  For a single-shard corpus the order is bit-identical to
``BatchIterator``'s in-RAM global shuffle under the same generator.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

import numpy as np

from repro.data.corpus.format import (
    CorpusFormatError,
    array_checksum,
    read_manifest,
)
from repro.utils.faults import InjectedFault, fault_point
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class CorpusReadError(CorpusFormatError):
    """A shard file stayed unreadable after the configured read retries."""


def is_sharded_corpus(obj) -> bool:
    """Duck-typed corpus check used by the loaders (no import cycle)."""
    return (
        hasattr(obj, "gather")
        and hasattr(obj, "iter_index_batches")
        and hasattr(obj, "sample_shape")
    )


class CorpusReaderBase:
    """Shared protocol of :class:`ShardedCorpus` and :class:`CorpusSubset`.

    Subclasses provide ``_shard_index_block(shard)`` — the index keys living
    in one shard, in on-disk order — plus :meth:`gather` /
    :meth:`gather_labels`; iteration, batching and materialisation are
    implemented here once.
    """

    #: set by subclasses
    n_shards: int
    sample_shape: tuple[int, ...]
    dtype: np.dtype
    labeled: bool

    def __len__(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def _shard_index_block(self, shard: int) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def gather(self, indices: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def gather_labels(self, indices: np.ndarray) -> np.ndarray | None:  # pragma: no cover
        raise NotImplementedError

    @property
    def shape(self) -> tuple[int, ...]:
        """``(n_samples, M, T)`` — the shape the corpus would densify to."""
        return (len(self), *self.sample_shape)

    @property
    def nbytes(self) -> int:
        """Bytes the sample data would occupy densified."""
        return int(len(self)) * int(np.prod(self.sample_shape)) * self.dtype.itemsize

    def materialize(self) -> np.ndarray:
        """Densify the whole corpus into one in-RAM array (small corpora only)."""
        return self.gather(np.arange(len(self), dtype=np.int64))

    # --------------------------------------------------------------- iteration
    def iter_index_batches(
        self,
        batch_size: int,
        *,
        rng: int | np.random.Generator | None = None,
        shuffle: bool = True,
    ) -> Iterator[np.ndarray]:
        """Yield index batches covering every sample exactly once.

        ``shuffle=True`` draws the shard order and every within-shard
        permutation from ``rng`` (shared generators advance it, so trainer
        checkpoints capture the epoch stream exactly as for in-RAM pools);
        ``shuffle=False`` yields sequential order.  Batches may span shard
        boundaries — the carry buffer keeps every batch except the last at
        ``batch_size``.
        """
        check_positive("batch_size", batch_size)
        batch_size = int(batch_size)
        rng = new_rng(rng)
        shard_order = rng.permutation(self.n_shards) if shuffle else np.arange(self.n_shards)
        carry = np.empty(0, dtype=np.int64)
        for shard in shard_order:
            block = self._shard_index_block(int(shard))
            if block.size == 0:
                continue
            if shuffle:
                block = block[rng.permutation(block.size)]
            if carry.size:
                take = min(batch_size - carry.size, block.size)
                carry = np.concatenate([carry, block[:take]])
                block = block[take:]
                if carry.size < batch_size:
                    continue
                yield carry
                carry = np.empty(0, dtype=np.int64)
            n_full = block.size // batch_size
            for start in range(0, n_full * batch_size, batch_size):
                yield block[start : start + batch_size]
            carry = np.array(block[n_full * batch_size :], dtype=np.int64)
        if carry.size:
            yield carry

    def batches_for_epoch(
        self,
        batch_size: int,
        *,
        epoch: int,
        seed: int,
        shuffle: bool = True,
    ) -> Iterator[np.ndarray]:
        """The epoch's index batches as a *stateless* schedule.

        Unlike :meth:`iter_index_batches` — whose generator consumes a shared
        ``rng`` and is therefore single-consumer — this derives a private
        generator from ``SeedSequence([seed, epoch])``, so any number of
        producers (or a resumed run) can regenerate the identical batch
        sequence without coordinating iterator state.  Same shard-aware
        algorithm, same batch shapes.
        """
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), int(epoch)]))
        return self.iter_index_batches(batch_size, rng=rng, shuffle=shuffle)

    def peek_ahead(
        self,
        k: int,
        batch_size: int,
        *,
        epoch: int,
        seed: int,
        shuffle: bool = True,
    ) -> list[np.ndarray]:
        """The first ``k`` index batches of an epoch, without any shared state.

        A producer-side convenience over :meth:`batches_for_epoch`: claiming
        the look-ahead window never advances anyone else's iterator.
        """
        check_positive("k", k)
        schedule = self.batches_for_epoch(
            batch_size, epoch=epoch, seed=seed, shuffle=shuffle
        )
        return [batch for batch, _ in zip(schedule, range(int(k)))]


class ShardedCorpus(CorpusReaderBase):
    """Read a corpus directory written by :class:`~repro.data.corpus.CorpusWriter`.

    Parameters
    ----------
    directory:
        The corpus directory (must hold a valid ``manifest.json``).
    mmap:
        Open shards as read-only memory maps (the point of the format);
        ``False`` loads each shard into RAM on first touch — only useful to
        benchmark the memmap path against.
    read_retries:
        Transient shard-open failures (NFS hiccups, chaos faults at the
        ``corpus.read_shard`` site) are retried this many times before the
        shard counts as unreadable; retries are tallied in
        ``read_retry_count``.
    skip_corrupt:
        ``True`` iterates *around* unreadable shards: a shard whose open
        fails after retries is quarantined in memory (``quarantined`` maps
        shard → reason, ``dropped_samples`` counts the loss) and its index
        block is skipped by :meth:`iter_index_batches`.  :meth:`gather` on a
        quarantined shard's indices still raises — silent sample
        substitution is never correct.  The default ``False`` raises
        :class:`CorpusReadError` at first touch.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        mmap: bool = True,
        read_retries: int = 1,
        skip_corrupt: bool = False,
    ):
        if read_retries < 0:
            raise ValueError(f"read_retries must be >= 0, got {read_retries}")
        self.directory = str(directory)
        self.manifest = read_manifest(self.directory)
        self.mmap = bool(mmap)
        self.read_retries = int(read_retries)
        self.skip_corrupt = bool(skip_corrupt)
        #: total transient-open retries that eventually succeeded or gave up
        self.read_retry_count = 0
        #: shard index → reason, for shards quarantined at read time
        self.quarantined: dict[int, str] = {}
        #: samples unreachable through quarantined shards
        self.dropped_samples = 0
        self.sample_shape = tuple(int(size) for size in self.manifest["sample_shape"])
        self.dtype = np.dtype(self.manifest["dtype"])
        self.labeled = self.manifest.get("labels_dtype") is not None
        self._shard_entries = list(self.manifest["shards"])
        counts = np.array([int(entry["n_samples"]) for entry in self._shard_entries], dtype=np.int64)
        #: global index of each shard's first sample, plus the total
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        declared = int(self.manifest["n_samples"])
        if declared != int(self._offsets[-1]):
            raise CorpusFormatError(
                f"manifest n_samples={declared} does not match the shard "
                f"counts (sum={int(self._offsets[-1])})"
            )
        self._data_maps: dict[int, np.ndarray] = {}
        self._label_maps: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return int(self._offsets[-1])

    @property
    def n_shards(self) -> int:
        return len(self._shard_entries)

    @property
    def shard_sizes(self) -> list[int]:
        return [int(entry["n_samples"]) for entry in self._shard_entries]

    @property
    def provenance(self) -> dict:
        return self.manifest.get("provenance", {})

    # ------------------------------------------------------------------ access
    def _open(self, file_name: str) -> np.ndarray:
        path = os.path.join(self.directory, file_name)
        attempt = 0
        while True:
            try:
                fault_point("corpus.read_shard")
                return np.load(path, mmap_mode="r" if self.mmap else None, allow_pickle=False)
            except (OSError, ValueError, InjectedFault) as error:
                if attempt >= self.read_retries:
                    raise CorpusReadError(
                        f"shard file {file_name!r} unreadable after "
                        f"{attempt + 1} attempt(s): {error}"
                    ) from error
                attempt += 1
                self.read_retry_count += 1

    def shard_data(self, shard: int) -> np.ndarray:
        """The ``(n, M, T)`` memmap view of one shard (opened lazily, kept)."""
        view = self._data_maps.get(shard)
        if view is None:
            view = self._open(self._shard_entries[shard]["data"])
            self._data_maps[shard] = view
        return view

    def shard_labels(self, shard: int) -> np.ndarray:
        view = self._label_maps.get(shard)
        if view is None:
            view = self._open(self._shard_entries[shard]["labels"])
            self._label_maps[shard] = view
        return view

    def _quarantine(self, shard: int, reason: str) -> None:
        if shard not in self.quarantined:
            self.quarantined[shard] = reason
            self.dropped_samples += int(self._shard_entries[shard]["n_samples"])

    def _shard_index_block(self, shard: int) -> np.ndarray:
        if shard in self.quarantined:
            return np.empty(0, dtype=np.int64)
        if self.skip_corrupt:
            # probe the shard before handing out its indices: an unreadable
            # shard is quarantined here so iteration routes around it instead
            # of failing mid-epoch at gather time
            try:
                self.shard_data(shard)
                if self.labeled:
                    self.shard_labels(shard)
            except CorpusReadError as error:
                self._quarantine(shard, str(error))
                return np.empty(0, dtype=np.int64)
        return np.arange(self._offsets[shard], self._offsets[shard + 1], dtype=np.int64)

    def _shard_of(self, indices: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._offsets, indices, side="right") - 1

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(f"corpus indices out of range [0, {len(self)})")
        return indices

    def __getitem__(self, index: int) -> np.ndarray:
        return self.gather(np.array([int(index)]))[0]

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Densify the samples at global ``indices`` into one ``(B, M, T)`` array.

        Indices are grouped by shard so each shard's memmap is fancy-indexed
        once; pages of untouched shards are never read.
        """
        indices = self._check_indices(indices)
        out = np.empty((indices.size, *self.sample_shape), dtype=self.dtype)
        shard_ids = self._shard_of(indices)
        for shard in np.unique(shard_ids):
            if int(shard) in self.quarantined:
                raise CorpusReadError(
                    f"shard {int(shard)} is quarantined "
                    f"({self.quarantined[int(shard)]}); its samples are unavailable"
                )
            mask = shard_ids == shard
            out[mask] = self.shard_data(int(shard))[indices[mask] - self._offsets[shard]]
        return out

    def gather_labels(self, indices: np.ndarray) -> np.ndarray | None:
        """Labels at global ``indices`` (``None`` for unlabeled corpora)."""
        if not self.labeled:
            return None
        indices = self._check_indices(indices)
        out = np.empty(indices.size, dtype=np.int64)
        shard_ids = self._shard_of(indices)
        for shard in np.unique(shard_ids):
            mask = shard_ids == shard
            out[mask] = self.shard_labels(int(shard))[indices[mask] - self._offsets[shard]]
        return out

    @property
    def labels(self) -> np.ndarray | None:
        """All labels densified (labels are tiny relative to the samples)."""
        if not self.labeled:
            return None
        return self.gather_labels(np.arange(len(self), dtype=np.int64))

    # ------------------------------------------------------------------ subset
    def subset(
        self,
        indices: np.ndarray | None = None,
        *,
        max_samples: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "CorpusSubset":
        """A reader over a subset of this corpus (no data is copied).

        Pass explicit global ``indices``, or ``max_samples`` for a seeded
        uniform subsample (sorted, so shard locality is preserved) — the
        out-of-core analogue of ``build_pretraining_pool(max_samples=...)``.
        """
        if (indices is None) == (max_samples is None):
            raise ValueError("pass exactly one of indices / max_samples")
        if indices is None:
            check_positive("max_samples", max_samples)
            if max_samples >= len(self):
                indices = np.arange(len(self), dtype=np.int64)
            else:
                rng = new_rng(seed)
                indices = np.sort(rng.choice(len(self), size=int(max_samples), replace=False))
        return CorpusSubset(self, indices)

    # ------------------------------------------------------------------ verify
    def verify(self) -> list[str]:
        """Re-checksum every shard; returns the corrupt file names (empty = ok).

        Each shard is densified one at a time (bounded memory) and hashed
        exactly as the writer hashed it; a flipped byte, truncated file or
        missing file lands the file name in the returned list.
        """
        corrupt: list[str] = []
        for shard, entry in enumerate(self._shard_entries):
            for file_key, checksum_key, open_fn in (
                ("data", "checksum", self.shard_data),
                ("labels", "labels_checksum", self.shard_labels),
            ):
                if file_key not in entry:
                    continue
                try:
                    array = np.asarray(open_fn(shard))
                    ok = (
                        array.shape[0] == int(entry["n_samples"])
                        and array_checksum(array) == entry[checksum_key]
                    )
                except (OSError, ValueError):
                    ok = False
                if not ok:
                    corrupt.append(entry[file_key])
        return corrupt


class CorpusSubset(CorpusReaderBase):
    """A view over selected global indices of a :class:`ShardedCorpus`.

    Exposes the same reader protocol with *local* indices ``0..len-1`` (the
    keys yielded by iteration and consumed by :meth:`gather`), so downstream
    consumers — ``BatchIterator``, the render cache — treat a subset exactly
    like a smaller corpus with stable per-sample keys.
    """

    def __init__(self, base: ShardedCorpus, indices: np.ndarray):
        self.base = base
        self.indices = base._check_indices(np.asarray(indices, dtype=np.int64))
        self.sample_shape = base.sample_shape
        self.dtype = base.dtype
        self.labeled = base.labeled
        #: local positions grouped by the shard of their global index
        shard_ids = base._shard_of(self.indices)
        self._per_shard = [
            np.flatnonzero(shard_ids == shard).astype(np.int64)
            for shard in range(base.n_shards)
        ]

    def __len__(self) -> int:
        return int(self.indices.size)

    @property
    def n_shards(self) -> int:
        return self.base.n_shards

    def _shard_index_block(self, shard: int) -> np.ndarray:
        return self._per_shard[shard]

    def _map(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(f"subset indices out of range [0, {len(self)})")
        return self.indices[indices]

    def __getitem__(self, index: int) -> np.ndarray:
        return self.base[int(self._map(np.array([int(index)]))[0])]

    def gather(self, indices: np.ndarray) -> np.ndarray:
        return self.base.gather(self._map(indices))

    def gather_labels(self, indices: np.ndarray) -> np.ndarray | None:
        return self.base.gather_labels(self._map(indices))
