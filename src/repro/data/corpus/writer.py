"""Streaming shard writer with bounded memory.

:class:`CorpusWriter` accepts samples in arbitrarily sized ``append`` calls
and flushes one fixed-capacity shard buffer to disk whenever it fills, so
writing a million-sample corpus holds at most ``shard_size`` samples in RAM.
Shard checksums are computed from the exact bytes written, and the manifest
is written last (on :meth:`close`), so a crashed build leaves a directory
the reader refuses to open rather than a silently truncated corpus.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.corpus.format import (
    MANIFEST_NAME,
    array_checksum,
    labels_file_name,
    shard_file_name,
    write_manifest,
)
from repro.utils.validation import check_positive


class CorpusWriter:
    """Stream ``(sample, label)`` data into an on-disk sharded corpus.

    Parameters
    ----------
    directory:
        Target corpus directory; created if missing.  A directory already
        holding a corpus (or stray shard files) is rejected unless
        ``overwrite=True``, which removes the previous manifest and shards.
    sample_shape:
        Common per-sample shape ``(M, T)``; every appended sample must match.
    dtype:
        Storage dtype of the samples (appends cast on copy into the shard
        buffer, so the bytes on disk never depend on the caller's dtype).
    shard_size:
        Samples per shard — the writer's entire memory footprint.
    labeled:
        Whether the corpus stores an integer label per sample.  Appends must
        then always provide ``y`` (and never otherwise).
    provenance:
        Free-form JSON-serialisable dict recorded in the manifest (seeds,
        generator spec, source description).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        sample_shape: tuple[int, ...],
        *,
        dtype: str | np.dtype = "float32",
        shard_size: int = 4096,
        labeled: bool = False,
        provenance: dict | None = None,
        overwrite: bool = False,
    ):
        check_positive("shard_size", shard_size)
        self.directory = str(directory)
        self.sample_shape = tuple(int(size) for size in sample_shape)
        if not self.sample_shape or any(size <= 0 for size in self.sample_shape):
            raise ValueError(f"sample_shape must be positive, got {self.sample_shape}")
        self.dtype = np.dtype(dtype)
        self.shard_size = int(shard_size)
        self.labeled = bool(labeled)
        self.provenance = dict(provenance) if provenance else {}
        os.makedirs(self.directory, exist_ok=True)
        existing = [
            name
            for name in os.listdir(self.directory)
            if name == MANIFEST_NAME or (name.startswith(("shard-", "labels-")) and name.endswith(".npy"))
        ]
        if existing:
            if not overwrite:
                raise FileExistsError(
                    f"{self.directory!r} already holds corpus files "
                    f"({sorted(existing)[:3]}...); pass overwrite=True to replace them"
                )
            for name in existing:
                os.remove(os.path.join(self.directory, name))
        self._buffer = np.empty((self.shard_size, *self.sample_shape), dtype=self.dtype)
        self._label_buffer = np.empty(self.shard_size, dtype=np.int64) if self.labeled else None
        self._buffered = 0
        self._shards: list[dict] = []
        self._n_samples = 0
        self._closed = False

    # ------------------------------------------------------------------ append
    def __len__(self) -> int:
        """Samples accepted so far (buffered + flushed)."""
        return self._n_samples

    def append(self, X: np.ndarray, y: np.ndarray | None = None) -> None:
        """Append one ``(M, T)`` sample or a ``(n, M, T)`` batch.

        ``y`` is required for labeled corpora (scalar or ``(n,)``) and
        rejected otherwise.  Data is copied into the shard buffer — the
        caller's arrays are never retained.
        """
        if self._closed:
            raise RuntimeError("CorpusWriter is closed")
        X = np.asarray(X)
        if X.shape == self.sample_shape:
            X = X[None]
        if X.ndim != len(self.sample_shape) + 1 or X.shape[1:] != self.sample_shape:
            raise ValueError(
                f"expected samples of shape {self.sample_shape} (or a leading "
                f"batch axis), got {X.shape}"
            )
        if self.labeled:
            if y is None:
                raise ValueError("labeled corpus: append() requires y")
            y = np.atleast_1d(np.asarray(y, dtype=np.int64))
            if y.shape != (X.shape[0],):
                raise ValueError(f"y must have shape ({X.shape[0]},), got {y.shape}")
        elif y is not None:
            raise ValueError("unlabeled corpus: append() must not receive y")
        start = 0
        while start < X.shape[0]:
            take = min(self.shard_size - self._buffered, X.shape[0] - start)
            stop = start + take
            self._buffer[self._buffered : self._buffered + take] = X[start:stop]
            if self.labeled:
                self._label_buffer[self._buffered : self._buffered + take] = y[start:stop]
            self._buffered += take
            self._n_samples += take
            start = stop
            if self._buffered == self.shard_size:
                self._flush_shard()

    def _flush_shard(self) -> None:
        if self._buffered == 0:
            return
        index = len(self._shards)
        data = self._buffer[: self._buffered]
        entry = {
            "data": shard_file_name(index),
            "n_samples": int(self._buffered),
            "checksum": array_checksum(data),
        }
        np.save(os.path.join(self.directory, entry["data"]), data)
        if self.labeled:
            labels = self._label_buffer[: self._buffered]
            entry["labels"] = labels_file_name(index)
            entry["labels_checksum"] = array_checksum(labels)
            np.save(os.path.join(self.directory, entry["labels"]), labels)
        self._shards.append(entry)
        self._buffered = 0

    # ------------------------------------------------------------------- close
    def close(self) -> str:
        """Flush the partial shard and write the manifest; returns its path.

        Idempotent: a second close returns the manifest path again.
        """
        if self._closed:
            return os.path.join(self.directory, MANIFEST_NAME)
        self._flush_shard()
        self._closed = True
        manifest = {
            "dtype": str(self.dtype),
            "sample_shape": list(self.sample_shape),
            "labels_dtype": "int64" if self.labeled else None,
            "n_samples": int(self._n_samples),
            "shard_size": int(self.shard_size),
            "shards": self._shards,
            "provenance": self.provenance,
        }
        return write_manifest(self.directory, manifest)

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # only finalise a manifest for a successfully completed build
        if exc_type is None:
            self.close()
