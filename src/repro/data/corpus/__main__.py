"""Command-line front door of the sharded corpus store.

::

    python -m repro.data.corpus build --out DIR --families ecg,motion \\
        --n-samples 100000 [--length 96 --n-variables 1 --shard-size 4096 \\
        --block-size 2048 --seed 0 --dtype float32 --no-normalize --overwrite]
    python -m repro.data.corpus inspect DIR [--json]
    python -m repro.data.corpus verify DIR [--quarantine]

``build`` streams generator families to disk (see
:func:`~repro.data.corpus.build_synthetic_corpus` for the determinism
contract), ``inspect`` prints a manifest summary (including any quarantined
shards), and ``verify`` re-hashes every shard against its manifest checksum,
exiting non-zero and naming the corrupt files when the bytes have drifted.
``verify --quarantine`` additionally moves each corrupt shard's files into
``DIR/quarantine/`` and rewrites the manifest (atomically) without them,
recording the loss under ``quarantined_shards`` — the corpus then loads
cleanly with the surviving samples.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.data.corpus.format import write_manifest
from repro.data.corpus.reader import ShardedCorpus
from repro.data.corpus.synthetic import DEFAULT_BLOCK_SIZE, build_synthetic_corpus
from repro.data.generators import family_names


def _parse_families(text: str) -> list[str]:
    names = [name.strip() for name in text.split(",") if name.strip()]
    unknown = sorted(set(names) - set(family_names()))
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown families {unknown}; known: {family_names()}"
        )
    if not names:
        raise argparse.ArgumentTypeError("need at least one family name")
    return names


def _cmd_build(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    corpus = build_synthetic_corpus(
        args.out,
        families=args.families,
        n_samples=args.n_samples,
        length=args.length,
        n_variables=args.n_variables,
        shard_size=args.shard_size,
        block_size=args.block_size,
        seed=args.seed,
        dtype=args.dtype,
        normalize=not args.no_normalize,
        overwrite=args.overwrite,
    )
    elapsed = time.perf_counter() - start
    print(
        f"built {len(corpus)} samples x {corpus.sample_shape} ({corpus.dtype}) "
        f"in {corpus.n_shards} shards at {args.out} "
        f"[{elapsed:.1f}s, {len(corpus) / elapsed:.0f} samples/s]"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    corpus = ShardedCorpus(args.directory)
    if args.json:
        print(json.dumps(corpus.manifest, indent=2, sort_keys=True))
        return 0
    manifest = corpus.manifest
    print(f"corpus       {args.directory}")
    print(f"samples      {len(corpus)}")
    print(f"sample shape {corpus.sample_shape}  dtype {corpus.dtype}")
    print(
        f"shards       {corpus.n_shards} x <= {manifest.get('shard_size')} samples "
        f"({corpus.nbytes / 1e6:.1f} MB data)"
    )
    print(f"labeled      {corpus.labeled}")
    quarantined = manifest.get("quarantined_shards") or []
    if quarantined:
        lost = sum(int(entry.get("n_samples", 0)) for entry in quarantined)
        print(f"quarantined  {len(quarantined)} shard(s), {lost} samples lost:")
        for entry in quarantined:
            files = ", ".join(entry.get("files", []))
            print(f"  {files}: {entry.get('reason', 'unknown')}")
    provenance = corpus.provenance
    if provenance:
        print("provenance:")
        for key, value in sorted(provenance.items()):
            if key == "families":
                for family in value:
                    print(
                        f"  family {family['name']}: {family['n_samples']} samples, "
                        f"{family['n_classes']} classes at label offset "
                        f"{family['label_offset']}"
                    )
            else:
                print(f"  {key}: {value}")
    return 0


def _quarantine_corrupt(corpus: ShardedCorpus, corrupt: list[str]) -> dict:
    """Move corrupt shards into ``quarantine/`` and rewrite the manifest.

    A shard is quarantined whole: if either its data or its labels file
    failed verification, both move aside, the shard entry leaves the
    ``shards`` list and the loss is recorded under ``quarantined_shards``.
    Returns the updated manifest.
    """
    corrupt_set = set(corrupt)
    quarantine_dir = os.path.join(corpus.directory, "quarantine")
    os.makedirs(quarantine_dir, exist_ok=True)
    manifest = dict(corpus.manifest)
    survivors, newly_quarantined = [], []
    for entry in manifest["shards"]:
        files = [entry[key] for key in ("data", "labels") if key in entry]
        bad = sorted(corrupt_set.intersection(files))
        if not bad:
            survivors.append(entry)
            continue
        for name in files:
            source = os.path.join(corpus.directory, name)
            if os.path.exists(source):
                os.replace(source, os.path.join(quarantine_dir, name))
        newly_quarantined.append(
            {
                "files": files,
                "n_samples": int(entry["n_samples"]),
                "reason": f"checksum mismatch in {', '.join(bad)}",
            }
        )
    manifest["shards"] = survivors
    manifest["n_samples"] = sum(int(entry["n_samples"]) for entry in survivors)
    manifest["quarantined_shards"] = list(manifest.get("quarantined_shards", [])) + newly_quarantined
    write_manifest(corpus.directory, manifest)
    return manifest


def _cmd_verify(args: argparse.Namespace) -> int:
    corpus = ShardedCorpus(args.directory)
    corrupt = corpus.verify()
    if corrupt:
        print(f"CORRUPT: {len(corrupt)} file(s) failed their checksum:")
        for name in corrupt:
            print(f"  {name}")
        if args.quarantine:
            manifest = _quarantine_corrupt(corpus, corrupt)
            moved = len(manifest["quarantined_shards"])
            print(
                f"quarantined: corrupt shard(s) moved to {os.path.join(args.directory, 'quarantine')}; "
                f"manifest now lists {len(manifest['shards'])} shard(s), "
                f"{manifest['n_samples']} samples ({moved} quarantine entr(y/ies) total)"
            )
        return 1
    print(
        f"ok: {corpus.n_shards} shard(s), {len(corpus)} samples, "
        "all checksums match"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.data.corpus",
        description="Build, inspect and verify on-disk sharded corpora.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="stream a synthetic corpus to disk")
    build.add_argument("--out", required=True, help="target corpus directory")
    build.add_argument(
        "--families",
        type=_parse_families,
        default=["ecg", "motion", "device"],
        help="comma-separated generator family names (default: ecg,motion,device)",
    )
    build.add_argument("--n-samples", type=int, default=10_000)
    build.add_argument("--length", type=int, default=96)
    build.add_argument("--n-variables", type=int, default=1)
    build.add_argument("--shard-size", type=int, default=4096)
    build.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--dtype", choices=("float32", "float64"), default="float32")
    build.add_argument("--no-normalize", action="store_true")
    build.add_argument("--overwrite", action="store_true")
    build.set_defaults(handler=_cmd_build)

    inspect_cmd = commands.add_parser("inspect", help="print a manifest summary")
    inspect_cmd.add_argument("directory")
    inspect_cmd.add_argument("--json", action="store_true", help="dump the raw manifest")
    inspect_cmd.set_defaults(handler=_cmd_inspect)

    verify = commands.add_parser("verify", help="re-checksum every shard")
    verify.add_argument("directory")
    verify.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt shards to DIR/quarantine/ and rewrite the manifest without them",
    )
    verify.set_defaults(handler=_cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
