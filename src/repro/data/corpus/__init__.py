"""``repro.data.corpus`` — out-of-core sharded corpora for pre-training.

Everything upstream of this package assumed the pre-training pool fits in
RAM; this subsystem lifts that cap.  A corpus lives in a directory of plain
``.npy`` shards plus a JSON manifest (:mod:`~repro.data.corpus.format`),
written with bounded memory by :class:`CorpusWriter` and read back as
zero-copy ``np.memmap`` views by :class:`ShardedCorpus`, whose shard-aware
seeded iteration keeps epochs deterministic without a global in-RAM
permutation.  :func:`build_synthetic_corpus` streams the
:mod:`repro.data.generators` families to disk for million-sample scaling
runs, and ``python -m repro.data.corpus`` exposes ``build`` / ``inspect`` /
``verify`` subcommands over the same machinery.

A :class:`ShardedCorpus` plugs directly into
:class:`repro.data.BatchIterator`, ``build_pretraining_pool`` and
``AimTSPretrainer.fit`` — batches are densified per mini-batch and flow
through the shared-memory worker transport unchanged.
"""

from repro.data.corpus.format import (
    MANIFEST_NAME,
    SCHEMA_VERSION,
    CorpusFormatError,
    array_checksum,
    read_manifest,
)
from repro.data.corpus.reader import (
    CorpusReadError,
    CorpusReaderBase,
    CorpusSubset,
    ShardedCorpus,
    is_sharded_corpus,
)
from repro.data.corpus.synthetic import (
    DEFAULT_BLOCK_SIZE,
    build_synthetic_corpus,
    generate_family_samples,
)
from repro.data.corpus.writer import CorpusWriter

__all__ = [
    "CorpusFormatError",
    "CorpusReadError",
    "CorpusReaderBase",
    "CorpusSubset",
    "CorpusWriter",
    "DEFAULT_BLOCK_SIZE",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "ShardedCorpus",
    "array_checksum",
    "build_synthetic_corpus",
    "generate_family_samples",
    "is_sharded_corpus",
    "read_manifest",
]
