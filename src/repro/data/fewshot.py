"""Few-shot subsampling of training splits (Table V protocol)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DatasetSplit, TimeSeriesDataset
from repro.utils.seeding import new_rng
from repro.utils.validation import check_probability


def few_shot_subset(
    split: DatasetSplit,
    ratio: float,
    *,
    min_per_class: int = 1,
    seed: int | np.random.Generator | None = None,
) -> DatasetSplit:
    """Return a stratified subset containing ``ratio`` of the training samples.

    Following the UniTS protocol used by the paper, the subset is stratified:
    every class keeps at least ``min_per_class`` samples so fine-tuning remains
    possible even at 5 % label availability.

    Parameters
    ----------
    split:
        A labelled training split.
    ratio:
        Fraction of samples to keep, in ``(0, 1]``.
    min_per_class:
        Lower bound on the per-class sample count.
    seed:
        RNG seed controlling which samples are kept.
    """
    check_probability("ratio", ratio)
    if ratio == 0:
        raise ValueError("ratio must be > 0")
    if split.y is None:
        raise ValueError("few-shot subsetting requires a labelled split")
    rng = new_rng(seed)
    selected: list[int] = []
    for label in np.unique(split.y):
        class_indices = np.flatnonzero(split.y == label)
        keep = max(min_per_class, int(round(ratio * class_indices.size)))
        keep = min(keep, class_indices.size)
        selected.extend(rng.choice(class_indices, size=keep, replace=False).tolist())
    selected_array = np.sort(np.asarray(selected))
    return split.subset(selected_array)


def few_shot_view(
    dataset: TimeSeriesDataset,
    label_ratio: float | None,
    *,
    seed: int | np.random.Generator | None = None,
) -> TimeSeriesDataset:
    """A view of ``dataset`` whose train split keeps a stratified label fraction.

    Returns ``dataset`` unchanged when ``label_ratio`` is None.  The single
    place every estimator's ``fine_tune(..., label_ratio=...)`` goes through,
    so the Table V protocol semantics cannot drift between model families.
    """
    if label_ratio is None:
        return dataset
    train = few_shot_subset(dataset.train, label_ratio, seed=seed)
    return TimeSeriesDataset(
        name=dataset.name,
        domain=dataset.domain,
        train=train,
        test=dataset.test,
        n_classes=dataset.n_classes,
        metadata=dict(dataset.metadata, label_ratio=label_ratio),
    )
