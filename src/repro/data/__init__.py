"""``repro.data`` — synthetic time-series classification archives.

The AimTS paper evaluates on the UCR (128 univariate), UEA (30 multivariate)
and Monash (19 unlabeled pre-training) archives plus five additional datasets
(SleepEEG, Epilepsy, FD-B, Gesture, EMG).  None of those can be downloaded in
this offline environment, so this subpackage builds statistically analogous
synthetic archives:

* every dataset has a domain-specific *pattern family* (ECG-like beats, motion
  trajectories, star-light curves, device load profiles, EEG oscillations,
  bearing vibrations, ...),
* classes within a dataset differ by controlled structural features (T-wave
  polarity, trajectory shape, dip depth, harmonic content, ...),
* datasets differ by length, dimensionality, sampling noise and class count,
  creating the cross-domain shift that motivates multi-source pre-training,
* train splits are intentionally small, reproducing the label-scarcity setting.

See DESIGN.md for the substitution rationale.
"""

from repro.data.corpus import (
    CorpusWriter,
    ShardedCorpus,
    build_synthetic_corpus,
    is_sharded_corpus,
)
from repro.data.dataset import DatasetSplit, TimeSeriesDataset
from repro.data.fewshot import few_shot_subset
from repro.data.io import dataset_from_arrays, load_dataset_file, save_dataset
from repro.data.loaders import BatchIterator, pad_or_truncate, z_normalize
from repro.data.registry import (
    dataset_names,
    load_archive,
    load_dataset,
    load_pretraining_corpus,
)

__all__ = [
    "TimeSeriesDataset",
    "DatasetSplit",
    "few_shot_subset",
    "BatchIterator",
    "pad_or_truncate",
    "z_normalize",
    "load_dataset",
    "load_archive",
    "load_pretraining_corpus",
    "dataset_names",
    "dataset_from_arrays",
    "save_dataset",
    "load_dataset_file",
    "CorpusWriter",
    "ShardedCorpus",
    "build_synthetic_corpus",
    "is_sharded_corpus",
]
