"""Dataset registry: a single entry point to every dataset and archive.

The evaluation protocols, examples and benchmarks all load data through
:func:`load_dataset` / :func:`load_archive` so that experiments share exactly
the same synthetic datasets for a given seed.
"""

from __future__ import annotations

import functools

from repro.data.archives import (
    FEWSHOT_DATASETS,
    NAMED_DATASETS,
    SINGLE_SOURCE_DATASETS,
    UEA10_TABLE2,
    make_monash_like_corpus,
    make_named_dataset,
    make_ucr_like_archive,
    make_uea_like_archive,
)
from repro.data.dataset import TimeSeriesDataset

ARCHIVES = ("ucr", "uea", "monash")


def dataset_names() -> list[str]:
    """Names of every individually loadable (named) dataset."""
    return sorted(NAMED_DATASETS)


@functools.lru_cache(maxsize=256)
def _cached_named_dataset(name: str, seed: int, scale: float) -> TimeSeriesDataset:
    return make_named_dataset(name, seed=seed, scale=scale)


def load_dataset(name: str, *, seed: int = 3407, scale: float = 1.0) -> TimeSeriesDataset:
    """Load a named dataset (``"ECG200"``, ``"Epilepsy"``, ``"FD-B"``, ...).

    Results are cached per ``(name, seed, scale)`` so that repeated loads in a
    benchmark session are cheap and bit-identical.
    """
    if name not in NAMED_DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    return _cached_named_dataset(name, seed, scale)


def load_archive(
    archive: str,
    *,
    n_datasets: int | None = None,
    seed: int = 3407,
) -> list[TimeSeriesDataset]:
    """Load a synthetic archive: ``"ucr"``, ``"uea"`` or ``"monash"``.

    ``n_datasets`` scales the suite size; the defaults are chosen so that the
    complete paper reproduction runs on a laptop CPU in minutes.
    """
    archive = archive.lower()
    if archive == "ucr":
        return make_ucr_like_archive(n_datasets or 16, seed=seed)
    if archive == "uea":
        return make_uea_like_archive(n_datasets or 8, seed=seed)
    if archive == "monash":
        return make_monash_like_corpus(n_datasets or 19, seed=seed)
    raise KeyError(f"unknown archive {archive!r}; available: {ARCHIVES}")


def load_pretraining_corpus(
    source: str = "monash",
    *,
    n_datasets: int | None = None,
    seed: int = 3407,
) -> list[TimeSeriesDataset]:
    """Load a multi-source pre-training corpus.

    ``source`` may be ``"monash"`` (the paper's default), ``"ucr"`` or
    ``"uea"`` (the Table VII corpus ablation).  Labels, when present, are not
    used by the pre-training stage.
    """
    return load_archive(source, n_datasets=n_datasets, seed=seed)


__all__ = [
    "dataset_names",
    "load_dataset",
    "load_archive",
    "load_pretraining_corpus",
    "ARCHIVES",
    "UEA10_TABLE2",
    "FEWSHOT_DATASETS",
    "SINGLE_SOURCE_DATASETS",
]
