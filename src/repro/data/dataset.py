"""Dataset containers used across the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DatasetSplit:
    """One split (train or test) of a labelled time-series dataset.

    Attributes
    ----------
    X:
        Array of shape ``(n_samples, n_variables, n_timesteps)``.
    y:
        Integer labels of shape ``(n_samples,)``; ``None`` for unlabeled
        pre-training corpora.
    """

    X: np.ndarray
    y: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        if self.X.ndim != 3:
            raise ValueError(f"X must be (n, M, T), got shape {self.X.shape}")
        if self.y is not None:
            self.y = np.asarray(self.y, dtype=np.int64)
            if self.y.shape[0] != self.X.shape[0]:
                raise ValueError(
                    f"X has {self.X.shape[0]} samples but y has {self.y.shape[0]} labels"
                )

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_variables(self) -> int:
        return self.X.shape[1]

    @property
    def length(self) -> int:
        return self.X.shape[2]

    def subset(self, indices: np.ndarray) -> "DatasetSplit":
        """Return a new split restricted to ``indices``."""
        indices = np.asarray(indices)
        labels = self.y[indices] if self.y is not None else None
        return DatasetSplit(self.X[indices], labels)


@dataclass
class TimeSeriesDataset:
    """A named time-series classification dataset with train/test splits.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"ECG200"`` or ``"syn_ucr_017"``).
    domain:
        Pattern-family / application domain tag (e.g. ``"ecg"``, ``"motion"``).
    train, test:
        The two :class:`DatasetSplit` objects.
    n_classes:
        Number of distinct labels (0 for unlabeled corpora).
    metadata:
        Free-form extra information from the generator.
    """

    name: str
    domain: str
    train: DatasetSplit
    test: DatasetSplit
    n_classes: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.train.n_variables != self.test.n_variables:
            raise ValueError("train and test splits disagree on the number of variables")
        if self.n_classes and self.train.y is not None:
            observed = set(np.unique(self.train.y)) | set(np.unique(self.test.y))
            if not observed.issubset(set(range(self.n_classes))):
                raise ValueError(
                    f"labels {sorted(observed)} are outside range(0, {self.n_classes})"
                )

    @property
    def n_variables(self) -> int:
        return self.train.n_variables

    @property
    def length(self) -> int:
        return self.train.length

    @property
    def is_multivariate(self) -> bool:
        return self.n_variables > 1

    def describe(self) -> dict:
        """Return a summary dictionary (used by examples and docs)."""
        return {
            "name": self.name,
            "domain": self.domain,
            "n_train": len(self.train),
            "n_test": len(self.test),
            "n_variables": self.n_variables,
            "length": self.length,
            "n_classes": self.n_classes,
        }
