"""The image encoder ``F_I`` over rendered line-chart images."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn import inference as NI
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class ImageEncoder(nn.Module):
    """A compact convolutional network mapping ``(B, 3, H, W)`` → ``(B, repr_dim)``.

    The architecture is a standard strided-convolution stack (conv → BN → ReLU,
    downsampling by 2 at each stage) followed by global average pooling and a
    linear head.  It plays the role of the paper's image encoder; the paper
    does not prescribe a specific backbone, only that the image branch encodes
    structural information of the rendered series.
    """

    def __init__(
        self,
        repr_dim: int = 32,
        *,
        base_channels: int = 8,
        depth: int = 3,
        rng=None,
    ):
        super().__init__()
        check_positive("repr_dim", repr_dim)
        check_positive("base_channels", base_channels)
        check_positive("depth", depth)
        rng = new_rng(rng)
        self.repr_dim = repr_dim
        layers: list[nn.Module] = []
        in_channels = 3
        channels = base_channels
        for _ in range(depth):
            layers.append(nn.Conv2d(in_channels, channels, 3, stride=2, padding=1, rng=rng))
            layers.append(nn.BatchNorm2d(channels))
            layers.append(nn.ReLU())
            in_channels = channels
            channels = min(channels * 2, 64)
        self.trunk = nn.Sequential(*layers)
        self.head = nn.Linear(in_channels, repr_dim, rng=rng)

    def forward(self, images: Tensor | np.ndarray) -> Tensor:
        """Encode a batch of RGB images into ``(B, repr_dim)`` representations."""
        if not isinstance(images, Tensor):
            images = Tensor(images)
        if images.ndim != 4:
            raise ValueError(f"ImageEncoder expects (B, 3, H, W) input, got shape {images.shape}")
        hidden = self.trunk(images)
        pooled = F.adaptive_avg_pool2d(hidden, 1).reshape(hidden.shape[0], hidden.shape[1])
        return self.head(pooled)

    # ------------------------------------------------------------- fused path
    def infer(self, images: np.ndarray, *, workspace: NI.Workspace | None = None) -> np.ndarray:
        """Fused no-grad forward on raw ``(B, 3, H, W)`` images.

        Every Conv→BatchNorm pair of the trunk runs as a single convolution
        with the batch norm folded into its weights (eval-time running
        statistics), intermediate buffers come from ``workspace``, and no
        autograd bookkeeping is performed.
        """
        images = np.asarray(images, dtype=self.head.weight.data.dtype)
        if images.ndim != 4:
            raise ValueError(f"ImageEncoder expects (B, 3, H, W) input, got shape {images.shape}")
        hidden = NI.module_forward(self.trunk, images, workspace=workspace, tag="trunk")
        pooled = hidden.sum(axis=(2, 3)) * (1.0 / (hidden.shape[2] * hidden.shape[3]))
        return pooled @ self.head.weight.data.T + self.head.bias.data
