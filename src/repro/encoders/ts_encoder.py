"""The time-series encoder ``F_TS``.

A stack of dilated 1-D convolutions with residual connections (the same
family of encoder used by TS2Vec and the AimTS paper), followed by global
average pooling over time.  With ``channel_independent=True`` (the paper's
setting) every variable is encoded separately by the same weights and the
resulting per-variable representations are averaged, so one pre-trained
encoder transfers across datasets with different numbers of variables.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn import inference as NI
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class DilatedConvBlock(nn.Module):
    """Residual block: Conv1d(dilated) → ReLU → Conv1d(dilated) + skip."""

    def __init__(self, channels: int, kernel_size: int, dilation: int, rng=None):
        super().__init__()
        rng = new_rng(rng)
        padding = (kernel_size - 1) * dilation // 2
        self.conv1 = nn.Conv1d(
            channels, channels, kernel_size, padding=padding, dilation=dilation, rng=rng
        )
        self.conv2 = nn.Conv1d(
            channels, channels, kernel_size, padding=padding, dilation=dilation, rng=rng
        )
        #: fused conv+relu / add+relu autograd nodes (bit-identical to the
        #: decomposed graph; False = the reference graph, for A/B runs)
        self.fused = True

    def forward(self, x: Tensor) -> Tensor:
        if self.fused:
            # fused conv+relu and add+relu nodes: bit-identical to the
            # decomposed conv().relu() / (hidden + x).relu() graphs, half
            # the autograd nodes
            hidden = self.conv1(x, relu=True)
            hidden = self.conv2(hidden)
            return hidden.add_relu(x)
        hidden = self.conv1(x).relu()
        hidden = self.conv2(hidden)
        return (hidden + x).relu()

    def infer(self, x: np.ndarray, *, workspace=None, tag: str = "block") -> np.ndarray:
        """Fused eval-mode forward on a raw array (same arithmetic as autograd)."""
        hidden = NI.relu_(
            NI.conv1d_forward(
                x,
                self.conv1.weight.data,
                self.conv1.bias.data,
                padding=self.conv1.padding,
                dilation=self.conv1.dilation,
                workspace=workspace,
                tag=f"{tag}.conv1",
            )
        )
        hidden = NI.conv1d_forward(
            hidden,
            self.conv2.weight.data,
            self.conv2.bias.data,
            padding=self.conv2.padding,
            dilation=self.conv2.dilation,
            workspace=workspace,
            tag=f"{tag}.conv2",
        )
        hidden += x
        return NI.relu_(hidden)


class TSEncoder(nn.Module):
    """Dilated convolutional encoder producing one representation per sample.

    Parameters
    ----------
    in_channels:
        Number of input variables fed to the convolution stack.  Ignored when
        ``channel_independent`` is true (each variable is treated as a separate
        univariate series).
    hidden_channels:
        Width of the convolutional trunk.
    repr_dim:
        Dimension of the output representation ``r_i``.
    depth:
        Number of dilated residual blocks; dilations grow as ``2**i``.
    kernel_size:
        Convolution kernel size.
    channel_independent:
        Encode each variable separately with shared weights (the paper's
        configuration); the per-variable representations are then combined
        according to ``channel_aggregation``.
    channel_aggregation:
        How per-variable representations are combined when
        ``channel_independent`` is true: ``"mean"`` averages them into a
        fixed ``repr_dim`` vector (useful when a fixed-size representation is
        needed regardless of the number of variables, e.g. during multi-source
        pre-training), ``"concat"`` concatenates them into an
        ``n_variables * repr_dim`` vector for the task-specific head (the
        usual channel-independence setup for classification, where only the
        encoder weights — not the head — transfer across datasets).
    """

    def __init__(
        self,
        in_channels: int = 1,
        hidden_channels: int = 16,
        repr_dim: int = 32,
        *,
        depth: int = 3,
        kernel_size: int = 3,
        channel_independent: bool = True,
        channel_aggregation: str = "mean",
        rng=None,
    ):
        super().__init__()
        check_positive("hidden_channels", hidden_channels)
        check_positive("repr_dim", repr_dim)
        check_positive("depth", depth)
        if channel_aggregation not in ("mean", "concat"):
            raise ValueError(
                f"channel_aggregation must be 'mean' or 'concat', got {channel_aggregation!r}"
            )
        rng = new_rng(rng)
        self.channel_independent = channel_independent
        self.channel_aggregation = channel_aggregation
        self.repr_dim = repr_dim
        effective_in = 1 if channel_independent else in_channels
        self.input_conv = nn.Conv1d(effective_in, hidden_channels, kernel_size, padding=kernel_size // 2, rng=rng)
        blocks = [
            DilatedConvBlock(hidden_channels, kernel_size, dilation=2**i, rng=rng) for i in range(depth)
        ]
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Linear(hidden_channels, repr_dim, rng=rng)
        #: fused conv+relu input node (see :class:`DilatedConvBlock`)
        self.fused = True

    def output_dim(self, n_variables: int = 1) -> int:
        """Dimension of the representation produced for ``n_variables`` inputs."""
        if self.channel_independent and self.channel_aggregation == "concat":
            return self.repr_dim * int(n_variables)
        return self.repr_dim

    def _encode_channels(self, x: Tensor) -> Tensor:
        """Run the convolutional trunk on ``(N, C, T)`` and pool over time."""
        if self.fused:
            hidden = self.input_conv(x, relu=True)
        else:
            hidden = self.input_conv(x).relu()
        hidden = self.blocks(hidden)
        pooled = F.adaptive_avg_pool1d(hidden, 1).squeeze(2)  # (N, hidden)
        return self.head(pooled)

    def forward(self, x: Tensor | np.ndarray) -> Tensor:
        """Encode a batch ``(B, M, T)``.

        Returns ``(B, repr_dim)`` representations, or ``(B, M * repr_dim)``
        when the encoder is channel independent with ``"concat"`` aggregation.
        """
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim == 2:
            x = x.unsqueeze(1)
        if x.ndim != 3:
            raise ValueError(f"TSEncoder expects (B, M, T) input, got shape {x.shape}")
        batch, n_variables, length = x.shape
        if self.channel_independent:
            flat = x.reshape(batch * n_variables, 1, length)
            encoded = self._encode_channels(flat)  # (B*M, D)
            encoded = encoded.reshape(batch, n_variables, self.repr_dim)
            if self.channel_aggregation == "concat":
                return encoded.reshape(batch, n_variables * self.repr_dim)
            return encoded.mean(axis=1)
        return self._encode_channels(x)

    # ------------------------------------------------------------- fused path
    def infer(self, x: np.ndarray, *, workspace: NI.Workspace | None = None) -> np.ndarray:
        """Fused no-grad forward on a raw ``(B, M, T)`` array.

        Serving entry point: no Tensor wrappers, no autograd bookkeeping, and
        with a :class:`~repro.nn.inference.Workspace` all intermediate
        buffers are reused across calls.  Matches the eval-mode autograd
        forward (the trunk has no dropout or batch norm) up to the
        batch-invariant linear head (<= 1 ulp), and a sample's representation
        is bitwise independent of its batch composition.  Runs in the
        encoder's parameter dtype regardless of the input dtype.
        """
        x = np.asarray(x, dtype=self.head.weight.data.dtype)
        if x.ndim == 2:
            x = x[:, None, :]
        if x.ndim != 3:
            raise ValueError(f"TSEncoder expects (B, M, T) input, got shape {x.shape}")
        batch, n_variables, length = x.shape
        flat = (
            x.reshape(batch * n_variables, 1, length) if self.channel_independent else x
        )
        hidden = NI.relu_(
            NI.conv1d_forward(
                flat,
                self.input_conv.weight.data,
                self.input_conv.bias.data,
                padding=self.input_conv.padding,
                workspace=workspace,
                tag="input_conv",
            )
        )
        for index, block in enumerate(self.blocks):
            hidden = block.infer(hidden, workspace=workspace, tag=f"block{index}")
        pooled = hidden.sum(axis=2) * (1.0 / hidden.shape[2])  # (N, hidden)
        # batch-invariant linear head: a sample's representation must not
        # depend on how many neighbours shared its (micro-)batch
        encoded = NI.linear_forward(pooled, self.head)
        if not self.channel_independent:
            return encoded
        encoded = encoded.reshape(batch, n_variables, self.repr_dim)
        if self.channel_aggregation == "concat":
            return encoded.reshape(batch, n_variables * self.repr_dim)
        return encoded.sum(axis=1) * (1.0 / n_variables)
