"""``repro.encoders`` — the TS encoder, image encoder and projection heads.

* :class:`~repro.encoders.ts_encoder.TSEncoder` — a dilated-convolution
  encoder over raw time series.  Following the paper (and PatchTST-style
  channel independence, Section V-A3), each variable is encoded independently
  with shared weights and the per-variable representations are averaged.
* :class:`~repro.encoders.image_encoder.ImageEncoder` — a small convolutional
  network over the rendered line-chart images.
* :class:`~repro.encoders.projection.ProjectionHead` — the non-linear
  projections used by both contrastive objectives.
* :class:`~repro.encoders.classifier.ClassifierHead` — the MLP classifier
  trained during fine-tuning.
"""

from repro.encoders.classifier import ClassifierHead
from repro.encoders.image_encoder import ImageEncoder
from repro.encoders.projection import ProjectionHead
from repro.encoders.ts_encoder import TSEncoder

__all__ = ["TSEncoder", "ImageEncoder", "ProjectionHead", "ClassifierHead"]
