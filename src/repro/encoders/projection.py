"""Non-linear projection heads for contrastive learning.

Both contrastive objectives in the paper operate on lower-dimensional
projections of the encoder outputs: ``P_TS`` maps TS representations and
prototypes, and a second head filters the image representations so the two
modalities become comparable (Section IV-C2).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class ProjectionHead(nn.Module):
    """Two-layer MLP projection with optional output L2 normalisation.

    Parameters
    ----------
    in_dim:
        Input representation dimension.
    hidden_dim:
        Hidden width (defaults to ``in_dim``).
    out_dim:
        Projection dimension ``J``.
    normalize:
        If true, outputs are projected onto the unit hypersphere — required by
        the geodesic mixup strategy (Eq. 9), which assumes unit-norm inputs.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        hidden_dim: int | None = None,
        normalize: bool = True,
        rng=None,
    ):
        super().__init__()
        check_positive("in_dim", in_dim)
        check_positive("out_dim", out_dim)
        rng = new_rng(rng)
        hidden_dim = hidden_dim or in_dim
        self.fc1 = nn.Linear(in_dim, hidden_dim, rng=rng)
        self.fc2 = nn.Linear(hidden_dim, out_dim, rng=rng)
        self.normalize = normalize
        self.out_dim = out_dim

    def forward(self, x: Tensor | np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.fc2(self.fc1(x).relu())
        if self.normalize:
            out = F.l2_normalize(out, axis=-1)
        return out
