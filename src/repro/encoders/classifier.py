"""The downstream classification head trained during fine-tuning."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import inference as NI
from repro.nn.tensor import Tensor
from repro.utils.seeding import new_rng
from repro.utils.validation import check_positive


class ClassifierHead(nn.Module):
    """MLP classifier ``P_cls`` mapping representations to class logits.

    The paper trains an MLP classifier on top of the (fine-tuned) TS encoder.
    A single hidden layer is used by default; ``hidden_dim=None`` degrades to a
    linear probe, which the evaluation protocols use for the cheaper baselines.
    """

    def __init__(
        self,
        in_dim: int,
        n_classes: int,
        *,
        hidden_dim: int | None = 64,
        dropout: float = 0.1,
        rng=None,
    ):
        super().__init__()
        check_positive("in_dim", in_dim)
        check_positive("n_classes", n_classes)
        rng = new_rng(rng)
        self.n_classes = n_classes
        if hidden_dim is None:
            self.network = nn.Linear(in_dim, n_classes, rng=rng)
        else:
            self.network = nn.MLP(in_dim, [hidden_dim], n_classes, dropout=dropout, rng=rng)

    def forward(self, x: Tensor | np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.network(x)

    def infer(self, x: np.ndarray, *, workspace: NI.Workspace | None = None) -> np.ndarray:
        """Fused eval-mode logits on a raw array (dropout skipped entirely)."""
        return NI.module_forward(self.network, x, workspace=workspace, tag="classifier")
