"""Typed serving failures callers are expected to handle.

Both errors are *fast-fail* signals of an overloaded or slow pipeline —
they carry enough context to drive a retry policy (see
:func:`repro.serving.loadgen.run_open_loop`) without parsing messages.
"""

from __future__ import annotations


class ServerOverloadedError(RuntimeError):
    """Admission rejected: the pending queue is at ``max_pending``.

    Raised by :meth:`ModelServer.submit` *before* the request touches the
    batcher, so shedding costs the caller one exception — no queue slot, no
    future, no slab space.  ``pending`` and ``max_pending`` describe the
    queue at rejection time.
    """

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            f"server overloaded: {pending} pending requests >= max_pending={max_pending}"
        )
        self.pending = int(pending)
        self.max_pending = int(max_pending)


class DeadlineExceededError(RuntimeError):
    """The request's deadline expired while it waited in the queue.

    Delivered through the request's future.  Expired requests are dropped
    *before* the fused call is assembled — they never occupy a batch slot,
    so a stale backlog cannot steal compute from live requests.
    """

    def __init__(self, deadline_ms: float, waited_ms: float):
        super().__init__(
            f"deadline of {deadline_ms:g} ms exceeded: request waited {waited_ms:.3f} ms"
        )
        self.deadline_ms = float(deadline_ms)
        self.waited_ms = float(waited_ms)
