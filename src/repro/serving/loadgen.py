"""Open-loop load generation for the serving benchmarks.

Open loop means requests are *scheduled* at a fixed offered rate regardless
of how fast responses come back — the realistic regime for a server facing
independent clients.  Latency is measured from each request's scheduled send
time to its completion, so queueing delay (including generator lag when the
server pushes back) is charged to the server, not hidden.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass, field

from repro.serving.errors import DeadlineExceededError, ServerOverloadedError
from repro.serving.stats import LatencySummary


@dataclass
class LoadReport:
    """Outcome of one open-loop run against a :class:`ModelServer`."""

    op: str
    offered_rps: float
    duration_s: float
    n_requests: int
    n_completed: int
    n_errors: int
    achieved_rps: float
    latency: LatencySummary
    n_shed: int = 0
    n_retries: int = 0
    n_deadline_expired: int = 0
    goodput_rps: float = field(default=0.0)

    def as_record(self) -> dict:
        """Flat dict for ``BENCH_serving.json`` records."""
        record = {
            "op": self.op,
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_errors": self.n_errors,
            "requests_per_sec": self.achieved_rps,
            "n_shed": self.n_shed,
            "n_retries": self.n_retries,
            "n_deadline_expired": self.n_deadline_expired,
            "goodput_rps": self.goodput_rps,
        }
        record.update(self.latency.as_record())
        return record


def run_open_loop(
    server,
    samples,
    *,
    rate_rps: float,
    duration_s: float,
    op: str = "predict",
    n_submitters: int = 2,
    timeout_s: float = 120.0,
    deadline_ms: float | None = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.002,
    retry_seed: int = 0,
) -> LoadReport:
    """Offer single-sample requests at ``rate_rps`` for ``duration_s`` seconds.

    ``samples`` is a sequence of ``(n_variables, length)`` arrays cycled
    round-robin.  ``n_submitters`` threads share the schedule, so the offered
    rate holds even when a single ``submit`` call occasionally blocks.
    Returns a :class:`LoadReport` with sustained requests/s (completions over
    makespan), goodput (successful responses only) and the open-loop latency
    digest.

    When the server sheds (:class:`ServerOverloadedError`), each request is
    retried up to ``max_retries`` times with deterministic jittered
    exponential backoff (``retry_backoff_s * 2**attempt * (1 + u)`` where
    ``u`` is seeded per ``(retry_seed, index, attempt)``); a request that
    exhausts its retries counts as shed.  ``deadline_ms`` is forwarded to
    every submit — deadline-expired responses are counted separately from
    hard errors.
    """
    n_requests = max(1, int(rate_rps * duration_s))
    send_gap = 1.0 / rate_rps
    latencies: list[float | None] = [None] * n_requests
    lock = threading.Lock()
    state = {
        "errors": 0,
        "shed": 0,
        "retries": 0,
        "deadline_expired": 0,
        "remaining": n_requests,
        "last_done": 0.0,
    }
    all_done = threading.Event()
    ticket = itertools.count()
    start = time.perf_counter() + 0.005  # small lead so ticket 0 isn't already late

    def _finish(outcome: str, done: float) -> None:
        # caller holds ``lock``
        if outcome is not None:
            state[outcome] += 1
        state["last_done"] = max(state["last_done"], done)
        state["remaining"] -= 1
        if state["remaining"] == 0:
            all_done.set()

    def _completion(index: int, scheduled: float):
        def callback(future) -> None:
            done = time.perf_counter()
            error = None if future.cancelled() else future.exception()
            failed = future.cancelled() or error is not None
            with lock:
                if isinstance(error, DeadlineExceededError):
                    _finish("deadline_expired", done)
                elif failed:
                    _finish("errors", done)
                else:
                    latencies[index] = done - scheduled
                    _finish(None, done)

        return callback

    def _submit_with_retry(index: int):
        """One submit, retrying shed responses; returns a future or None."""
        submit_kwargs = {} if deadline_ms is None else {"deadline_ms": deadline_ms}
        for attempt in range(max_retries + 1):
            try:
                return server.submit(samples[index % len(samples)], op=op, **submit_kwargs)
            except ServerOverloadedError:
                if attempt == max_retries:
                    return None
                fraction = random.Random(f"{retry_seed}:{index}:{attempt}").random()
                time.sleep(retry_backoff_s * 2**attempt * (1.0 + fraction))
                with lock:
                    state["retries"] += 1
        return None  # pragma: no cover - loop always returns

    def _submitter() -> None:
        while True:
            index = next(ticket)
            if index >= n_requests:
                return
            scheduled = start + index * send_gap
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                future = _submit_with_retry(index)
            except Exception:
                with lock:
                    _finish("errors", time.perf_counter())
                continue
            if future is None:  # shed and retries exhausted
                with lock:
                    _finish("shed", time.perf_counter())
                continue
            future.add_done_callback(_completion(index, scheduled))

    threads = [
        threading.Thread(target=_submitter, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, n_submitters))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s)
    all_done.wait(timeout=timeout_s)

    with lock:
        n_errors = state["errors"]
        n_shed = state["shed"]
        n_retries = state["retries"]
        n_deadline_expired = state["deadline_expired"]
        last_done = state["last_done"]
        n_completed = sum(1 for value in latencies if value is not None)
    makespan = max(last_done - start, 1e-9)
    goodput = n_completed / makespan
    return LoadReport(
        op=op,
        offered_rps=float(rate_rps),
        duration_s=float(duration_s),
        n_requests=n_requests,
        n_completed=n_completed,
        n_errors=n_errors,
        achieved_rps=goodput,
        latency=LatencySummary.from_seconds(latencies),
        n_shed=n_shed,
        n_retries=n_retries,
        n_deadline_expired=n_deadline_expired,
        goodput_rps=goodput,
    )


def serial_baseline(predict_one, samples, *, duration_s: float = 1.0) -> float:
    """Requests/s of one-at-a-time closed-loop calls to ``predict_one``.

    The comparison floor for the micro-batching speedup gate: each sample is
    submitted alone and the next waits for the previous response.
    """
    predict_one(samples[0])  # warmup outside the timed window
    start = time.perf_counter()
    completed = 0
    while True:
        elapsed = time.perf_counter() - start
        if elapsed >= duration_s and completed > 0:
            break
        predict_one(samples[completed % len(samples)])
        completed += 1
    return completed / (time.perf_counter() - start)
