"""Open-loop load generation for the serving benchmarks.

Open loop means requests are *scheduled* at a fixed offered rate regardless
of how fast responses come back — the realistic regime for a server facing
independent clients.  Latency is measured from each request's scheduled send
time to its completion, so queueing delay (including generator lag when the
server pushes back) is charged to the server, not hidden.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

from repro.serving.stats import LatencySummary


@dataclass
class LoadReport:
    """Outcome of one open-loop run against a :class:`ModelServer`."""

    op: str
    offered_rps: float
    duration_s: float
    n_requests: int
    n_completed: int
    n_errors: int
    achieved_rps: float
    latency: LatencySummary

    def as_record(self) -> dict:
        """Flat dict for ``BENCH_serving.json`` records."""
        record = {
            "op": self.op,
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_errors": self.n_errors,
            "requests_per_sec": self.achieved_rps,
        }
        record.update(self.latency.as_record())
        return record


def run_open_loop(
    server,
    samples,
    *,
    rate_rps: float,
    duration_s: float,
    op: str = "predict",
    n_submitters: int = 2,
    timeout_s: float = 120.0,
) -> LoadReport:
    """Offer single-sample requests at ``rate_rps`` for ``duration_s`` seconds.

    ``samples`` is a sequence of ``(n_variables, length)`` arrays cycled
    round-robin.  ``n_submitters`` threads share the schedule, so the offered
    rate holds even when a single ``submit`` call occasionally blocks.
    Returns a :class:`LoadReport` with sustained requests/s (completions over
    makespan) and the open-loop latency digest.
    """
    n_requests = max(1, int(rate_rps * duration_s))
    send_gap = 1.0 / rate_rps
    latencies: list[float | None] = [None] * n_requests
    lock = threading.Lock()
    state = {"errors": 0, "remaining": n_requests, "last_done": 0.0}
    all_done = threading.Event()
    ticket = itertools.count()
    start = time.perf_counter() + 0.005  # small lead so ticket 0 isn't already late

    def _completion(index: int, scheduled: float):
        def callback(future) -> None:
            done = time.perf_counter()
            failed = future.cancelled() or future.exception() is not None
            with lock:
                if failed:
                    state["errors"] += 1
                else:
                    latencies[index] = done - scheduled
                state["last_done"] = max(state["last_done"], done)
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    all_done.set()

        return callback

    def _submitter() -> None:
        while True:
            index = next(ticket)
            if index >= n_requests:
                return
            scheduled = start + index * send_gap
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                future = server.submit(samples[index % len(samples)], op=op)
            except Exception:
                with lock:
                    state["errors"] += 1
                    state["last_done"] = max(state["last_done"], time.perf_counter())
                    state["remaining"] -= 1
                    if state["remaining"] == 0:
                        all_done.set()
                continue
            future.add_done_callback(_completion(index, scheduled))

    threads = [
        threading.Thread(target=_submitter, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, n_submitters))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s)
    all_done.wait(timeout=timeout_s)

    with lock:
        n_errors = state["errors"]
        last_done = state["last_done"]
        n_completed = sum(1 for value in latencies if value is not None)
    makespan = max(last_done - start, 1e-9)
    return LoadReport(
        op=op,
        offered_rps=float(rate_rps),
        duration_s=float(duration_s),
        n_requests=n_requests,
        n_completed=n_completed,
        n_errors=n_errors,
        achieved_rps=n_completed / makespan,
        latency=LatencySummary.from_seconds(latencies),
    )


def serial_baseline(predict_one, samples, *, duration_s: float = 1.0) -> float:
    """Requests/s of one-at-a-time closed-loop calls to ``predict_one``.

    The comparison floor for the micro-batching speedup gate: each sample is
    submitted alone and the next waits for the previous response.
    """
    predict_one(samples[0])  # warmup outside the timed window
    start = time.perf_counter()
    completed = 0
    while True:
        elapsed = time.perf_counter() - start
        if elapsed >= duration_s and completed > 0:
            break
        predict_one(samples[completed % len(samples)])
        completed += 1
    return completed / (time.perf_counter() - start)
