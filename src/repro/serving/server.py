"""The serving front door: a long-lived model server with micro-batching.

:class:`ModelServer` owns a loaded estimator and a
:class:`repro.serving.batcher.MicroBatcher`.  Callers submit single samples
(``submit`` returns a :class:`concurrent.futures.Future`; ``predict`` /
``predict_proba`` / ``encode`` block for convenience); worker threads pull
sealed micro-batches and run **one fused call** per batch over the PR 4
inference fast path, scattering results back to the per-request futures in
submission order.

Thread workers, not processes: the heavy lifting is NumPy/BLAS which release
the GIL, and each worker holds its own deep-copied estimator replica — so
per-replica ``Workspace`` arenas stay warm and single-threaded while the
workers overlap compute.  ``reload(path)`` loads a fresh bundle (Conv→BN
folded once at load), builds new replicas, and swaps them in atomically;
batches already in flight keep references to the old replicas, so nothing is
dropped or reordered.

Overload safety (PR 9): ``max_pending`` bounds the admission queue —
``submit`` fast-fails with :class:`ServerOverloadedError` instead of letting
the backlog grow without bound, and a per-request ``deadline_ms`` drops
stale requests (:class:`DeadlineExceededError`) *before* the fused call is
assembled, so expired work never occupies a batch slot.  A worker thread
that dies (``fault_point("server.worker")`` in chaos runs) is detected and
replaced on the next submit — accepted requests survive single-worker
crashes.
"""

from __future__ import annotations

import atexit
import copy
import os
import threading

import numpy as np

from repro.nn.inference import DEFAULT_SERVING_BATCH_SIZE
from repro.serving.batcher import MicroBatcher
from repro.serving.errors import DeadlineExceededError, ServerOverloadedError
from repro.serving.stats import ServerStats
from repro.serving.transport import SlabPool
from repro.utils.faults import fault_point

#: default deadline trigger: a lone request waits at most this long for company
DEFAULT_MAX_WAIT_MS = 2.0

_OP_GROUPS = {"predict": "proba", "predict_proba": "proba", "encode": "encode"}


def _default_workers() -> int:
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return max(1, min(4, cores))


class ModelServer:
    """Micro-batching server over one estimator (thread-based, in-process).

    Parameters
    ----------
    estimator:
        A fitted estimator (``predict_proba`` and/or ``encode`` capable).
        Training-time worker pools are shut down before replication.
    max_batch:
        Size flush trigger — a group flushes as soon as it holds this many
        requests.  Defaults to the fused path's sweet spot
        (:data:`repro.nn.inference.DEFAULT_SERVING_BATCH_SIZE`).
    max_wait_ms:
        Deadline flush trigger — a request never waits longer than this for
        a batch to fill.  Lower = better tail latency, higher = bigger
        batches under light load.
    n_workers:
        Worker threads, each with its own estimator replica and warm
        workspace.  Defaults to usable cores, capped at 4.
    max_pending:
        Admission bound: with this many requests accepted but unanswered,
        ``submit`` raises :class:`ServerOverloadedError` instead of
        queueing.  ``None`` (the default) keeps the historical unbounded
        queue.
    """

    def __init__(
        self,
        estimator,
        *,
        max_batch: int = DEFAULT_SERVING_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        n_workers: int | None = None,
        slab_slots: int | None = None,
        eval_mode: bool = True,
        max_pending: int | None = None,
        clock=None,
    ):
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.n_workers = int(n_workers) if n_workers is not None else _default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending) if max_pending is not None else None
        self._eval_mode = eval_mode
        self._stats = ServerStats()
        # enough slabs for every worker's in-flight batch plus a few pending
        # groups (proba/encode × shapes) before the copying fallback kicks in
        slots = slab_slots if slab_slots is not None else self.n_workers + 4
        self._pool = SlabPool(slots)
        batcher_kwargs = {} if clock is None else {"clock": clock}
        self._batcher = MicroBatcher(
            max_batch=self.max_batch,
            max_wait_s=self.max_wait_ms / 1e3,
            slab_pool=self._pool,
            stats=self._stats,
            **batcher_kwargs,
        )
        self._model_lock = threading.Lock()
        self._replicas = self._make_replicas(estimator)
        self._model_version = 0
        self._threads: list[threading.Thread] = []
        self._thread_lock = threading.Lock()
        self._started = False
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def from_bundle(cls, path, *, eval_mode: bool = True, **server_kwargs):
        """Build a server straight from a ``.npz`` bundle checkpoint.

        ``eval_mode=True`` (the default) folds Conv→BatchNorm pairs once at
        load time via :func:`repro.api.load_estimator`, so every served
        batch skips the per-call fold.
        """
        from repro.api.registry import load_estimator

        estimator = load_estimator(path, eval_mode=eval_mode)
        return cls(estimator, eval_mode=eval_mode, **server_kwargs)

    def _make_replicas(self, estimator) -> list:
        shutdown = getattr(estimator, "shutdown_workers", None)
        if callable(shutdown):
            shutdown()  # training-time pools don't survive deepcopy (no-op if absent)
        if self.n_workers == 1:
            return [estimator]
        try:
            return [estimator] + [
                copy.deepcopy(estimator) for _ in range(self.n_workers - 1)
            ]
        except Exception as error:
            raise RuntimeError(
                "could not replicate the estimator for multi-worker serving; "
                "pass n_workers=1 or make the estimator deep-copyable"
            ) from error

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ModelServer":
        """Spawn the worker threads (idempotent)."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._started:
            return self
        self._started = True
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-serving-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        atexit.register(self.close)
        return self

    def close(self) -> None:
        """Drain pending requests, stop the workers, free the slabs.

        Every request accepted before ``close`` is still answered; calling
        again (or on a never-started server) is a silent no-op.
        """
        if self._closed:
            return
        self._ensure_workers()  # a dead worker must not strand the drain
        self._closed = True
        atexit.unregister(self.close)
        self._batcher.close()
        for thread in self._threads:
            thread.join(timeout=60.0)
        self._threads = []
        self._pool.close()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request path ------------------------------------------------------

    def submit(self, sample, op: str = "predict", *, deadline_ms: float | None = None):
        """Enqueue one sample; returns a future resolving to its result.

        ``sample`` is one series shaped ``(n_variables, length)`` (a 1-D
        array is promoted to one univariate sample).  ``op`` is one of
        ``"predict"`` (→ class id), ``"predict_proba"`` (→ probability row)
        or ``"encode"`` (→ representation row).  ``deadline_ms`` bounds the
        request's total queueing + service time: an expired request resolves
        exceptionally with :class:`DeadlineExceededError` and is pruned
        before the fused call, never occupying a batch slot.

        With ``max_pending`` set, a full queue raises
        :class:`ServerOverloadedError` *here* — shedding is free for the
        server and immediate for the caller.
        """
        group = _OP_GROUPS.get(op)
        if group is None:
            raise ValueError(f"unknown op {op!r}; expected one of {sorted(_OP_GROUPS)}")
        if not self._started or self._closed:
            raise RuntimeError(
                "server is not running; call start() or use it as a context manager"
            )
        self._ensure_workers()
        if self.max_pending is not None:
            pending = self._batcher.pending_count()
            if pending >= self.max_pending:
                self._stats.increment("shed_requests")
                raise ServerOverloadedError(pending, self.max_pending)
        sample = np.asarray(sample)
        if sample.ndim == 1:
            sample = sample[None, :]
        if sample.ndim != 2:
            raise ValueError(
                f"submit() takes one (n_variables, length) sample; got shape {sample.shape}"
            )
        key = (group, sample.shape, sample.dtype.name)
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        return self._batcher.submit(key, op, sample, deadline_s=deadline_s).future

    def _gather(self, X, op: str):
        X = np.asarray(X)
        single = X.ndim <= 2
        if single:
            X = X[None] if X.ndim == 2 else X[None, None]
        futures = [self.submit(sample, op=op) for sample in X]
        results = [future.result() for future in futures]
        out = np.asarray(results) if op == "predict" else np.stack(results)
        return out[0] if single else out

    def predict(self, X) -> np.ndarray:
        """Blocking convenience: micro-batched class predictions for ``X``."""
        return self._gather(X, "predict")

    def predict_proba(self, X) -> np.ndarray:
        """Blocking convenience: micro-batched class probabilities for ``X``."""
        return self._gather(X, "predict_proba")

    def encode(self, X) -> np.ndarray:
        """Blocking convenience: micro-batched representations for ``X``."""
        return self._gather(X, "encode")

    # -- hot reload --------------------------------------------------------

    def reload(self, path) -> "ModelServer":
        """Atomically swap in a new bundle without dropping in-flight work.

        The new bundle is loaded and replicated *outside* the model lock;
        the swap itself is a single reference update.  Batches already
        handed to a worker keep their old replica, so every accepted request
        completes against a consistent model — no drops, no reordering.
        """
        from repro.api.registry import load_estimator

        estimator = load_estimator(path, eval_mode=self._eval_mode)
        replicas = self._make_replicas(estimator)
        with self._model_lock:
            self._replicas = replicas
            self._model_version += 1
        self._stats.increment("reloads")
        return self

    @property
    def model_version(self) -> int:
        """How many times :meth:`reload` has swapped the model (0 = initial)."""
        with self._model_lock:
            return self._model_version

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Snapshot of serving counters plus derived batching figures.

        Includes a ``workspace`` section — fused-path buffer-arena counters
        (``hits`` / ``misses`` / ``nbytes`` / ``peak_bytes`` / ``buffers``)
        summed across the worker replicas' :class:`~repro.nn.inference.
        Workspace` arenas — so operators can verify steady-state serving
        reuses its buffers instead of allocating per batch.
        """
        snapshot = self._stats.snapshot()
        batches = snapshot.get("batches", 0)
        snapshot["mean_batch_size"] = (
            snapshot.get("batched_samples", 0) / batches if batches else 0.0
        )
        snapshot["model_version"] = self.model_version
        snapshot["n_workers"] = self.n_workers
        snapshot["max_batch"] = self.max_batch
        snapshot["max_wait_ms"] = self.max_wait_ms
        # reliability counters are part of the stable surface: report them
        # even before the first shed / expiry / crash
        for key in ("shed_requests", "deadline_expired", "worker_deaths", "worker_restarts"):
            snapshot.setdefault(key, 0)
        snapshot["workspace"] = self._workspace_stats()
        return snapshot

    def _workspace_stats(self) -> dict:
        """Sum the replicas' inference-workspace counters (zeros if opaque)."""
        merged = {"hits": 0, "misses": 0, "nbytes": 0, "peak_bytes": 0, "buffers": 0}
        with self._model_lock:
            replicas = list(self._replicas)
        for replica in replicas:
            collect = getattr(replica, "workspace_stats", None)
            if not callable(collect):
                continue
            for key, value in collect().items():
                merged[key] = merged.get(key, 0) + int(value)
        return merged

    # -- worker side -------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Replace dead worker threads (crash detection on the submit path).

        A worker thread that died outside the normal shutdown path (chaos
        faults, estimator segfault-adjacent bugs) would silently strand the
        queue.  Every ``submit`` cheaply scans the thread list and respawns
        dead entries under the thread lock, counting ``worker_restarts``.
        """
        if self._closed or not self._started:
            return
        if all(thread.is_alive() for thread in self._threads):
            return
        with self._thread_lock:
            for slot, thread in enumerate(self._threads):
                if thread.is_alive() or self._closed:
                    continue
                replacement = threading.Thread(
                    target=self._worker_loop,
                    args=(slot,),
                    name=f"{thread.name}-r",
                    daemon=True,
                )
                replacement.start()
                self._threads[slot] = replacement
                self._stats.increment("worker_restarts")

    def _partition_expired(self, batch):
        """Split a sealed batch into (live, expired) by request deadline."""
        now = self._batcher.clock()
        live, expired = [], []
        for request in batch.requests:
            if request.deadline_at is not None and now > request.deadline_at:
                expired.append(request)
            else:
                live.append(request)
        return live, expired

    def _worker_loop(self, index: int) -> None:
        try:
            self._serve_forever(index)
        except Exception:  # thread death is detected + healed on submit
            self._stats.increment("worker_deaths")

    def _serve_forever(self, index: int) -> None:
        while True:
            fault_point("server.worker")  # chaos: kills the thread between batches
            batch = self._batcher.next_batch()
            if batch is None:
                return
            with self._model_lock:
                estimator = self._replicas[index % len(self._replicas)]
            try:
                live, expired = self._partition_expired(batch)
                for request in expired:
                    waited_ms = (self._batcher.clock() - request.submitted_at) * 1e3
                    deadline_ms = (request.deadline_at - request.submitted_at) * 1e3
                    _reject(request.future, DeadlineExceededError(deadline_ms, waited_ms))
                if expired:
                    self._stats.increment("deadline_expired", len(expired))
                if not live:
                    continue
                X = batch.materialize(live)
                if batch.group == "proba":
                    proba = estimator.predict_proba(X)
                    for request, row in zip(live, proba):
                        value = int(np.argmax(row)) if request.op == "predict" else row
                        _resolve(request.future, value)
                else:
                    encoded = estimator.encode(X)
                    for request, row in zip(live, encoded):
                        _resolve(request.future, row)
                self._stats.increment("responses", len(live))
            except Exception as error:  # scatter the failure, keep serving
                for request in batch.requests:
                    _reject(request.future, error)
                self._stats.increment("errors", len(batch.requests))
            finally:
                batch.release(self._pool)


def _resolve(future, value) -> None:
    if not future.cancelled():
        future.set_result(value)


def _reject(future, error) -> None:
    if not future.cancelled():
        future.set_exception(error)
