"""Serving-side counters and latency statistics.

Two small pieces shared by the server, the micro-batcher and the load
generator: :class:`ServerStats`, a thread-safe counter bag the serving
pipeline increments from submitter and worker threads alike, and
:class:`LatencySummary`, the percentile digest the open-loop benchmarks
record into ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


class ServerStats:
    """Thread-safe counters and high-water marks of one serving pipeline."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._maxima: dict[str, float] = {}

    def increment(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + int(n)

    def observe_max(self, name: str, value: float) -> None:
        """Track the high-water mark of gauge ``name``."""
        with self._lock:
            if value > self._maxima.get(name, float("-inf")):
                self._maxima[name] = value

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict:
        """A consistent copy of every counter and high-water mark."""
        with self._lock:
            return {**self._counts, **{f"max_{k}": v for k, v in self._maxima.items()}}


@dataclass
class LatencySummary:
    """Percentile digest of a set of request latencies (milliseconds)."""

    n: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, seconds) -> "LatencySummary":
        """Summarise latencies given in seconds; ``None`` entries are skipped."""
        values = np.asarray([s for s in seconds if s is not None], dtype=np.float64)
        if values.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        ms = values * 1e3
        return cls(
            n=int(ms.size),
            mean_ms=float(ms.mean()),
            p50_ms=float(np.percentile(ms, 50)),
            p99_ms=float(np.percentile(ms, 99)),
            max_ms=float(ms.max()),
        )

    def as_record(self, prefix: str = "") -> dict:
        """Flat dict of the digest, keys prefixed (for ``BENCH_serving.json``)."""
        return {
            f"{prefix}n": self.n,
            f"{prefix}mean_latency_ms": self.mean_ms,
            f"{prefix}p50_latency_ms": self.p50_ms,
            f"{prefix}p99_latency_ms": self.p99_ms,
            f"{prefix}max_latency_ms": self.max_ms,
        }
