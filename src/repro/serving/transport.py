"""Zero-copy sample transport between submitters and serving workers.

Request tensors are not pickled through a queue: each pending micro-batch
owns a :class:`SampleSlab` — a thin wrapper over the shared-memory
:class:`repro.engine.parallel.InputArena` — and submitters copy their sample
into it exactly once.  Consecutive writes land back to back, so when the
batch flushes the worker maps the whole slab as **one** contiguous
``(batch, ...)`` view (no per-request gather, no second copy).  A bounded
:class:`SlabPool` recycles slabs between batches so the steady state
allocates nothing.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.engine.parallel import InputArena


class SampleSlab:
    """One micro-batch worth of contiguous sample storage.

    ``append`` copies a sample into the slab and returns its arena
    descriptor; the first append of a fresh batch sizes the arena for
    ``capacity_samples`` like-shaped samples and resets the write cursor.
    Appends that no longer fit return ``None`` — the batcher then falls back
    to a private copy for that request.
    """

    def __init__(self):
        self._arena = InputArena()
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def append(self, sample: np.ndarray, *, capacity_samples: int):
        sample = np.ascontiguousarray(sample)
        if self._count == 0:
            self._arena.ensure(sample.nbytes * capacity_samples)
            self._arena.reset()
        descriptor = self._arena.write(sample)
        if descriptor is not None:
            self._count += 1
        return descriptor

    def view(self, descriptor) -> np.ndarray:
        """Map one descriptor back to its sample view."""
        return self._arena.view(descriptor)

    def batch_view(self, descriptors) -> np.ndarray | None:
        """One ``(batch, ...)`` view over all descriptors, or ``None``.

        Valid only when the descriptors are homogeneous and laid out back to
        back from the first offset — which is how ``append`` writes them; a
        mixed or gappy layout (shouldn't happen for a group-keyed batch)
        falls back to ``None`` so the caller stacks per-request views.
        """
        if not descriptors:
            return None
        first_offset, dtype_name, shape = descriptors[0]
        stride = int(np.dtype(dtype_name).itemsize * int(np.prod(shape, dtype=np.int64)))
        for index, (offset, dtype, shp) in enumerate(descriptors):
            if dtype != dtype_name or shp != shape or offset != first_offset + index * stride:
                return None
        batched = (first_offset, dtype_name, (len(descriptors),) + tuple(shape))
        return self._arena.view(batched)

    def recycle(self) -> None:
        """Forget the current batch; storage is kept for the next one."""
        self._count = 0

    def close(self) -> None:
        self._arena.close()


class SlabPool:
    """A bounded free-list of :class:`SampleSlab` instances.

    ``try_acquire`` hands out a recycled (or fresh, up to ``max_slabs``)
    slab, or ``None`` when every slab is in flight — the batcher then runs
    that batch through the copying fallback rather than blocking the
    submitter.
    """

    def __init__(self, max_slabs: int):
        self.max_slabs = int(max_slabs)
        self._lock = threading.Lock()
        self._free: list[SampleSlab] = []
        self._created = 0
        self._closed = False

    def try_acquire(self) -> SampleSlab | None:
        with self._lock:
            if self._closed:
                return None
            if self._free:
                return self._free.pop()
            if self._created < self.max_slabs:
                self._created += 1
                return SampleSlab()
            return None

    def release(self, slab: SampleSlab) -> None:
        slab.recycle()
        with self._lock:
            if self._closed:
                slab.close()
                return
            self._free.append(slab)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            free, self._free = self._free, []
        for slab in free:
            slab.close()
