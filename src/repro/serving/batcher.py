"""Dynamic micro-batching: coalesce concurrent requests into fused batches.

The scheduler keeps one pending group per ``(op group, sample shape, dtype)``
key, so a flushed batch is always homogeneous and stacks into a single fused
call.  A group flushes on whichever trigger fires first:

* **size** — the group reaches ``max_batch`` (sealed by the submitting
  thread itself, no scheduler hop), or
* **deadline** — ``max_wait_s`` elapsed since the group's *first* request
  (sealed by a worker waking from a timed wait), so a lone request is never
  stranded waiting for company.

``close()`` drains every pending group into the ready queue before waking
the workers, so accepted requests are always answered.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro.serving.stats import ServerStats
from repro.serving.transport import SlabPool


class Request:
    """One accepted request: its payload handle plus the caller's future."""

    __slots__ = ("op", "descriptor", "array", "future", "submitted_at", "deadline_at")

    def __init__(self, op: str, descriptor, array, submitted_at: float, deadline_at=None):
        self.op = op
        self.descriptor = descriptor  # slab descriptor (zero-copy path) ...
        self.array = array  # ... or a private copy (fallback path)
        self.future: Future = Future()
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at  # absolute clock time, or None = no deadline


class MicroBatch:
    """A sealed, homogeneous batch ready for one fused estimator call."""

    __slots__ = ("key", "requests", "slab", "trigger")

    def __init__(self, key, requests, slab, trigger: str):
        self.key = key
        self.requests = requests
        self.slab = slab
        self.trigger = trigger  # "size" | "deadline" | "drain"

    @property
    def group(self) -> str:
        return self.key[0]

    def materialize(self, requests=None) -> np.ndarray:
        """The ``(batch, ...)`` input array — a slab view when possible.

        ``requests`` restricts the fused input to a subset (the live
        requests after deadline expiry pruning); the default is the whole
        batch.  A pruned subset loses the contiguous zero-copy fast path
        but expired rows never reach the estimator.
        """
        if requests is None:
            requests = self.requests
        if self.slab is not None:
            descriptors = [request.descriptor for request in requests]
            if all(descriptor is not None for descriptor in descriptors):
                batch = self.slab.batch_view(descriptors)
                if batch is not None:
                    return batch
            parts = [
                self.slab.view(request.descriptor)
                if request.descriptor is not None
                else request.array
                for request in requests
            ]
        else:
            parts = [request.array for request in requests]
        return np.stack(parts)

    def release(self, pool: SlabPool | None) -> None:
        """Return the slab to the pool once the fused call has consumed it."""
        if self.slab is not None and pool is not None:
            pool.release(self.slab)
        self.slab = None


class _Group:
    __slots__ = ("requests", "slab", "deadline")

    def __init__(self):
        self.requests: list[Request] = []
        self.slab = None
        self.deadline = 0.0


class MicroBatcher:
    """Group-keyed pending queues with size/deadline/drain flush triggers."""

    def __init__(
        self,
        *,
        max_batch: int,
        max_wait_s: float,
        slab_pool: SlabPool | None = None,
        stats: ServerStats | None = None,
        clock=time.perf_counter,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._pool = slab_pool
        self.stats = stats if stats is not None else ServerStats()
        self._clock = clock
        self._cond = threading.Condition()
        self._groups: dict[tuple, _Group] = {}
        self._ready: deque[MicroBatch] = deque()
        self._closed = False

    def submit(
        self, key: tuple, op: str, sample: np.ndarray, *, deadline_s: float | None = None
    ) -> Request:
        """Enqueue one sample under ``key``; returns the pending request.

        ``deadline_s`` (relative, seconds) stamps an absolute expiry on the
        request; the server's worker loop drops expired requests before the
        fused call so they never occupy a batch slot.
        """
        now = self._clock()
        deadline_at = now + float(deadline_s) if deadline_s is not None else None
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed; no new requests accepted")
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _Group()
            if group.slab is None and self._pool is not None:
                group.slab = self._pool.try_acquire()
            descriptor = None
            if group.slab is not None:
                descriptor = group.slab.append(sample, capacity_samples=self.max_batch)
            request = Request(op, descriptor, None, now, deadline_at)
            if descriptor is None:
                request.array = np.ascontiguousarray(sample).copy()
                self.stats.increment("fallback_requests")
            group.requests.append(request)
            if len(group.requests) == 1:
                group.deadline = now + self.max_wait_s
            self.stats.increment("requests")
            self.stats.observe_max("pending", self.pending_count())
            if len(group.requests) >= self.max_batch:
                self._seal(key, "size")
            self._cond.notify()
        return request

    @property
    def clock(self):
        """The batcher's time source — deadlines must be judged by it."""
        return self._clock

    def pending_count(self) -> int:
        """Requests accepted but not yet handed to a worker (caller holds lock
        or tolerates a racy read)."""
        queued = sum(len(group.requests) for group in self._groups.values())
        ready = sum(len(batch.requests) for batch in self._ready)
        return queued + ready

    def _seal(self, key: tuple, trigger: str) -> None:
        group = self._groups.pop(key)
        batch = MicroBatch(key, group.requests, group.slab, trigger)
        self._ready.append(batch)
        self.stats.increment("batches")
        self.stats.increment(f"{trigger}_flushes")
        self.stats.increment("batched_samples", len(batch.requests))

    def next_batch(self) -> MicroBatch | None:
        """Block until a batch is ready; ``None`` means closed and drained.

        Workers park here: a ready batch is handed over immediately, else the
        worker waits until the earliest group deadline (sealing it itself on
        expiry) or a submit/close notification, whichever comes first.
        """
        with self._cond:
            while True:
                if self._ready:
                    return self._ready.popleft()
                if self._closed and not self._groups:
                    return None
                wait_for = None
                if self._groups:
                    due_key = min(self._groups, key=lambda k: self._groups[k].deadline)
                    remaining = self._groups[due_key].deadline - self._clock()
                    if remaining <= 0:
                        self._seal(due_key, "deadline")
                        continue
                    wait_for = remaining
                self._cond.wait(wait_for)

    def close(self) -> None:
        """Stop accepting requests and drain pending groups to the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for key in list(self._groups):
                self._seal(key, "drain")
            self._cond.notify_all()
