"""``repro.serving`` — async front door over the fused inference path.

A long-lived :class:`ModelServer` coalesces concurrent single-sample
``predict`` / ``predict_proba`` / ``encode`` requests into fused micro-batches
(size trigger ``max_batch`` or deadline trigger ``max_wait_ms``, whichever
fires first), runs them on worker threads with warm per-worker workspaces,
and scatters results back to per-request futures.  ``max_pending`` bounds
admission (:class:`ServerOverloadedError` fast-fail), per-request
``deadline_ms`` drops stale work before the fused call
(:class:`DeadlineExceededError`), and dead worker threads are replaced on
the submit path.  See the README "Serving" / "Reliability" sections and
``examples/serve.py``.

>>> from repro.serving import ModelServer
>>> with ModelServer.from_bundle("model.npz", max_wait_ms=2.0) as server:
...     label = server.submit(sample).result()
"""

from repro.serving.batcher import MicroBatch, MicroBatcher, Request
from repro.serving.errors import DeadlineExceededError, ServerOverloadedError
from repro.serving.loadgen import LoadReport, run_open_loop, serial_baseline
from repro.serving.server import DEFAULT_MAX_WAIT_MS, ModelServer
from repro.serving.stats import LatencySummary, ServerStats
from repro.serving.transport import SampleSlab, SlabPool

__all__ = [
    "DEFAULT_MAX_WAIT_MS",
    "DeadlineExceededError",
    "LatencySummary",
    "LoadReport",
    "MicroBatch",
    "MicroBatcher",
    "ModelServer",
    "Request",
    "SampleSlab",
    "ServerOverloadedError",
    "ServerStats",
    "SlabPool",
    "run_open_loop",
    "serial_baseline",
]
