"""Shared fixtures for the benchmark harness.

Every benchmark module reproduces one table or figure of the AimTS paper (see
DESIGN.md for the experiment index).  Heavy shared artefacts — the multi-source
pre-trained AimTS model, the pre-trained foundation-model baselines and the
downstream evaluation suites — are built once per session here so the whole
harness runs in minutes on a CPU.

Scale note: the synthetic archives are much smaller than the real UCR/UEA
archives (see the substitution table in DESIGN.md), so absolute accuracies are
not comparable to the paper; the benchmarks assert and report the *shape* of
each result (who wins, ordering of ablations, trends of the sweeps).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make_estimator
from repro.baselines import BaselineConfig
from repro.core import AimTS, AimTSConfig, FineTuneConfig
from repro.data import load_archive, load_dataset, load_pretraining_corpus
from repro.utils.seeding import seed_everything

#: shared model scale used across all benchmarks (CPU friendly)
REPR_DIM = 24
PROJ_DIM = 12
HIDDEN = 12
DEPTH = 2
SERIES_LENGTH = 64
PANEL_SIZE = 24


def make_aimts_config(**overrides) -> AimTSConfig:
    """The benchmark-scale AimTS configuration (override per experiment)."""
    base = dict(
        repr_dim=REPR_DIM,
        proj_dim=PROJ_DIM,
        hidden_channels=HIDDEN,
        depth=DEPTH,
        panel_size=PANEL_SIZE,
        series_length=SERIES_LENGTH,
        batch_size=12,
        epochs=2,
        seed=3407,
    )
    base.update(overrides)
    return AimTSConfig(**base)


def make_baseline_config(**overrides) -> BaselineConfig:
    """Matching configuration for the neural baselines."""
    base = dict(
        repr_dim=REPR_DIM,
        proj_dim=PROJ_DIM,
        hidden_channels=HIDDEN,
        depth=DEPTH,
        series_length=SERIES_LENGTH,
        batch_size=12,
        epochs=2,
        seed=3407,
    )
    base.update(overrides)
    return BaselineConfig(**base)


def make_finetune_config(**overrides) -> FineTuneConfig:
    """The shared downstream fine-tuning configuration."""
    base = dict(epochs=20, learning_rate=3e-3, batch_size=8, classifier_hidden_dim=32, seed=3407)
    base.update(overrides)
    return FineTuneConfig(**base)


def pretrain_aimts(config: AimTSConfig | None = None, *, corpus_source: str = "monash", max_samples: int = 160) -> AimTS:
    """Pre-train a fresh AimTS model on a multi-source corpus."""
    seed_everything(3407)
    model = make_estimator("aimts", config=config or make_aimts_config())
    corpus = load_pretraining_corpus(corpus_source, n_datasets=12, seed=3407)
    model.pretrain(corpus, max_samples=max_samples)
    return model


@pytest.fixture(scope="session")
def aimts_model() -> AimTS:
    """The multi-source (Monash-like) pre-trained AimTS model used everywhere."""
    return pretrain_aimts()


@pytest.fixture(scope="session")
def foundation_baselines() -> dict:
    """MOMENT-like and UniTS-like baselines pre-trained on the same corpus."""
    seed_everything(3407)
    corpus = load_pretraining_corpus("monash", n_datasets=12, seed=3407)
    baselines = {}
    for api_name, display_name in (("moment", "MOMENT"), ("units", "UniTS")):
        baseline = make_estimator(api_name, config=make_baseline_config())
        baseline.pretrain(corpus, max_samples=160)
        baselines[display_name] = baseline
    return baselines


@pytest.fixture(scope="session")
def ucr_suite():
    """The synthetic UCR-style downstream suite (univariate)."""
    return load_archive("ucr", n_datasets=8, seed=3407)


@pytest.fixture(scope="session")
def uea_suite():
    """The synthetic UEA-style downstream suite (multivariate)."""
    return load_archive("uea", n_datasets=5, seed=3407)


@pytest.fixture(scope="session")
def finetune_config() -> FineTuneConfig:
    return make_finetune_config()


@pytest.fixture(scope="session")
def starlight_dataset():
    """StarLightCurves-like dataset used by the efficiency comparison (Fig. 7c/d)."""
    return load_dataset("StarLightCurves", seed=3407)


def append_bench_record(path, record: dict) -> None:
    """Append one timestamped measurement record to a ``BENCH_*.json`` file.

    Shared by the perf modules (imaging / training / inference) so the
    trajectory-file format lives in one place.
    """
    import json
    import time
    from pathlib import Path

    path = Path(path)
    records = json.loads(path.read_text()) if path.exists() else []
    records.append({"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **record})
    path.write_text(json.dumps(records, indent=2) + "\n")


def machine_info() -> dict:
    """Platform fields stamped into every perf record."""
    import platform

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def print_table(title: str, columns, rows) -> None:
    """Print one paper-style result table to stdout (captured with ``-s``)."""
    from repro.utils.tables import ResultTable

    table = ResultTable(columns, title=title)
    for row in rows:
        table.add_row(row)
    print("\n" + table.render() + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
