"""Fig. 8(d) — naive multi-source pre-training suffers negative transfer; AimTS does not.

The paper pre-trains TS2Vec on the merged UCR training sets and compares it
against (i) TS2Vec trained case-by-case and (ii) AimTS pre-trained on the same
merged corpus, on 5 downstream datasets.

Shape to reproduce: multi-source TS2Vec does *not* beat case-by-case TS2Vec on
average (negative transfer), while AimTS pre-trained on the same multi-source
corpus performs best.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import make_aimts_config, make_baseline_config, make_finetune_config, print_table, run_once
from repro.baselines import TS2Vec
from repro.core import AimTS
from repro.data import load_archive, load_dataset
from repro.utils.seeding import seed_everything

#: the five downstream datasets of Fig. 8(d) (AllGestureWiimoteZ, CricketY, Crop,
#: StarLightCurves, UWaveGestureLibraryAll in the paper)
FIG8D_DATASETS = (
    "AllGestureWiimoteZ",
    "CricketY",
    "Crop",
    "StarLightCurves",
    "UWaveGestureLibraryAll",
)


@pytest.mark.benchmark(group="fig8d")
def test_fig8d_negative_transfer(benchmark):
    finetune = make_finetune_config()
    datasets = [load_dataset(name, seed=3407) for name in FIG8D_DATASETS]
    corpus = load_archive("ucr", n_datasets=10, seed=3407)

    def experiment():
        seed_everything(3407)
        results = {}

        # (1) TS2Vec in the case-by-case paradigm
        case_by_case = {}
        for dataset in datasets:
            baseline = TS2Vec(make_baseline_config())
            baseline.pretrain(dataset.train.X, epochs=2)
            case_by_case[dataset.name] = baseline.fine_tune(dataset, finetune).accuracy
        results["TS2Vec (case-by-case)"] = case_by_case

        # (2) TS2Vec pre-trained on the merged multi-source UCR corpus
        multi_source = TS2Vec(make_baseline_config())
        multi_source.pretrain_multi_source(corpus, max_samples=160, epochs=2)
        results["TS2Vec (UCR pre-train)"] = {
            dataset.name: multi_source.fine_tune(dataset, finetune).accuracy for dataset in datasets
        }

        # (3) AimTS pre-trained on the same multi-source corpus
        seed_everything(3407)
        aimts = AimTS(make_aimts_config())
        aimts.pretrain(corpus, max_samples=160)
        results["AimTS (UCR pre-train)"] = {
            dataset.name: aimts.fine_tune(dataset, finetune).accuracy for dataset in datasets
        }
        return results

    results = run_once(benchmark, experiment)

    methods = list(results)
    rows = [[name] + [results[m][name] for m in methods] for name in (d.name for d in datasets)]
    averages = {m: float(np.mean(list(results[m].values()))) for m in methods}
    rows.append(["Avg. ACC"] + [averages[m] for m in methods])
    print_table("Fig. 8(d): negative transfer of naive multi-source pre-training", ["Dataset"] + methods, rows)

    # shape: AimTS benefits from multi-source pre-training ...
    assert averages["AimTS (UCR pre-train)"] >= averages["TS2Vec (case-by-case)"] - 0.05
    # ... while naive multi-source pre-training gives TS2Vec no clear advantage
    assert averages["TS2Vec (UCR pre-train)"] <= averages["AimTS (UCR pre-train)"] + 0.02
    assert averages["TS2Vec (UCR pre-train)"] <= averages["TS2Vec (case-by-case)"] + 0.1
