"""Fig. 9 / Fig. 2 — data augmentation can change sample semantics; prototypes preserve them.

The paper trains a classifier on StarLightCurves, then evaluates it on
(a) the raw test data, (b) test data augmented with slicing, and (c) the
prototype of multiple augmentations of each test sample.

Shape to reproduce: accuracy(raw) ≈ accuracy(prototype) > accuracy(sliced) —
slicing destroys class-relevant structure while the multi-augmentation
prototype dampens that damage.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.augmentations import Slicing, default_bank
from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.data import load_dataset
from repro.encoders import TSEncoder


@pytest.mark.benchmark(group="fig9")
def test_fig9_augmentation_semantics(benchmark):
    dataset = load_dataset("StarLightCurves", seed=3407, scale=1.5)

    def experiment():
        # train a supervised classifier on the raw training split (the paper
        # uses TS2Vec + classifier; a supervised encoder plays the same role of
        # "a classifier that has learned the class semantics")
        encoder = TSEncoder(hidden_channels=12, repr_dim=24, depth=2, rng=3407)
        finetuner = FineTuner(
            encoder, dataset.n_classes, FineTuneConfig(epochs=25, learning_rate=3e-3, seed=3407)
        )
        finetuner.fit(dataset.train)

        X_test, y_test = dataset.test.X, dataset.test.y
        raw_accuracy = float((finetuner.predict(X_test) == y_test).mean())

        sliced = Slicing(crop_ratio=0.5, seed=3407)(X_test)
        sliced_accuracy = float((finetuner.predict(sliced) == y_test).mean())

        # prototype of the data: average of the G augmented views in the input
        # space (the paper's Fig. 9c visualises exactly this averaged series)
        views = default_bank(seed=3407).augment_batch(X_test)
        prototype_series = views.mean(axis=0)
        prototype_accuracy = float((finetuner.predict(prototype_series) == y_test).mean())
        return {"raw": raw_accuracy, "sliced": sliced_accuracy, "prototype": prototype_accuracy}

    accuracies = run_once(benchmark, experiment)
    print_table(
        "Fig. 9: classifier accuracy on raw / sliced / prototype test data",
        ["Test data", "Accuracy"],
        [["raw (Fig. 9a)", accuracies["raw"]], ["sliced (Fig. 9b)", accuracies["sliced"]], ["prototype (Fig. 9c)", accuracies["prototype"]]],
    )

    assert accuracies["raw"] > 0.6, "the classifier must have learned the task"
    assert accuracies["sliced"] < accuracies["raw"], "slicing should hurt accuracy (semantic change)"
    assert accuracies["prototype"] >= accuracies["sliced"], "prototypes should dampen the damage"
    assert accuracies["raw"] - accuracies["prototype"] <= accuracies["raw"] - accuracies["sliced"], (
        "the prototype should stay closer to the raw-data accuracy than the sliced data does"
    )
