"""Table IV — comparison with multi-source adaptation foundation models.

Paper shape to reproduce: AimTS achieves higher Avg. ACC, better Avg. Rank and
far more Top-1 wins than MOMENT and UniTS style foundation models on both the
UCR-style and UEA-style suites.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.evaluation import run_multisource_comparison


def _report(title, comparison):
    rows = [
        [method, stats["avg_acc"], stats["avg_rank"], int(stats["num_top1"])]
        for method, stats in sorted(comparison.summary.items(), key=lambda i: i[1]["avg_rank"])
    ]
    print_table(title, ["Method", "Avg. ACC", "Avg. Rank", "Num. Top-1"], rows)


@pytest.mark.benchmark(group="table4")
def test_table4_ucr_foundation_models(benchmark, aimts_model, foundation_baselines, ucr_suite, finetune_config):
    def experiment():
        return run_multisource_comparison(
            aimts_model, foundation_baselines, ucr_suite, finetune_config=finetune_config
        )

    comparison = run_once(benchmark, experiment)
    _report("Table IV (UCR-style suite): multi-source adaptation paradigm", comparison)

    summary = comparison.summary
    assert summary["AimTS"]["avg_acc"] >= max(
        summary["MOMENT"]["avg_acc"], summary["UniTS"]["avg_acc"]
    ) - 0.03
    assert summary["AimTS"]["avg_rank"] <= min(
        summary["MOMENT"]["avg_rank"], summary["UniTS"]["avg_rank"]
    )


@pytest.mark.benchmark(group="table4")
def test_table4_uea_foundation_models(benchmark, aimts_model, foundation_baselines, uea_suite, finetune_config):
    def experiment():
        return run_multisource_comparison(
            aimts_model, foundation_baselines, uea_suite, finetune_config=finetune_config
        )

    comparison = run_once(benchmark, experiment)
    _report("Table IV (UEA-style suite): multi-source adaptation paradigm", comparison)

    summary = comparison.summary
    assert summary["AimTS"]["avg_acc"] >= max(
        summary["MOMENT"]["avg_acc"], summary["UniTS"]["avg_acc"]
    ) - 0.05
