"""Performance benchmarks for the fused no-grad inference path (perf marker).

Not part of any paper table — this module tracks the serving-side trajectory
introduced in PR 4: ``encode`` / ``predict`` streaming micro-batches through
the fused raw-array kernels (BN folding, reusable im2col workspace, float32
compute) versus the unfused float64 eval-mode autograd forward.

Every run appends to ``BENCH_inference.json`` at the repo root.  Excluded
from tier-1 by the ``perf`` marker (see ``pytest.ini``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_inference.py -m perf -s
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import append_bench_record as _append
from benchmarks.conftest import machine_info
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.core.pretrainer import AimTSPretrainer
from repro.data.archives import make_dataset
from repro.encoders import TSEncoder

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"

#: serving batch shape (samples, variables, length)
BATCH_SHAPE = (256, 3, 96)
REPEATS = 5

#: acceptance gate for the fused float32 encode speedup; relaxed on shared CI
#: runners, whose BLAS/thread configuration shifts relative gains by more
#: than the local headroom
SPEEDUP_GATE = 1.5 if os.environ.get("CI") else 2.0

#: acceptance gate for the fused ``predict`` path at the PR 5 serving batch
#: default (256).  Profiling showed the classifier head is negligible
#: (~0.1 ms vs ~80 ms encoder on the benchmark shape), so the fused-vs-
#: unfused gap is all encoder: fused throughput is flat in the micro-batch
#: size (workspace buffers are reused either way) while the unfused autograd
#: forward degrades as batches grow — measured ~1.4-1.6x at the 256 default
#: vs the 1.09x recorded at 64 in the PR 4 era.  The gate leaves headroom
#: for runner noise.
PREDICT_GATE = 1.05 if os.environ.get("CI") else 1.2


def append_bench_record(record: dict) -> None:
    """Append one measurement record to ``BENCH_inference.json``."""
    _append(BENCH_PATH, record)


def best_of(fn, repeats: int = REPEATS) -> float:
    """Best wall-clock of ``repeats`` runs after one warm-up call."""
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _make_pretrainer(**overrides) -> AimTSPretrainer:
    config = AimTSConfig(
        repr_dim=32,
        proj_dim=16,
        hidden_channels=16,
        depth=2,
        panel_size=24,
        series_length=BATCH_SHAPE[2],
        n_variables=BATCH_SHAPE[1],
        batch_size=16,
        seed=3407,
        **overrides,
    )
    return AimTSPretrainer(config)


def test_encode_fused_throughput():
    """Fused no-grad ``encode`` vs the unfused float64 baseline on one batch.

    Acceptance gate of PR 4: the fused path (float32, BN-fold-ready raw-array
    kernels, reusable workspace) must be at least 2x the unfused float64
    eval-mode autograd forward on a ``(256, 3, 96)`` batch.
    """
    X = np.random.default_rng(3407).normal(size=BATCH_SHAPE)
    batch = BATCH_SHAPE[0]
    reference = _make_pretrainer()
    fast = _make_pretrainer(compute_dtype="float32")

    t_unfused64 = best_of(lambda: reference.encode(X, batch_size=batch, fused=False))
    t_fused64 = best_of(lambda: reference.encode(X, batch_size=batch))
    t_fused32 = best_of(lambda: fast.encode(X, batch_size=batch))
    speedup = t_unfused64 / t_fused32

    # the two paths agree (bit-identical in float64; float32 to round-off)
    assert np.array_equal(
        reference.encode(X, batch_size=batch), reference.encode(X, batch_size=batch, fused=False)
    )

    record = {
        "benchmark": "encode_fused",
        "batch_shape": list(BATCH_SHAPE),
        "unfused_float64_seconds": t_unfused64,
        "fused_float64_seconds": t_fused64,
        "fused_float32_seconds": t_fused32,
        "unfused_float64_samples_per_sec": batch / t_unfused64,
        "fused_float64_samples_per_sec": batch / t_fused64,
        "fused_float32_samples_per_sec": batch / t_fused32,
        "fused_float32_speedup": speedup,
        "workspace_bytes": fast._workspace.nbytes(),
        **machine_info(),
    }
    append_bench_record(record)  # record first, so a failed gate still leaves a data point
    print(
        f"\n[perf] encode {BATCH_SHAPE}: unfused f64 {t_unfused64 * 1000:.1f}ms, "
        f"fused f64 {t_fused64 * 1000:.1f}ms, fused f32 {t_fused32 * 1000:.1f}ms "
        f"({speedup:.2f}x, workspace {fast._workspace.nbytes() / 1e6:.1f}MB)"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"fused float32 encode only {speedup:.2f}x the unfused float64 path"
    )


def test_predict_serving_throughput():
    """Fused ``predict`` at the 256 serving default vs the unfused forward.

    PR 5 gate: the old ``batch_size=64`` default under-filled the workspace
    (fused speedup ~1.09x); the raised default must recover >= ``PREDICT_GATE``
    against the unfused eval forward at the same batch size.  The legacy
    64-batch fused timing is recorded alongside so the trajectory shows the
    default change itself.
    """
    from repro.api.estimator import DEFAULT_SERVING_BATCH_SIZE

    dataset = make_dataset(
        "perf_serving",
        "ecg",
        n_classes=2,
        n_train=64,
        n_test=BATCH_SHAPE[0],
        length=BATCH_SHAPE[2],
        n_variables=BATCH_SHAPE[1],
        seed=3407,
    )
    encoder = TSEncoder(hidden_channels=16, repr_dim=32, depth=2, rng=3407)
    finetuner = FineTuner(
        encoder, dataset.n_classes, FineTuneConfig(epochs=2, batch_size=8, seed=3407)
    )
    finetuner.fit(dataset.train)
    X = dataset.test.X

    t_fused = best_of(lambda: finetuner.predict_logits(X))  # default batch size
    t_fused_64 = best_of(lambda: finetuner.predict_logits(X, batch_size=64))
    t_unfused = best_of(lambda: finetuner.predict_logits(X, fused=False))
    speedup = t_unfused / t_fused
    assert np.array_equal(
        finetuner.predict_logits(X),
        finetuner.predict_logits(X, fused=False),
    )

    record = {
        "benchmark": "predict_fused",
        "batch_shape": list(X.shape),
        "serving_batch_size": DEFAULT_SERVING_BATCH_SIZE,
        "unfused_seconds": t_unfused,
        "fused_seconds": t_fused,
        "fused_seconds_batch64": t_fused_64,
        "fused_samples_per_sec": X.shape[0] / t_fused,
        "unfused_samples_per_sec": X.shape[0] / t_unfused,
        "fused_speedup": speedup,
        **machine_info(),
    }
    append_bench_record(record)  # record first, so a failed gate still leaves a data point
    print(
        f"\n[perf] predict {X.shape}: unfused {t_unfused * 1000:.1f}ms, "
        f"fused@{DEFAULT_SERVING_BATCH_SIZE} {t_fused * 1000:.1f}ms "
        f"({speedup:.2f}x), fused@64 {t_fused_64 * 1000:.1f}ms"
    )
    assert speedup >= PREDICT_GATE, (
        f"fused predict only {speedup:.2f}x the unfused path at the "
        f"{DEFAULT_SERVING_BATCH_SIZE} serving default"
    )
