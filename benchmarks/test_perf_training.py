"""Performance benchmarks for the unified training engine (perf marker).

Not part of any paper table — this module tracks the reproduction's own
training-throughput trajectory now that every epoch loop runs through
``repro.engine.Trainer``.  It measures

* pre-training: wall-clock per epoch and samples/s of a 2-epoch
  ``AimTSPretrainer.fit`` (both contrastive objectives on, render cache on),
* fine-tuning: wall-clock per epoch and samples/s of a ``FineTuner.fit`` run
  on a small labelled dataset,

and appends every run to ``BENCH_training.json`` at the repo root so
successive PRs can compare numbers on the same machine.

Excluded from tier-1 by the ``perf`` marker (see ``pytest.ini``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_training.py -m perf -s
"""

from __future__ import annotations

import contextlib
import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import append_bench_record as _append
from benchmarks.conftest import machine_info as _machine
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.core.pretrainer import AimTSPretrainer
from repro.data.archives import make_dataset
from repro.encoders import TSEncoder

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_training.json"

#: pre-training pool shape (samples, variables, length)
POOL_SHAPE = (128, 1, 96)
PRETRAIN_EPOCHS = 2
FINETUNE_EPOCHS = 10
FINETUNE_TRAIN = 64

#: PR 5 acceptance gate: float32 + batched augmentations + n_workers=2 must
#: be >= 2x the PR 4 float32 path (per-sample augmentations, sequential).
#: Gradient workers split *compute* across cores, so the gate only arms when
#: the machine actually has a core per worker — on a single-core container
#: two processes time-share one core and the parallel arm is recorded
#: without gating (the sequential batched-augmentation arm must still not
#: regress).  Shared CI runners get the same relaxation as the PR 4 gates.
PARALLEL_WORKERS = 2

#: PR 8 pipelined arm: producer processes render + augment ahead of the
#: sequential gradient step through the shared-memory ring
PIPELINE_PRODUCERS = 2
PIPELINE_PREFETCH = 4


def _usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware, unlike
    ``os.cpu_count()``, which reports the host's cores even inside a
    CPU-limited container)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


HAS_CORES = _usable_cores() >= PARALLEL_WORKERS
PARALLEL_GATE = (1.5 if os.environ.get("CI") else 2.0) if HAS_CORES else None

#: PR 8 acceptance gate: pipelined (producers + 1 consumer) must be >= 1.3x
#: the PR 5 batched sequential arm — but only when the machine has a usable
#: core for every process in the pipeline; containers with fewer cores
#: time-share and record the arm ungated.
HAS_PIPELINE_CORES = _usable_cores() >= PIPELINE_PRODUCERS + 1
PIPELINE_GATE = (1.15 if os.environ.get("CI") else 1.3) if HAS_PIPELINE_CORES else None

#: PR 10 acceptance gate: the allocation-free default path (step arena +
#: fused autograd nodes + per-tap im2col/col2im) must be >= 1.2x the PR 8
#: batched sequential arm, reproduced within-run by the reference arm of
#: :func:`test_pretrain_arena_throughput` (step arena off, fused graphs
#: decomposed, PR 8 conv scratch arithmetic).  The win is single-core NumPy
#: kernel + allocator work — no extra processes — so unlike the parallel
#: gates above this one arms unconditionally; shared CI runners get the
#: usual relaxation.
ARENA_GATE = 1.1 if os.environ.get("CI") else 1.2
#: interleaved timing repetitions per arm (best-of, robust to load spikes)
ARENA_REPS = 3


def append_bench_record(record: dict) -> None:
    """Append one measurement record to ``BENCH_training.json``."""
    _append(BENCH_PATH, record)


def _run_pretrain_benchmark(
    benchmark_name: str, *, warmup: bool = False, **config_overrides
) -> float:
    """Fit a fresh pre-trainer on the shared pool and append one record.

    ``warmup`` runs one untimed single-epoch fit first — required for the
    parallel arms (worker spawn + module import is a one-off cost the
    persistent pool amortises away) and applied to every arm being compared
    against them so all sides are measured at steady state.  Returns the
    measured samples/s.
    """
    config = AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=1,
        panel_size=24,
        series_length=POOL_SHAPE[2],
        n_variables=POOL_SHAPE[1],
        batch_size=16,
        epochs=PRETRAIN_EPOCHS,
        seed=3407,
        **config_overrides,
    )
    pool = np.random.default_rng(3407).normal(size=POOL_SHAPE)
    pretrainer = AimTSPretrainer(config)
    warmup_seconds = 0.0
    if warmup:
        start = time.perf_counter()
        pretrainer.fit(pool, epochs=1)
        warmup_seconds = time.perf_counter() - start

    epochs_before = len(pretrainer.history.total_loss)
    start = time.perf_counter()
    history = pretrainer.fit(pool, epochs=PRETRAIN_EPOCHS)
    fit_seconds = time.perf_counter() - start
    pretrainer.shutdown_workers()

    # the timed fit must have trained exactly the epochs the samples/s
    # denominator assumes (the warmup fit shares the history, hence the delta)
    epochs_run = len(history.total_loss) - epochs_before
    assert epochs_run == PRETRAIN_EPOCHS
    assert all(np.isfinite(v) for v in history.total_loss)
    samples_per_sec = POOL_SHAPE[0] * epochs_run / fit_seconds

    record = {
        "benchmark": benchmark_name,
        "pool_shape": list(POOL_SHAPE),
        "compute_dtype": config.compute_dtype,
        "n_workers": config.n_workers,
        "n_producers": config.n_producers,
        "prefetch_depth": config.prefetch_depth,
        "augment_batched": config.augment_batched,
        "epochs": epochs_run,
        "fit_seconds": fit_seconds,
        "epoch_wallclock_seconds": fit_seconds / epochs_run,
        "samples_per_sec": samples_per_sec,
        "final_loss": history.total_loss[-1],
        **_machine(),
    }
    if warmup:
        record["warmup_seconds"] = warmup_seconds
    extra = ""
    if config.n_producers >= 1:
        # producer occupancy + consumer stall time of the timed fit only
        # (pipeline_stats live on the fit's trainer, reset per fit)
        summary = pretrainer.trainer.pipeline_summary()
        record["producer_occupancy"] = summary["producer_occupancy"]
        record["consumer_stall_seconds"] = summary["consumer_stall_seconds"]
        record["produce_seconds"] = summary["produce_seconds"]
        record["oversize_arrays"] = summary["oversize_arrays"]
        extra = (
            f", occupancy {summary['producer_occupancy']:.2f}, "
            f"stall {summary['consumer_stall_seconds']:.2f}s"
        )
    append_bench_record(record)
    print(
        f"\n[perf] {benchmark_name} {POOL_SHAPE} x{epochs_run} epochs "
        f"({config.compute_dtype}, workers={config.n_workers}, "
        f"producers={config.n_producers}): "
        f"{fit_seconds:.2f}s total, {fit_seconds / epochs_run:.2f}s/epoch, "
        f"{samples_per_sec:.1f} samples/s{extra}"
    )
    return samples_per_sec


def test_pretrain_epoch_throughput():
    """2-epoch engine-driven pre-train: record epoch wall-clock + samples/s."""
    _run_pretrain_benchmark("engine_pretrain")


def test_pretrain_epoch_throughput_float32():
    """The same pre-train with the float32 compute core (PR 4 fast path)."""
    _run_pretrain_benchmark(
        "engine_pretrain_float32", compute_dtype="float32", image_dtype="float32"
    )


def test_pretrain_parallel_throughput():
    """PR 5 + PR 8: batched kernels, sharded workers, pipelined producers.

    Four arms, all float32 and warmed up to steady state: the PR 4 path
    (per-sample augmentations, sequential), the batched-augmentation
    sequential path, batched augmentations with ``n_workers=2`` (PR 5), and
    the pipelined path (``n_producers=2`` rendering + augmenting ahead of the
    sequential gradient step, PR 8).  The batched sequential arm must never
    regress; the sharded arm is gated at ``PARALLEL_GATE`` x the PR 4 arm and
    the pipelined arm at ``PIPELINE_GATE`` x the batched arm — each gate arms
    only when the machine has a usable core per process (see the constants
    above), and the arm is recorded ungated otherwise.
    """
    pr4_style = _run_pretrain_benchmark(
        "pretrain_f32_per_sample_aug",
        warmup=True,
        compute_dtype="float32",
        image_dtype="float32",
        augment_batched=False,
    )
    batched = _run_pretrain_benchmark(
        "pretrain_f32_batched_aug",
        warmup=True,
        compute_dtype="float32",
        image_dtype="float32",
    )
    parallel = _run_pretrain_benchmark(
        "pretrain_f32_batched_aug_2workers",
        warmup=True,
        compute_dtype="float32",
        image_dtype="float32",
        n_workers=PARALLEL_WORKERS,
    )
    pipelined = _run_pretrain_benchmark(
        "pretrain_f32_pipelined_2producers",
        warmup=True,
        compute_dtype="float32",
        image_dtype="float32",
        n_producers=PIPELINE_PRODUCERS,
        prefetch_depth=PIPELINE_PREFETCH,
    )
    print(
        f"[perf] PR5/PR8 trajectory: per-sample {pr4_style:.0f} -> batched "
        f"{batched:.0f} -> {PARALLEL_WORKERS} workers {parallel:.0f} -> "
        f"{PIPELINE_PRODUCERS} producers {pipelined:.0f} samples/s "
        f"(usable cores: {_usable_cores()}, gates: {PARALLEL_GATE}/{PIPELINE_GATE})"
    )
    assert batched >= 0.95 * pr4_style, (
        f"batched augmentations regressed the sequential path: "
        f"{batched:.0f} vs {pr4_style:.0f} samples/s"
    )
    if PARALLEL_GATE is not None:
        assert parallel >= PARALLEL_GATE * pr4_style, (
            f"n_workers={PARALLEL_WORKERS} reached only "
            f"{parallel / pr4_style:.2f}x the PR 4 float32 baseline "
            f"({parallel:.0f} vs {pr4_style:.0f} samples/s)"
        )
    if PIPELINE_GATE is not None:
        assert pipelined >= PIPELINE_GATE * batched, (
            f"n_producers={PIPELINE_PRODUCERS} reached only "
            f"{pipelined / batched:.2f}x the PR 5 batched sequential arm "
            f"({pipelined:.0f} vs {batched:.0f} samples/s)"
        )


@contextlib.contextmanager
def _pr8_kernels():
    """Temporarily restore PR 8's conv scratch arithmetic in ``repro.nn.functional``.

    The reference arm of the PR 10 gate must reproduce what the code shipped
    before this PR: ``_col2im_*`` promoted float32 columns to float64 for the
    bincount scatter and cast the result back, and ``_im2col_1d`` gathered
    through a strided ``sliding_window_view`` transpose.  Both are patched at
    module level for the duration of the reference arm's fits (the internal
    call sites resolve the module globals at call time).
    """
    import repro.nn.functional as F

    col2im_1d, col2im_2d, im2col_1d = F._col2im_1d, F._col2im_2d, F._im2col_1d

    def legacy_col2im_1d(cols, x_shape, kernel, stride, dilation):
        return col2im_1d(
            cols.astype(np.float64), x_shape, kernel, stride, dilation
        ).astype(cols.dtype)

    def legacy_col2im_2d(cols, x_shape, kernel, stride):
        return col2im_2d(cols.astype(np.float64), x_shape, kernel, stride).astype(
            cols.dtype
        )

    def legacy_im2col_1d(x, kernel, stride, dilation, out=None):
        batch, channels, length = x.shape
        span = (kernel - 1) * dilation + 1
        out_t = (length - span) // stride + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, span, axis=2)[
            :, :, ::stride, ::dilation
        ]
        if out is not None:
            np.copyto(
                out.reshape(batch, out_t, channels, kernel),
                windows.transpose(0, 2, 1, 3),
            )
            return out
        return np.ascontiguousarray(
            windows.transpose(0, 2, 1, 3).reshape(batch, out_t, channels * kernel)
        )

    F._col2im_1d = legacy_col2im_1d
    F._col2im_2d = legacy_col2im_2d
    F._im2col_1d = legacy_im2col_1d
    try:
        yield
    finally:
        F._col2im_1d = col2im_1d
        F._col2im_2d = col2im_2d
        F._im2col_1d = im2col_1d


def test_pretrain_arena_throughput():
    """PR 10: the pooled-arena fused path vs a faithful PR 8-style reference.

    Two float32 arms on the shared pool, warmed to steady state and timed
    interleaved (best of ``ARENA_REPS`` two-epoch fits each): the default
    path — step arena on, fused conv+relu / add+relu / BN graphs, per-tap
    conv scratch kernels, phase profiler on — against a within-run
    reproduction of the PR 8 batched arm (``step_arena=False``, every
    ``fused`` knob off, PR 8 im2col/col2im arithmetic via
    :func:`_pr8_kernels`).  The default arm is gated at ``ARENA_GATE`` x the
    reference and its record carries the ``profile_<phase>_seconds`` and
    ``arena_*`` counters of the final timed fit.
    """
    pool = np.random.default_rng(3407).normal(size=POOL_SHAPE)

    def build(step_arena: bool, fused: bool, profile: bool = False):
        config = AimTSConfig(
            repr_dim=16,
            proj_dim=8,
            hidden_channels=8,
            depth=1,
            panel_size=24,
            series_length=POOL_SHAPE[2],
            n_variables=POOL_SHAPE[1],
            batch_size=16,
            epochs=PRETRAIN_EPOCHS,
            seed=3407,
            compute_dtype="float32",
            image_dtype="float32",
            step_arena=step_arena,
        )
        pretrainer = AimTSPretrainer(config)
        pretrainer.profile = profile
        if not fused:
            for encoder in (pretrainer.ts_encoder, pretrainer.image_encoder):
                for module in encoder.modules():
                    if hasattr(module, "fused"):
                        module.fused = False
        return pretrainer

    reference = build(step_arena=False, fused=False)
    pooled = build(step_arena=True, fused=True, profile=True)
    with _pr8_kernels():
        reference.fit(pool, epochs=1)  # warmup: render cache + first-touch costs
    pooled.fit(pool, epochs=1)

    def timed(pretrainer, shim: bool) -> float:
        before = len(pretrainer.history.total_loss)
        patch = _pr8_kernels() if shim else contextlib.nullcontext()
        with patch:
            start = time.perf_counter()
            history = pretrainer.fit(pool, epochs=PRETRAIN_EPOCHS)
            fit_seconds = time.perf_counter() - start
        assert len(history.total_loss) - before == PRETRAIN_EPOCHS
        return POOL_SHAPE[0] * PRETRAIN_EPOCHS / fit_seconds

    ref_best = pooled_best = 0.0
    for _ in range(ARENA_REPS):
        ref_best = max(ref_best, timed(reference, shim=True))
        pooled_best = max(pooled_best, timed(pooled, shim=False))

    # profile/arena counters of the final timed fit (the trainer is rebuilt
    # per fit, so these reflect exactly one two-epoch steady-state run)
    profile = {
        key: value
        for key, value in pooled.trainer.pipeline_summary().items()
        if key.startswith("profile_")
    }
    arena = {f"arena_{k}": v for k, v in pooled.trainer.arena_stats().items()}
    shared = {
        "pool_shape": list(POOL_SHAPE),
        "compute_dtype": "float32",
        "epochs": PRETRAIN_EPOCHS,
        "reps": ARENA_REPS,
        **_machine(),
    }
    append_bench_record(
        {
            "benchmark": "pretrain_f32_pr8_reference",
            "samples_per_sec": ref_best,
            **shared,
        }
    )
    append_bench_record(
        {
            "benchmark": "pretrain_f32_arena_fused",
            "samples_per_sec": pooled_best,
            **profile,
            **arena,
            **shared,
        }
    )
    phases = ", ".join(f"{k[8:-8]} {v:.2f}s" for k, v in sorted(profile.items()))
    print(
        f"\n[perf] PR10 arena gate: pr8-style {ref_best:.0f} -> arena+fused "
        f"{pooled_best:.0f} samples/s ({pooled_best / ref_best:.2f}x, "
        f"gate {ARENA_GATE}x) | arena misses {arena.get('arena_misses')}, "
        f"peak {arena.get('arena_peak_bytes', 0) / 1e6:.1f}MB | {phases}"
    )
    assert pooled_best >= ARENA_GATE * ref_best, (
        f"arena+fused path reached only {pooled_best / ref_best:.2f}x the "
        f"PR 8-style reference ({pooled_best:.0f} vs {ref_best:.0f} samples/s)"
    )


def test_finetune_epoch_throughput():
    """Engine-driven fine-tune: record epoch wall-clock + samples/s."""
    dataset = make_dataset(
        "perf_ecg",
        "ecg",
        n_classes=2,
        n_train=FINETUNE_TRAIN,
        n_test=16,
        length=96,
        n_variables=1,
        seed=3407,
    )
    encoder = TSEncoder(
        hidden_channels=8, repr_dim=16, depth=1, channel_independent=True, rng=3407
    )
    finetuner = FineTuner(
        encoder,
        dataset.n_classes,
        FineTuneConfig(epochs=FINETUNE_EPOCHS, batch_size=8, seed=3407),
    )

    start = time.perf_counter()
    curve = finetuner.fit(dataset.train)
    fit_seconds = time.perf_counter() - start

    epochs_run = len(curve)
    assert epochs_run == FINETUNE_EPOCHS
    assert all(np.isfinite(v) for v in curve)
    samples_per_sec = FINETUNE_TRAIN * epochs_run / fit_seconds

    record = {
        "benchmark": "engine_finetune",
        "n_train": FINETUNE_TRAIN,
        "series_length": 96,
        "epochs": epochs_run,
        "fit_seconds": fit_seconds,
        "epoch_wallclock_seconds": fit_seconds / epochs_run,
        "samples_per_sec": samples_per_sec,
        "final_loss": curve[-1],
        **_machine(),
    }
    append_bench_record(record)
    print(
        f"\n[perf] engine finetune ({FINETUNE_TRAIN} samples x{epochs_run} epochs): "
        f"{fit_seconds:.2f}s total, {fit_seconds / epochs_run:.3f}s/epoch, "
        f"{samples_per_sec:.1f} samples/s"
    )
