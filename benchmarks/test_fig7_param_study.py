"""Fig. 7(a)(b) — sensitivity to the loss weights alpha, beta and the mixup gamma.

The paper sweeps alpha (intra/inter prototype weight), beta (naive/mixup
series-image weight) and gamma (Beta-distribution parameter of the mixup
coefficient) and evaluates on the three AllGestureWiimote datasets.

Shape to reproduce: AimTS is *insensitive* to all three hyper-parameters — the
accuracy band across each sweep stays narrow and every setting stays well above
chance.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import make_aimts_config, make_finetune_config, pretrain_aimts, print_table, run_once
from repro.data import load_dataset
from repro.evaluation import run_protocol

SWEEP_DATASETS = ("AllGestureWiimoteX", "AllGestureWiimoteY", "AllGestureWiimoteZ")
ALPHA_VALUES = (0.9, 0.8, 0.7, 0.6)
BETA_VALUES = (0.9, 0.8, 0.7, 0.6)
GAMMA_VALUES = (0.1, 0.3, 0.5, 0.7)


def _evaluate(model, finetune):
    datasets = [load_dataset(name, seed=3407) for name in SWEEP_DATASETS]
    comparison = run_protocol(model, datasets, protocol="multi_source", finetune_config=finetune)
    return float(np.mean(list(comparison.accuracies[model.name].values())))


def _sweep(parameter: str, values, finetune):
    """Pre-train once per parameter value (reduced corpus for speed) and evaluate."""
    results = {}
    for value in values:
        config = make_aimts_config(epochs=1, **{parameter: value})
        model = pretrain_aimts(config, max_samples=96)
        results[value] = _evaluate(model, finetune)
    return results


@pytest.mark.benchmark(group="fig7_params")
def test_fig7a_alpha_and_beta_sensitivity(benchmark):
    finetune = make_finetune_config()

    def experiment():
        return {
            "alpha": _sweep("alpha", ALPHA_VALUES, finetune),
            "beta": _sweep("beta", BETA_VALUES, finetune),
        }

    sweeps = run_once(benchmark, experiment)

    for parameter, values in (("alpha", ALPHA_VALUES), ("beta", BETA_VALUES)):
        rows = [[value, sweeps[parameter][value]] for value in values]
        print_table(f"Fig. 7(a): accuracy vs {parameter}", [parameter, "Avg. ACC"], rows)
        accuracies = list(sweeps[parameter].values())
        assert max(accuracies) - min(accuracies) < 0.2, f"AimTS should be insensitive to {parameter}"
        assert min(accuracies) > 0.3  # well above chance for 4-class gesture data


@pytest.mark.benchmark(group="fig7_params")
def test_fig7b_gamma_sensitivity(benchmark):
    finetune = make_finetune_config()

    def experiment():
        return _sweep("gamma", GAMMA_VALUES, finetune)

    sweep = run_once(benchmark, experiment)
    print_table("Fig. 7(b): accuracy vs gamma", ["gamma", "Avg. ACC"], [[v, sweep[v]] for v in GAMMA_VALUES])

    accuracies = list(sweep.values())
    assert max(accuracies) - min(accuracies) < 0.2, "the geodesic mixup should be insensitive to gamma"
    assert min(accuracies) > 0.3
