"""Performance benchmarks for the serving front door (perf + serving markers).

Not part of any paper table — this module tracks the ISSUE 6 serving
trajectory: open-loop concurrent single-sample traffic through the
micro-batching :class:`repro.serving.ModelServer` versus serial one-at-a-time
fused ``predict`` on the same model.  Every run appends sustained requests/s
and p50/p99 open-loop latency to ``BENCH_serving.json`` at the repo root.

The >= 3x throughput gate arms only when the runner has at least two usable
cores (``os.sched_getaffinity``): with one core the worker threads cannot
overlap BLAS work with batching, so the numbers are recorded for the
trajectory but not gated.  Excluded from tier-1 by the ``perf`` marker; run
with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serving.py -m perf -s
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import append_bench_record as _append
from benchmarks.conftest import machine_info
from repro.api import load_estimator, make_estimator
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.data.archives import make_dataset
from repro.serving import ModelServer, run_open_loop, serial_baseline

pytestmark = [pytest.mark.perf, pytest.mark.serving]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: single-sample request shape (variables, length)
SAMPLE_SHAPE = (3, 96)

#: open-loop offered load and duration per measured run
OFFERED_RPS = 200.0
DURATION_S = 2.0

#: acceptance gate: micro-batched serving vs serial one-at-a-time fused
#: predict.  Armed only with >= 2 usable cores — on one core the workers
#: can't overlap, so the run records the trajectory without gating.
SPEEDUP_GATE = 3.0


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def append_bench_record(record: dict) -> None:
    """Append one measurement record to ``BENCH_serving.json``."""
    _append(BENCH_PATH, record)


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    """A fine-tuned benchmark-scale AimTS bundle on the serving shape."""
    from repro.utils.seeding import seed_everything

    seed_everything(3407)
    config = AimTSConfig(
        repr_dim=32,
        proj_dim=16,
        hidden_channels=16,
        depth=2,
        panel_size=24,
        series_length=SAMPLE_SHAPE[1],
        n_variables=SAMPLE_SHAPE[0],
        batch_size=16,
        epochs=1,
        seed=3407,
    )
    dataset = make_dataset(
        "serving_bench",
        "motion",
        n_classes=3,
        n_train=32,
        n_test=16,
        length=SAMPLE_SHAPE[1],
        n_variables=SAMPLE_SHAPE[0],
        seed=5,
    )
    model = make_estimator("aimts", config=config)
    model.pretrain(np.random.default_rng(0).normal(size=(32, *SAMPLE_SHAPE)))
    model.fine_tune(dataset, FineTuneConfig(epochs=1, batch_size=16, seed=3407))
    return model.save(tmp_path_factory.mktemp("serving_bench") / "model.npz")


@pytest.fixture(scope="module")
def request_samples():
    return list(np.random.default_rng(13).normal(size=(64, *SAMPLE_SHAPE)))


class TestServingThroughput:
    def test_microbatched_serving_vs_serial_predict(self, bundle_path, request_samples):
        cores = usable_cores()
        estimator = load_estimator(bundle_path, eval_mode=True)
        serial_rps = serial_baseline(
            lambda sample: estimator.predict(sample[None]), request_samples, duration_s=1.0
        )

        with ModelServer.from_bundle(
            bundle_path, max_batch=64, max_wait_ms=5.0, n_workers=min(4, max(2, cores))
        ) as server:
            # warmup: populate workspaces + slabs before the measured window
            run_open_loop(
                server, request_samples, rate_rps=50.0, duration_s=0.5, op="predict"
            )
            report = run_open_loop(
                server,
                request_samples,
                rate_rps=OFFERED_RPS,
                duration_s=DURATION_S,
                op="predict",
            )
            stats = server.stats()

        speedup = report.achieved_rps / max(serial_rps, 1e-9)
        record = {
            "benchmark": "serving_open_loop_predict",
            "usable_cores": cores,
            "n_workers": server.n_workers,
            "max_batch": server.max_batch,
            "max_wait_ms": server.max_wait_ms,
            "serial_requests_per_sec": serial_rps,
            "mean_batch_size": stats["mean_batch_size"],
            "serving_speedup": speedup,
            **report.as_record(),
            **machine_info(),
        }
        append_bench_record(record)
        print(
            f"\nserving: {report.achieved_rps:,.1f} req/s sustained "
            f"(serial {serial_rps:,.1f} req/s, {speedup:.2f}x), "
            f"p50 {report.latency.p50_ms:.2f} ms, p99 {report.latency.p99_ms:.2f} ms, "
            f"mean batch {stats['mean_batch_size']:.1f}, cores {cores}"
        )

        assert report.n_errors == 0
        assert report.n_completed == report.n_requests
        if cores >= 2:
            assert speedup >= SPEEDUP_GATE, (
                f"micro-batched serving {report.achieved_rps:,.1f} req/s is only "
                f"{speedup:.2f}x the serial baseline {serial_rps:,.1f} req/s "
                f"(gate {SPEEDUP_GATE}x, cores={cores})"
            )

    def test_latency_percentiles_recorded_for_proba(self, bundle_path, request_samples):
        """p50/p99 for the probability op, always recorded (never gated)."""
        with ModelServer.from_bundle(
            bundle_path, max_batch=64, max_wait_ms=5.0, n_workers=min(4, usable_cores())
        ) as server:
            report = run_open_loop(
                server,
                request_samples,
                rate_rps=OFFERED_RPS / 2,
                duration_s=DURATION_S / 2,
                op="predict_proba",
            )
        record = {
            "benchmark": "serving_open_loop_predict_proba",
            "usable_cores": usable_cores(),
            **report.as_record(),
            **machine_info(),
        }
        append_bench_record(record)
        print(
            f"\nproba: {report.achieved_rps:,.1f} req/s, "
            f"p50 {report.latency.p50_ms:.2f} ms, p99 {report.latency.p99_ms:.2f} ms"
        )
        assert report.n_errors == 0
        assert report.latency.p99_ms > 0.0

    def test_overload_shedding_goodput_recorded(self, bundle_path, request_samples):
        """2x-overload run against a bounded queue: goodput + shed recorded.

        A tight ``max_pending`` admission bound under twice the sustainable
        offered rate must shed (fast-fail) rather than queue without bound;
        the retry policy in the load generator converts part of the shed
        into delayed goodput.  Recorded for the trajectory, gated only on
        sanity (all requests accounted for, no hard errors).
        """
        with ModelServer.from_bundle(
            bundle_path,
            max_batch=32,
            max_wait_ms=2.0,
            n_workers=min(2, usable_cores()),
            max_pending=64,
        ) as server:
            run_open_loop(  # warmup
                server, request_samples, rate_rps=50.0, duration_s=0.5, op="predict"
            )
            report = run_open_loop(
                server,
                request_samples,
                rate_rps=OFFERED_RPS * 2,
                duration_s=DURATION_S,
                op="predict",
                max_retries=2,
                retry_backoff_s=0.002,
            )
            stats = server.stats()
        record = {
            "benchmark": "serving_overload_shedding",
            "usable_cores": usable_cores(),
            "max_pending": server.max_pending,
            "server_shed_requests": stats.get("shed_requests", 0),
            **report.as_record(),
            **machine_info(),
        }
        append_bench_record(record)
        print(
            f"\noverload: goodput {report.goodput_rps:,.1f} req/s of "
            f"{report.offered_rps:,.1f} offered, shed {report.n_shed}, "
            f"retries {report.n_retries}, p99 {report.latency.p99_ms:.2f} ms"
        )
        assert report.n_errors == 0
        assert report.n_completed + report.n_shed == report.n_requests
        assert report.goodput_rps > 0.0
