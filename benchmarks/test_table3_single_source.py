"""Table III — comparison with the single-source generalization paradigm.

Paper setup: baselines are pre-trained on ONE source dataset (SleepEEG) and
fine-tuned on four downstream datasets from other domains (Epilepsy, FD-B,
Gesture, EMG); AimTS is pre-trained on the multi-source corpus.  Shape to
reproduce: the single-source baselines transfer poorly to the domains far from
their source, and AimTS achieves the best average accuracy.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_baseline_config, print_table, run_once
from repro.baselines import MomentLike, SimCLR, TS2Vec, TSTCC
from repro.data import load_dataset
from repro.data.archives import SINGLE_SOURCE_DATASETS
from repro.evaluation import ComparisonResult

#: single-source baselines and the paper methods they stand in for
SINGLE_SOURCE_BASELINES = {
    "TS2Vec": TS2Vec,       # TS2Vec / CoST / LaST family
    "TS-TCC": TSTCC,        # TS-TCC / TF-C family
    "SimCLR": SimCLR,       # SimCLR / Mixing-up family
    "SimMTM": MomentLike,   # masked-modeling family (SimMTM / Ti-MAE)
}


@pytest.mark.benchmark(group="table3")
def test_table3_single_source_generalization(benchmark, aimts_model, finetune_config):
    source = load_dataset("SleepEEG", seed=3407)
    targets = [load_dataset(name, seed=3407) for name in SINGLE_SOURCE_DATASETS]

    def experiment():
        accuracies = {"AimTS": {}}
        for dataset in targets:
            accuracies["AimTS"][dataset.name] = aimts_model.fine_tune(dataset, finetune_config).accuracy
        for name, cls in SINGLE_SOURCE_BASELINES.items():
            baseline = cls(make_baseline_config())
            baseline.pretrain(source.train.X, epochs=2)  # single-source pre-training
            accuracies[name] = {
                dataset.name: baseline.fine_tune(dataset, finetune_config).accuracy
                for dataset in targets
            }
        return ComparisonResult(accuracies)

    comparison = run_once(benchmark, experiment)

    methods = sorted(comparison.summary, key=lambda m: -comparison.summary[m]["avg_acc"])
    rows = [
        [dataset.name] + [comparison.accuracies[m][dataset.name] for m in methods]
        for dataset in targets
    ]
    rows.append(["Avg. ACC"] + [comparison.summary[m]["avg_acc"] for m in methods])
    print_table("Table III: single-source generalization paradigm", ["Dataset"] + methods, rows)

    summary = comparison.summary
    best_single_source = max(v["avg_acc"] for k, v in summary.items() if k != "AimTS")
    assert summary["AimTS"]["avg_acc"] >= best_single_source - 0.05, (
        "multi-source AimTS should beat (or match) single-source pre-trained baselines on average"
    )
