"""Table II — AimTS vs. supervised case-by-case methods on the 10 UEA datasets.

Paper shape to reproduce: on the TimesNet subset of 10 multivariate datasets,
AimTS reaches the best average accuracy and the best average rank against
supervised deep models (represented here by a dilated-CNN classifier), linear
models and the Rocket family.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_finetune_config, print_table, run_once
from repro.baselines import LinearClassifier, MiniRocket, Rocket, SupervisedCNN
from repro.data import load_dataset
from repro.data.archives import UEA10_TABLE2
from repro.evaluation import run_case_by_case_comparison


def _build_supervised_baselines():
    return {
        "SupervisedCNN": SupervisedCNN(
            epochs=35, learning_rate=3e-3, hidden_channels=12, repr_dim=24, seed=3407
        ),
        "DLinear": LinearClassifier(),
        "Rocket": Rocket(n_kernels=150, seed=3407),
        "Minirocket": MiniRocket(n_kernels=150, seed=3407),
    }


@pytest.mark.benchmark(group="table2")
def test_table2_supervised_comparison(benchmark, aimts_model):
    """Per-dataset accuracies plus the Avg. ACC / Avg. Rank / Top-1 summary."""
    datasets = [load_dataset(name, seed=3407) for name in UEA10_TABLE2]
    # the multivariate datasets have up to 8 classes and only ~30 training
    # samples, so the deep models need a few more fine-tuning epochs than the
    # shared default before the comparison stabilises
    finetune_config = make_finetune_config(epochs=35)

    def experiment():
        return run_case_by_case_comparison(
            aimts_model, _build_supervised_baselines(), datasets, finetune_config=finetune_config
        )

    comparison = run_once(benchmark, experiment)

    methods = sorted(comparison.summary, key=lambda m: comparison.summary[m]["avg_rank"])
    rows = []
    for dataset in datasets:
        rows.append([dataset.name] + [comparison.accuracies[m][dataset.name] for m in methods])
    rows.append(["Avg. ACC"] + [comparison.summary[m]["avg_acc"] for m in methods])
    rows.append(["Avg. Rank"] + [comparison.summary[m]["avg_rank"] for m in methods])
    rows.append(["Num. Top-1"] + [int(comparison.summary[m]["num_top1"]) for m in methods])
    print_table("Table II (10 UEA-style datasets): supervised comparison", ["Dataset"] + methods, rows)

    summary = comparison.summary
    best_other = max(v["avg_acc"] for k, v in summary.items() if k != "AimTS")
    assert summary["AimTS"]["avg_acc"] >= best_other - 0.08, (
        "AimTS should be competitive with the best supervised baseline on average"
    )
    assert summary["AimTS"]["avg_acc"] >= 0.5
