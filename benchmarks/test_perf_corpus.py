"""Performance benchmarks for the out-of-core corpus store (perf + corpus markers).

Not part of any paper table — this module tracks the scaling arm the
``repro.data.corpus`` subsystem exists for: pre-training over corpora that
are generated, stored and streamed from disk instead of materialised in RAM.
It measures

* corpus build: streaming ``build_synthetic_corpus`` samples/s to disk plus
  a full ``verify()`` checksum pass,
* streamed-vs-in-RAM parity: the same moderate pre-train once from an in-RAM
  pool and once from a multi-shard on-disk corpus — the streamed path must
  stay within ``STREAM_TOLERANCE`` of the in-RAM throughput,
* the 10^5-sample arm: a two-epoch pre-train over a corpus whose rendered
  image set does **not** fit the configured cache budget, recording
  samples/s, peak RSS (sampled from ``/proc/self/status``) and the render
  cache's spill-tier counters, and asserting the peak RSS stays far below
  what materialising the images would need,

and appends every run to ``BENCH_corpus.json`` at the repo root so successive
PRs can compare numbers on the same machine.

Excluded from tier-1 by the ``perf`` marker (see ``pytest.ini``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_corpus.py -m perf -s
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import append_bench_record as _append
from benchmarks.conftest import machine_info as _machine
from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.data.corpus import build_synthetic_corpus

pytestmark = [pytest.mark.perf, pytest.mark.corpus]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus.json"

#: the big arm — 10^5 samples, the ROADMAP's first scaling decade
BIG_SAMPLES = 100_000
BIG_EPOCHS = 2
#: the equal-footing parity arm (small enough to double-run comfortably)
PARITY_SAMPLES = 4_096
PARITY_EPOCHS = 2
#: RAM-tier budget of the big arm's render cache — far below its image set
CACHE_BUDGET = 64 * 1024 * 1024

#: streamed throughput must stay within this fraction of the in-RAM path;
#: shared CI runners get the same relaxation as the other perf gates
STREAM_TOLERANCE = 0.5 if os.environ.get("CI") else 0.6


def append_bench_record(record: dict) -> None:
    """Append one measurement record to ``BENCH_corpus.json``."""
    _append(BENCH_PATH, record)


def _vm_rss_bytes() -> int | None:
    """Current resident set size from ``/proc/self/status`` (None off-Linux)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


class RssSampler:
    """Background peak-RSS sampler.

    ``resource.getrusage`` reports the process-lifetime high-water mark,
    which earlier tests in the same process contaminate; sampling
    ``/proc/self/status`` instead measures the peak *during* the monitored
    region only.
    """

    def __init__(self, interval: float = 0.02):
        self.interval = interval
        self.peak = _vm_rss_bytes()
        self.available = self.peak is not None
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            rss = _vm_rss_bytes()
            if rss is not None and rss > self.peak:
                self.peak = rss
            self._stop.wait(self.interval)

    def __enter__(self) -> "RssSampler":
        self.baseline = _vm_rss_bytes()
        if self.available:
            self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        if self.available:
            self._stop.set()
            self._thread.join()

    @property
    def peak_mb(self) -> float | None:
        return None if not self.available else self.peak / 1e6

    @property
    def delta_mb(self) -> float | None:
        return None if not self.available else (self.peak - self.baseline) / 1e6


def _pretrain_config(**overrides) -> AimTSConfig:
    """The corpus-benchmark pre-train config (series-image objective only).

    The series-image loss is the arm that exercises the render cache and its
    spill tier; dropping the prototype loss keeps the 10^5-sample run in
    benchmark-friendly wall-clock without changing what is being measured.
    """
    base = dict(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=1,
        panel_size=24,
        series_length=96,
        n_variables=1,
        batch_size=64,
        seed=3407,
        compute_dtype="float32",
        image_dtype="float32",
        use_prototype_loss=False,
    )
    base.update(overrides)
    return AimTSConfig(**base)


def _fit_samples_per_sec(pretrainer, pool, n_samples: int, epochs: int) -> tuple[float, float]:
    start = time.perf_counter()
    history = pretrainer.fit(pool, epochs=epochs)
    seconds = time.perf_counter() - start
    assert len(history) == epochs
    assert all(np.isfinite(v) for v in history.total_loss)
    return n_samples * epochs / seconds, seconds


def test_corpus_build_and_verify_throughput(tmp_path):
    """Stream 10^5 synthetic samples to disk, then re-checksum every shard."""
    start = time.perf_counter()
    corpus = build_synthetic_corpus(
        tmp_path / "corpus",
        ["ecg", "motion", "device"],
        BIG_SAMPLES,
        length=96,
        shard_size=4096,
        seed=3407,
    )
    build_seconds = time.perf_counter() - start
    assert len(corpus) == BIG_SAMPLES

    start = time.perf_counter()
    assert corpus.verify() == []
    verify_seconds = time.perf_counter() - start

    record = {
        "benchmark": "corpus_build",
        "n_samples": BIG_SAMPLES,
        "n_shards": corpus.n_shards,
        "corpus_mb": corpus.nbytes / 1e6,
        "build_seconds": build_seconds,
        "build_samples_per_sec": BIG_SAMPLES / build_seconds,
        "verify_seconds": verify_seconds,
        "verify_samples_per_sec": BIG_SAMPLES / verify_seconds,
        **_machine(),
    }
    append_bench_record(record)
    print(
        f"\n[perf] corpus build {BIG_SAMPLES} samples -> {corpus.n_shards} shards "
        f"({corpus.nbytes / 1e6:.0f} MB): {build_seconds:.1f}s "
        f"({BIG_SAMPLES / build_seconds:.0f} samples/s), "
        f"verify {verify_seconds:.1f}s"
    )


def test_streamed_pretrain_matches_in_ram_throughput(tmp_path):
    """Equal-footing parity: streamed corpus vs materialised pool.

    Both arms run the identical pre-train over the same samples; the corpus
    arm streams memmap-backed batches from a multi-shard on-disk layout.  The
    gate asserts streaming costs at most ``1 - STREAM_TOLERANCE`` of the
    in-RAM throughput.
    """
    corpus = build_synthetic_corpus(
        tmp_path / "corpus",
        ["ecg", "motion", "device"],
        PARITY_SAMPLES,
        length=96,
        shard_size=512,
        seed=3407,
    )
    pool = corpus.materialize()

    in_ram_sps, in_ram_seconds = _fit_samples_per_sec(
        AimTSPretrainer(_pretrain_config()), pool, PARITY_SAMPLES, PARITY_EPOCHS
    )
    streamed_sps, streamed_seconds = _fit_samples_per_sec(
        AimTSPretrainer(_pretrain_config()), corpus, PARITY_SAMPLES, PARITY_EPOCHS
    )

    record = {
        "benchmark": "corpus_stream_parity",
        "n_samples": PARITY_SAMPLES,
        "epochs": PARITY_EPOCHS,
        "n_shards": corpus.n_shards,
        "in_ram_seconds": in_ram_seconds,
        "in_ram_samples_per_sec": in_ram_sps,
        "streamed_seconds": streamed_seconds,
        "streamed_samples_per_sec": streamed_sps,
        "stream_speedup": streamed_sps / in_ram_sps,
        **_machine(),
    }
    append_bench_record(record)
    print(
        f"\n[perf] stream parity ({PARITY_SAMPLES} x{PARITY_EPOCHS} epochs): "
        f"in-RAM {in_ram_sps:.0f} samples/s, streamed {streamed_sps:.0f} samples/s "
        f"({streamed_sps / in_ram_sps:.2f}x, gate {STREAM_TOLERANCE})"
    )
    assert streamed_sps >= STREAM_TOLERANCE * in_ram_sps, (
        f"streamed pre-train reached only {streamed_sps / in_ram_sps:.2f}x the "
        f"in-RAM throughput ({streamed_sps:.0f} vs {in_ram_sps:.0f} samples/s)"
    )


def test_pretrain_100k_bounded_rss(tmp_path):
    """The tentpole arm: 10^5-sample pre-train with bounded memory.

    The rendered image set (~10^5 panel-24 float32 images) is an order of
    magnitude larger than the cache's RAM budget; evictions spill to disk and
    the second epoch is served from the RAM + disk tiers without a single
    re-render.  Peak RSS is sampled during fit and must stay far below what
    materialising the images in RAM would cost.
    """
    corpus = build_synthetic_corpus(
        tmp_path / "corpus",
        ["ecg", "motion", "device"],
        BIG_SAMPLES,
        length=96,
        shard_size=4096,
        seed=3407,
    )
    config = _pretrain_config(
        cache_max_bytes=CACHE_BUDGET,
        cache_spill_dir=str(tmp_path / "spill"),
    )
    pretrainer = AimTSPretrainer(config)
    image_set_mb = (
        BIG_SAMPLES * pretrainer.renderer.image_nbytes(config.n_variables) / 1e6
    )

    with RssSampler() as sampler:
        samples_per_sec, fit_seconds = _fit_samples_per_sec(
            pretrainer, corpus, BIG_SAMPLES, BIG_EPOCHS
        )
    stats = pretrainer.render_cache.stats()

    record = {
        "benchmark": "corpus_pretrain_100k",
        "n_samples": BIG_SAMPLES,
        "epochs": BIG_EPOCHS,
        "n_shards": corpus.n_shards,
        "corpus_mb": corpus.nbytes / 1e6,
        "image_set_mb": image_set_mb,
        "cache_budget_mb": CACHE_BUDGET / 1e6,
        "fit_seconds": fit_seconds,
        "samples_per_sec": samples_per_sec,
        "peak_rss_mb": sampler.peak_mb,
        "rss_delta_mb": sampler.delta_mb,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "rendered_samples": stats["rendered_samples"],
        "spill_entries": stats["spill_entries"],
        "spilled_bytes": stats["spilled_bytes"],
        "disk_hits": stats["disk_hits"],
        "readback_failures": stats["readback_failures"],
        **_machine(),
    }
    append_bench_record(record)
    print(
        f"\n[perf] corpus pretrain {BIG_SAMPLES} x{BIG_EPOCHS} epochs: "
        f"{fit_seconds:.1f}s ({samples_per_sec:.0f} samples/s), "
        f"peak RSS {sampler.peak_mb and round(sampler.peak_mb)} MB "
        f"(delta {sampler.delta_mb and round(sampler.delta_mb)} MB, "
        f"image set {image_set_mb:.0f} MB), "
        f"spilled {stats['spilled_bytes'] / 1e6:.0f} MB, "
        f"{stats['disk_hits']} disk hits, "
        f"{stats['readback_failures']} readback failures"
    )

    # render-once must survive the out-of-core path: both epochs together
    # rasterise each sample exactly once
    assert stats["rendered_samples"] == BIG_SAMPLES
    assert stats["disk_hits"] > 0
    assert stats["readback_failures"] == 0
    # bounded memory: the fit must not come close to materialising the image
    # set (the in-RAM alternative); half its size is a generous ceiling for
    # cache budget + batch buffers + memmap pages
    if sampler.available:
        assert sampler.delta_mb < 0.5 * image_set_mb, (
            f"RSS grew by {sampler.delta_mb:.0f} MB during the out-of-core fit "
            f"(image set: {image_set_mb:.0f} MB, cache budget: "
            f"{CACHE_BUDGET / 1e6:.0f} MB)"
        )
