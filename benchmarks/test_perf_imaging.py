"""Performance benchmarks for the vectorized imaging pipeline (perf marker).

Not part of any paper table — this module tracks the reproduction's own
performance trajectory.  It measures

* rasteriser throughput: the vectorized ``render_batch`` against the retained
  scalar ``reference=True`` path on the acceptance batch ``(64, 3, 96)``,
* the cross-epoch :class:`~repro.imaging.RenderCache` during a 2-epoch
  ``AimTSPretrainer.fit`` with the series-image loss on: hit rate, residual
  render time after the pre-compute pass, and cached vs. uncached epoch
  wall-clock,

and appends every run to ``BENCH_imaging.json`` at the repo root so
successive PRs can compare numbers on the same machine.

Excluded from tier-1 by the ``perf`` marker (see ``pytest.ini``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_imaging.py -m perf -s
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import append_bench_record as _append
from benchmarks.conftest import machine_info as _machine
from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.imaging import LineChartRenderer

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_imaging.json"

#: the acceptance-criterion batch shape
BATCH_SHAPE = (64, 3, 96)


def append_bench_record(record: dict) -> None:
    """Append one measurement record to ``BENCH_imaging.json``."""
    _append(BENCH_PATH, record)


def test_render_batch_vectorized_speedup():
    """Vectorized rasteriser must be ≥ 10× the seed (reference) renderer."""
    rng = np.random.default_rng(3407)
    X = rng.normal(size=BATCH_SHAPE)
    reference = LineChartRenderer(reference=True)
    vectorized = LineChartRenderer()

    start = time.perf_counter()
    reference_images = reference.render_batch(X)
    reference_seconds = time.perf_counter() - start

    vectorized.render_batch(X)  # warm-up
    vectorized_seconds = min(
        _timed(lambda: vectorized.render_batch(X)) for _ in range(3)
    )
    speedup = reference_seconds / vectorized_seconds

    # sanity: the fast path draws the same pixels it is being compared against
    np.testing.assert_allclose(
        vectorized.render_batch(X), reference_images, rtol=0, atol=1e-12
    )

    renderer32 = LineChartRenderer(dtype="float32")
    renderer32.render_batch(X)
    float32_seconds = min(_timed(lambda: renderer32.render_batch(X)) for _ in range(3))

    record = {
        "benchmark": "render_batch",
        "batch_shape": list(BATCH_SHAPE),
        "reference_seconds": reference_seconds,
        "vectorized_seconds": vectorized_seconds,
        "float32_seconds": float32_seconds,
        "reference_samples_per_sec": BATCH_SHAPE[0] / reference_seconds,
        "vectorized_samples_per_sec": BATCH_SHAPE[0] / vectorized_seconds,
        "speedup": speedup,
        **_machine(),
    }
    append_bench_record(record)
    print(
        f"\n[perf] render_batch{BATCH_SHAPE}: reference {reference_seconds:.3f}s "
        f"({record['reference_samples_per_sec']:.1f}/s) vs vectorized "
        f"{vectorized_seconds * 1e3:.1f}ms ({record['vectorized_samples_per_sec']:.1f}/s) "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 10.0, f"vectorized renderer only {speedup:.1f}x faster"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _fit_config(**overrides) -> AimTSConfig:
    base = dict(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=1,
        panel_size=24,
        series_length=96,
        n_variables=3,
        batch_size=16,
        epochs=2,
        seed=3407,
        use_prototype_loss=False,
        use_series_image_loss=True,
    )
    base.update(overrides)
    return AimTSConfig(**base)


def test_two_epoch_fit_cache_hit_rate():
    """A 2-epoch fit re-renders nothing: every lookup is a cache hit."""
    rng = np.random.default_rng(3407)
    pool = rng.normal(size=(128, 3, 96))

    # warm up numpy (allocator, ufunc dispatch) so neither fit pays cold-start
    LineChartRenderer(panel_size=24).render_batch(pool)

    cached = AimTSPretrainer(_fit_config(cache_images=True))
    cached_seconds = _timed(lambda: cached.fit(pool))
    stats = cached.render_cache.stats()

    uncached = AimTSPretrainer(_fit_config(cache_images=False))
    uncached_seconds = _timed(lambda: uncached.fit(pool))

    # render_seconds accumulates in precompute_pool and on get_batch misses;
    # with zero misses, all of it is the one-off precompute pass and the
    # per-epoch re-render time is exactly zero
    precompute_seconds = stats["render_seconds"]
    epoch_render_seconds = 0.0 if stats["misses"] == 0 else float("nan")

    record = {
        "benchmark": "pretrain_2epoch_cache",
        "pool_shape": list(pool.shape),
        "cache_hit_rate": stats["hit_rate"],
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "rendered_samples": stats["rendered_samples"],
        "precompute_seconds": precompute_seconds,
        "post_precompute_render_seconds": epoch_render_seconds,
        "epoch_wallclock_cached": cached_seconds / 2,
        "epoch_wallclock_uncached": uncached_seconds / 2,
        "fit_seconds_cached": cached_seconds,
        "fit_seconds_uncached": uncached_seconds,
        **_machine(),
    }
    append_bench_record(record)
    print(
        f"\n[perf] 2-epoch fit on {pool.shape}: cached {cached_seconds:.2f}s "
        f"vs uncached {uncached_seconds:.2f}s; hit rate {stats['hit_rate']:.3f}, "
        f"rendered {stats['rendered_samples']} samples once in "
        f"{precompute_seconds:.3f}s"
    )
    assert stats["hit_rate"] >= 0.99
    assert stats["misses"] == 0
    # every pool sample was rasterised exactly once, in the precompute pass
    assert stats["rendered_samples"] == pool.shape[0]
    # identical losses with and without the cache
    assert cached.history.series_image_loss == uncached.history.series_image_loss
