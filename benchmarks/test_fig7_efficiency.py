"""Fig. 7(c)(d) — memory usage and total fine-tuning + inference time.

The paper compares AimTS against 5 baselines on StarLightCurves with batch
size 8 and 10 epochs.  The CPU substrate reports the analogous quantities:
parameter + activation memory (MB) and wall-clock total time (seconds).

Shape to reproduce: AimTS sits at the efficient end of the comparison — it
needs no more memory and no more time than the heavier deep baselines while
keeping the best (or tied-best) accuracy.
"""

from __future__ import annotations

import copy
import time

import pytest

from benchmarks.conftest import make_baseline_config, make_finetune_config, print_table, run_once
from repro.baselines import MomentLike, SupervisedCNN, TS2Vec, UniTSLike
from repro.core.config import FineTuneConfig
from repro.evaluation import measure_finetune_efficiency
from repro.encoders import TSEncoder


def _fresh_encoder(scale: float = 1.0) -> TSEncoder:
    return TSEncoder(
        hidden_channels=max(4, int(12 * scale)), repr_dim=24, depth=2, channel_independent=True, rng=3407
    )


@pytest.mark.benchmark(group="fig7_efficiency")
def test_fig7cd_memory_and_time(benchmark, aimts_model, foundation_baselines, starlight_dataset):
    finetune = FineTuneConfig(epochs=10, batch_size=8, learning_rate=3e-3, seed=3407)

    def experiment():
        reports = {}
        # AimTS: fine-tune the pre-trained encoder
        reports["AimTS"] = measure_finetune_efficiency(
            copy.deepcopy(aimts_model.pretrainer.ts_encoder),
            starlight_dataset,
            method="AimTS",
            finetune_config=finetune,
        )
        # foundation models: fine-tune their pre-trained encoders
        for name, baseline in foundation_baselines.items():
            reports[name] = measure_finetune_efficiency(
                copy.deepcopy(baseline.encoder), starlight_dataset, method=name, finetune_config=finetune
            )
        # TimesNet-style supervised CNN trained from scratch (slightly larger trunk)
        reports["TimesNet"] = measure_finetune_efficiency(
            TSEncoder(hidden_channels=20, repr_dim=32, depth=3, rng=3407),
            starlight_dataset,
            method="TimesNet",
            finetune_config=finetune,
        )
        # SoftCLT / TS2Vec-style: case-by-case contrastive pre-training + fine-tuning,
        # so their total time includes the pre-training stage
        for name, cls in (("SoftCLT", TS2Vec), ("TS2Vec", TS2Vec)):
            baseline = cls(make_baseline_config())
            start = time.perf_counter()
            baseline.pretrain(starlight_dataset.train.X, epochs=2)
            pretrain_seconds = time.perf_counter() - start
            report = measure_finetune_efficiency(
                copy.deepcopy(baseline.encoder), starlight_dataset, method=name, finetune_config=finetune
            )
            report.total_seconds += pretrain_seconds
            reports[name] = report
        return reports

    reports = run_once(benchmark, experiment)

    rows = [
        [name, report.memory_megabytes, report.total_seconds, report.parameter_count, report.accuracy]
        for name, report in reports.items()
    ]
    print_table(
        "Fig. 7(c)(d): memory and total time on StarLightCurves-like data",
        ["Method", "Memory (MB)", "Total time (s)", "Parameters", "Accuracy"],
        rows,
    )

    aimts = reports["AimTS"]
    heavier = reports["TimesNet"]
    assert aimts.memory_megabytes <= heavier.memory_megabytes, "AimTS should need no more memory than the larger supervised model"
    assert aimts.total_seconds <= max(r.total_seconds for r in reports.values()) + 1e-9
    case_by_case_total = reports["TS2Vec"].total_seconds
    assert aimts.total_seconds <= case_by_case_total * 1.5, (
        "fine-tuning a pre-trained AimTS should not be much slower than case-by-case pre-train + fine-tune"
    )
