"""Table V — few-shot learning on 6 downstream datasets (5 % / 15 % / 20 % labels).

Paper shape to reproduce: AimTS achieves the highest average accuracy at every
label ratio, and its accuracy with 5 % of the labels approaches what the
foundation-model baselines need 15 % of the labels to reach.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.data import load_dataset
from repro.data.archives import FEWSHOT_DATASETS
from repro.evaluation import run_fewshot_comparison

RATIOS = (0.05, 0.15, 0.20)


@pytest.mark.benchmark(group="table5")
def test_table5_fewshot_learning(benchmark, aimts_model, foundation_baselines, finetune_config):
    datasets = [load_dataset(name, seed=3407, scale=1.0) for name in FEWSHOT_DATASETS]

    def experiment():
        return run_fewshot_comparison(
            aimts_model, foundation_baselines, datasets, ratios=RATIOS, finetune_config=finetune_config
        )

    results = run_once(benchmark, experiment)

    methods = ["AimTS", "MOMENT", "UniTS"]
    columns = ["Dataset"] + [f"{m} @{int(r*100)}%" for r in RATIOS for m in methods]
    rows = []
    for dataset in datasets:
        row = [dataset.name]
        for ratio in RATIOS:
            for method in methods:
                row.append(results[ratio].accuracies[method][dataset.name])
        rows.append(row)
    average_row = ["Avg. ACC"]
    for ratio in RATIOS:
        for method in methods:
            average_row.append(results[ratio].summary[method]["avg_acc"])
    rows.append(average_row)
    print_table("Table V: few-shot learning (data ratios 5/15/20 %)", columns, rows)

    # shape assertions: AimTS has the best average accuracy at every ratio,
    # and AimTS@5% is competitive with the baselines at 15 %.
    for ratio in RATIOS:
        summary = results[ratio].summary
        best_baseline = max(summary["MOMENT"]["avg_acc"], summary["UniTS"]["avg_acc"])
        assert summary["AimTS"]["avg_acc"] >= best_baseline - 0.05, f"AimTS not best at ratio {ratio}"
    aimts_at_5 = results[0.05].summary["AimTS"]["avg_acc"]
    baselines_at_15 = max(
        results[0.15].summary["MOMENT"]["avg_acc"], results[0.15].summary["UniTS"]["avg_acc"]
    )
    assert aimts_at_5 >= baselines_at_15 - 0.15

    # more labels should not hurt AimTS on average
    assert results[0.20].summary["AimTS"]["avg_acc"] >= results[0.05].summary["AimTS"]["avg_acc"] - 0.05
