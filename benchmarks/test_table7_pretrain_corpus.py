"""Table VII — effect of the multi-source corpus used for pre-training.

AimTS is pre-trained on three different corpora (Monash-like, UCR-like,
UEA-like) and evaluated on the UCR-style and UEA-style downstream suites.

Paper shape to reproduce: all three corpora give broadly similar downstream
accuracy (multi-source pre-training generalises regardless of the corpus), with
a mild advantage when the downstream datasets were seen during pre-training.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import make_finetune_config, pretrain_aimts, print_table, run_once
from repro.evaluation import run_protocol

CORPORA = ("monash", "ucr", "uea")


@pytest.mark.benchmark(group="table7")
def test_table7_pretraining_corpora(benchmark, ucr_suite, uea_suite):
    finetune = make_finetune_config()
    downstream = {"UCR-style suite": ucr_suite[:5], "UEA-style suite": uea_suite[:4]}

    def experiment():
        table = {}
        for corpus in CORPORA:
            model = pretrain_aimts(corpus_source=corpus, max_samples=120)
            table[corpus] = {
                suite_name: float(
                    np.mean(
                        list(
                            run_protocol(
                                model, suite, protocol="multi_source", finetune_config=finetune
                            ).accuracies[model.name].values()
                        )
                    )
                )
                for suite_name, suite in downstream.items()
            }
        return table

    table = run_once(benchmark, experiment)

    rows = [
        [suite_name] + [table[corpus][suite_name] for corpus in CORPORA]
        for suite_name in downstream
    ]
    print_table(
        "Table VII: AimTS pre-trained on different corpora (Avg. ACC)",
        ["Downstream \\ Pre-train"] + [c.capitalize() for c in CORPORA],
        rows,
    )

    # shape: every corpus produces a usable pre-trained model ...
    for corpus in CORPORA:
        for suite_name in downstream:
            assert table[corpus][suite_name] > 0.45
    # ... and the corpora are broadly interchangeable (within a modest band)
    for suite_name in downstream:
        values = [table[corpus][suite_name] for corpus in CORPORA]
        assert max(values) - min(values) < 0.25, "corpus choice should not change results drastically"
