"""Table I + Fig. 6 — AimTS vs. representation-learning baselines (case-by-case).

Paper shape to reproduce: AimTS, pre-trained once on the multi-source corpus,
achieves the best Avg. ACC and best (lowest) Avg. Rank on both the univariate
(UCR-style) and multivariate (UEA-style) suites, compared with contrastive
representation-learning baselines trained case-by-case on each dataset.
The CD diagram of Fig. 6 is rendered in text form.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_baseline_config, print_table, run_once
from repro.baselines import SimCLR, TLoss, TNC, TS2Vec, TSTCC
from repro.evaluation import render_cd_diagram, run_case_by_case_comparison

BASELINE_CLASSES = {
    "TS2Vec": TS2Vec,
    "TS-TCC": TSTCC,
    "T-Loss": TLoss,
    "TNC": TNC,
    "SimCLR": SimCLR,
}


def _build_baselines():
    return {name: cls(make_baseline_config()) for name, cls in BASELINE_CLASSES.items()}


def _report(title: str, comparison) -> None:
    rows = [
        [method, stats["avg_acc"], stats["avg_rank"], int(stats["num_top1"])]
        for method, stats in sorted(
            comparison.summary.items(), key=lambda item: item[1]["avg_rank"]
        )
    ]
    print_table(title, ["Method", "Avg. ACC", "Avg. Rank", "Num. Top-1"], rows)
    print(render_cd_diagram(comparison.accuracies))


@pytest.mark.benchmark(group="table1")
def test_table1_ucr_archive(benchmark, aimts_model, ucr_suite, finetune_config):
    """Table I (upper block): UCR-style univariate suite."""

    def experiment():
        return run_case_by_case_comparison(
            aimts_model,
            _build_baselines(),
            ucr_suite,
            finetune_config=finetune_config,
            baseline_pretrain_epochs=2,
        )

    comparison = run_once(benchmark, experiment)
    _report("Table I (UCR-style suite): representation learning methods", comparison)

    summary = comparison.summary
    best_baseline_acc = max(v["avg_acc"] for k, v in summary.items() if k != "AimTS")
    assert summary["AimTS"]["avg_acc"] >= best_baseline_acc - 0.05, (
        "AimTS should be at least competitive with the best case-by-case baseline"
    )
    assert summary["AimTS"]["avg_rank"] <= min(
        v["avg_rank"] for k, v in summary.items() if k != "AimTS"
    ) + 1.0


@pytest.mark.benchmark(group="table1")
def test_table1_uea_archive(benchmark, aimts_model, uea_suite, finetune_config):
    """Table I (lower block): UEA-style multivariate suite."""

    def experiment():
        return run_case_by_case_comparison(
            aimts_model,
            _build_baselines(),
            uea_suite,
            finetune_config=finetune_config,
            baseline_pretrain_epochs=2,
        )

    comparison = run_once(benchmark, experiment)
    _report("Table I (UEA-style suite): representation learning methods", comparison)

    summary = comparison.summary
    best_baseline_acc = max(v["avg_acc"] for k, v in summary.items() if k != "AimTS")
    assert summary["AimTS"]["avg_acc"] >= best_baseline_acc - 0.05
