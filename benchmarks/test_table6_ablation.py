"""Table VI — ablation study of the AimTS components.

Four variants are pre-trained on the same corpus and evaluated on the same
downstream suite:

1. ``w/ inter-prototype``      — prototype loss only, without the intra term.
2. ``w/ prototype-based``      — full two-level prototype loss (inter + intra).
3. ``w/ naive series-image``   — series-image loss without the geodesic mixup.
4. ``w/ series-image``         — full series-image loss (naive + mixup).
5. ``AimTS``                   — everything combined (the full model).

Paper shape to reproduce: every component helps; the full model is the best,
each "complete" variant beats its reduced counterpart, and all variants remain
well above chance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_aimts_config, make_finetune_config, pretrain_aimts, print_table, run_once
from repro.evaluation import run_protocol

#: variant name -> AimTSConfig overrides
ABLATION_VARIANTS = {
    "w/ inter-prototype contrastive learning": dict(use_series_image_loss=False, use_intra_loss=False),
    "w/ prototype-based contrastive learning": dict(use_series_image_loss=False, use_intra_loss=True),
    "w/ naive series-image contrastive learning": dict(use_prototype_loss=False, mixup_mode="none"),
    "w/ series-image contrastive learning": dict(use_prototype_loss=False, mixup_mode="geodesic"),
    "AimTS": dict(),
}


@pytest.mark.benchmark(group="table6")
def test_table6_component_ablation(benchmark, ucr_suite):
    finetune = make_finetune_config()
    evaluation_suite = ucr_suite[:6]

    def experiment():
        scores = {}
        for variant, overrides in ABLATION_VARIANTS.items():
            model = pretrain_aimts(make_aimts_config(**overrides), max_samples=120)
            comparison = run_protocol(
                model, evaluation_suite, protocol="multi_source", finetune_config=finetune
            )
            accuracies = comparison.accuracies[model.name]
            scores[variant] = sum(accuracies.values()) / len(accuracies)
        return scores

    scores = run_once(benchmark, experiment)
    print_table(
        "Table VI: ablation study (Avg. ACC on the UCR-style suite)",
        ["Variant", "Avg. ACC"],
        [[variant, value] for variant, value in scores.items()],
    )

    full = scores["AimTS"]
    # the full model is at least as good as every reduced variant (small tolerance)
    for variant, value in scores.items():
        assert full >= value - 0.05, f"full AimTS should not be clearly worse than {variant}"
    # adding the intra-prototype term should not hurt the inter-only variant
    assert (
        scores["w/ prototype-based contrastive learning"]
        >= scores["w/ inter-prototype contrastive learning"] - 0.05
    )
    # adding the geodesic mixup should not hurt the naive series-image variant
    assert (
        scores["w/ series-image contrastive learning"]
        >= scores["w/ naive series-image contrastive learning"] - 0.05
    )
    # every ablation variant must remain well above chance (suites have 2-5 classes)
    assert all(value > 0.45 for value in scores.values())
