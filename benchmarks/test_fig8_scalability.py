"""Fig. 8(a)(b)(c) — scalability with data size, series length and model size.

The paper fine-tunes AimTS on SleepEEG while varying (a) the number of
fine-tuning samples, (b) the time-series length and (c) the encoder parameter
count, and reports memory and total time.

Shape to reproduce: memory and time grow (roughly linearly/monotonically) with
each factor, and accuracy never collapses as the workload grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, run_once
from repro.core.config import FineTuneConfig
from repro.data.archives import make_dataset
from repro.encoders import TSEncoder
from repro.evaluation.efficiency import scalability_sweep

FINETUNE = FineTuneConfig(epochs=3, batch_size=8, seed=3407)


def _sleepeeg_like(n_train: int, length: int) -> "make_dataset":
    return make_dataset(
        f"sleepeeg_{n_train}_{length}",
        "eeg",
        n_classes=3,
        n_train=n_train,
        n_test=24,
        length=length,
        n_variables=1,
        seed=3407,
    )


def _monotone_fraction(values) -> float:
    """Fraction of consecutive steps that do not decrease."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return 1.0
    return float(np.mean(np.diff(values) >= -1e-9))


@pytest.mark.benchmark(group="fig8_scalability")
def test_fig8a_data_size_scaling(benchmark):
    sizes = [16, 32, 64, 96]

    def experiment():
        return scalability_sweep(
            lambda: TSEncoder(hidden_channels=12, repr_dim=24, depth=2, rng=3407),
            lambda n: _sleepeeg_like(n, 96),
            sizes,
            vary="data_size",
            finetune_config=FINETUNE,
        )

    rows = run_once(benchmark, experiment)
    print_table(
        "Fig. 8(a): scalability w.r.t. fine-tuning data size",
        ["Data size", "Total time (s)", "Memory (MB)", "Accuracy"],
        [[r["value"], r["total_seconds"], r["memory_mb"], r["accuracy"]] for r in rows],
    )
    times = [r["total_seconds"] for r in rows]
    assert _monotone_fraction(times) >= 0.67, "total time should grow with the data size"
    assert times[-1] > times[0]


@pytest.mark.benchmark(group="fig8_scalability")
def test_fig8b_series_length_scaling(benchmark):
    lengths = [48, 96, 192, 288]

    def experiment():
        return scalability_sweep(
            lambda: TSEncoder(hidden_channels=12, repr_dim=24, depth=2, rng=3407),
            lambda length: _sleepeeg_like(32, length),
            lengths,
            vary="series_length",
            finetune_config=FINETUNE,
        )

    rows = run_once(benchmark, experiment)
    print_table(
        "Fig. 8(b): scalability w.r.t. time-series length",
        ["Length", "Total time (s)", "Memory (MB)", "Accuracy"],
        [[r["value"], r["total_seconds"], r["memory_mb"], r["accuracy"]] for r in rows],
    )
    times = [r["total_seconds"] for r in rows]
    memories = [r["memory_mb"] for r in rows]
    assert times[-1] > times[0], "longer series must take longer"
    assert _monotone_fraction(memories) == 1.0, "activation memory grows linearly with length"


@pytest.mark.benchmark(group="fig8_scalability")
def test_fig8c_model_size_scaling(benchmark):
    hidden_sizes = [8, 16, 32, 48]

    def experiment():
        return scalability_sweep(
            lambda hidden: TSEncoder(hidden_channels=hidden, repr_dim=24, depth=2, rng=3407),
            lambda hidden: _sleepeeg_like(32, 96),
            hidden_sizes,
            vary="hidden_channels",
            finetune_config=FINETUNE,
        )

    rows = run_once(benchmark, experiment)
    print_table(
        "Fig. 8(c): scalability w.r.t. model parameters",
        ["Hidden width", "Parameters", "Total time (s)", "Memory (MB)"],
        [[r["value"], r["parameters"], r["total_seconds"], r["memory_mb"]] for r in rows],
    )
    parameters = [r["parameters"] for r in rows]
    times = [r["total_seconds"] for r in rows]
    assert _monotone_fraction(parameters) == 1.0
    assert times[-1] > times[0], "bigger models must take longer"
