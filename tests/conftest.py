"""Shared fixtures for the AimTS reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AimTSConfig, FineTuneConfig
from repro.data.archives import make_dataset
from repro.utils.seeding import seed_everything


@pytest.fixture(autouse=True)
def _seed_everything():
    """Make every test deterministic regardless of execution order."""
    seed_everything(3407)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A per-test NumPy generator."""
    return np.random.default_rng(0)


@pytest.fixture
def tiny_config() -> AimTSConfig:
    """A minimal AimTS configuration used by the slower integration tests."""
    return AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=1,
        panel_size=16,
        series_length=48,
        batch_size=8,
        epochs=1,
        seed=0,
    )


@pytest.fixture
def tiny_finetune_config() -> FineTuneConfig:
    """A minimal fine-tuning configuration."""
    return FineTuneConfig(epochs=3, batch_size=8, classifier_hidden_dim=16, seed=0)


@pytest.fixture
def small_dataset():
    """A small but learnable two-class univariate dataset."""
    return make_dataset(
        "unit_ecg", "ecg", n_classes=2, n_train=16, n_test=24, length=48, n_variables=1, seed=0
    )


@pytest.fixture
def small_multivariate_dataset():
    """A small three-variable, three-class dataset."""
    return make_dataset(
        "unit_motion", "motion", n_classes=3, n_train=18, n_test=24, length=48, n_variables=3, seed=1
    )
