"""Tests for the geodesic mixup strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mixup import geodesic_mixup, linear_mixup, sample_mixup_coefficients
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def _unit_rows(rng, n, d):
    x = rng.normal(size=(n, d))
    return x / np.linalg.norm(x, axis=1, keepdims=True)


class TestMixupCoefficients:
    def test_range_and_count(self):
        lam = sample_mixup_coefficients(100, gamma=0.1, seed=0)
        assert lam.shape == (100,)
        assert np.all((lam >= 0) & (lam <= 1))

    def test_small_gamma_pushes_to_extremes(self):
        lam = sample_mixup_coefficients(2000, gamma=0.1, seed=0)
        extreme_fraction = ((lam < 0.1) | (lam > 0.9)).mean()
        assert extreme_fraction > 0.6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_mixup_coefficients(0)
        with pytest.raises(ValueError):
            sample_mixup_coefficients(10, gamma=0.0)

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(
            sample_mixup_coefficients(10, seed=5), sample_mixup_coefficients(10, seed=5)
        )


class TestGeodesicMixup:
    def test_result_is_on_unit_sphere(self, rng):
        u = Tensor(_unit_rows(rng, 6, 8))
        v = Tensor(_unit_rows(rng, 6, 8))
        lam = sample_mixup_coefficients(6, seed=0)
        mixed = geodesic_mixup(u, v, lam)
        np.testing.assert_allclose(np.linalg.norm(mixed.data, axis=1), np.ones(6), atol=1e-9)

    def test_lambda_one_returns_u(self, rng):
        u = Tensor(_unit_rows(rng, 4, 8))
        v = Tensor(_unit_rows(rng, 4, 8))
        mixed = geodesic_mixup(u, v, 1.0)
        np.testing.assert_allclose(mixed.data, u.data, atol=1e-6)

    def test_lambda_zero_returns_v(self, rng):
        u = Tensor(_unit_rows(rng, 4, 8))
        v = Tensor(_unit_rows(rng, 4, 8))
        mixed = geodesic_mixup(u, v, 0.0)
        np.testing.assert_allclose(mixed.data, v.data, atol=1e-6)

    def test_midpoint_lies_between(self, rng):
        u = Tensor(_unit_rows(rng, 5, 8))
        v = Tensor(_unit_rows(rng, 5, 8))
        mixed = geodesic_mixup(u, v, 0.5)
        sim_u = (mixed.data * u.data).sum(axis=1)
        sim_v = (mixed.data * v.data).sum(axis=1)
        sim_uv = (u.data * v.data).sum(axis=1)
        assert np.all(sim_u > sim_uv - 1e-9)
        assert np.all(sim_v > sim_uv - 1e-9)
        np.testing.assert_allclose(sim_u, sim_v, atol=1e-9)

    def test_degenerate_identical_inputs(self, rng):
        u = Tensor(_unit_rows(rng, 3, 8))
        mixed = geodesic_mixup(u, u, 0.3)
        np.testing.assert_allclose(mixed.data, u.data, atol=1e-6)

    def test_non_normalised_inputs_are_handled(self, rng):
        u = Tensor(rng.normal(size=(3, 8)) * 10)
        v = Tensor(rng.normal(size=(3, 8)) * 0.1)
        mixed = geodesic_mixup(u, v, 0.5)
        np.testing.assert_allclose(np.linalg.norm(mixed.data, axis=1), np.ones(3), atol=1e-9)

    def test_rejects_wrong_lambda_count(self, rng):
        u = Tensor(_unit_rows(rng, 4, 8))
        v = Tensor(_unit_rows(rng, 4, 8))
        with pytest.raises(ValueError):
            geodesic_mixup(u, v, np.array([0.1, 0.2, 0.3]))

    def test_gradient_flows_to_both_inputs(self, rng):
        u = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        v = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        mixed = geodesic_mixup(u, v, 0.5)
        (mixed * mixed).sum().backward()
        assert u.grad is not None and v.grad is not None


class TestLinearMixup:
    def test_also_unit_norm_after_renormalisation(self, rng):
        u = Tensor(_unit_rows(rng, 4, 6))
        v = Tensor(_unit_rows(rng, 4, 6))
        mixed = linear_mixup(u, v, 0.3)
        np.testing.assert_allclose(np.linalg.norm(mixed.data, axis=1), np.ones(4), atol=1e-9)

    def test_geodesic_differs_from_linear_for_asymmetric_lambda(self, rng):
        # at lambda = 0.5 both strategies give the (renormalised) angular
        # bisector, so the comparison must use an asymmetric mixing ratio
        u = F.l2_normalize(Tensor(rng.normal(size=(5, 16)))).detach()
        v = F.l2_normalize(Tensor(rng.normal(size=(5, 16)))).detach()
        geodesic = geodesic_mixup(u, v, 0.2).data
        linear = linear_mixup(u, v, 0.2).data
        assert np.abs(geodesic - linear).max() > 1e-4
