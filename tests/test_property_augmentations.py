"""Property-based tests for augmentations, imaging and core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.augmentations import Jitter, Permutation, Scaling, Slicing, TimeWarp, WindowWarp, default_bank
from repro.core.mixup import geodesic_mixup, sample_mixup_coefficients
from repro.core.prototypes import adaptive_temperatures, pairwise_view_distances
from repro.imaging import LineChartRenderer
from repro.nn.tensor import Tensor

finite = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False, width=64)
series_strategy = arrays(np.float64, shape=st.tuples(st.integers(1, 3), st.integers(16, 60)), elements=finite)


@settings(max_examples=25, deadline=None)
@given(series_strategy, st.integers(0, 10_000))
def test_every_augmentation_preserves_shape_and_finiteness(sample, seed):
    for augmentation_cls in (Jitter, Scaling, TimeWarp, Slicing, WindowWarp, Permutation):
        out = augmentation_cls(seed=seed)(sample)
        assert out.shape == sample.shape
        assert np.all(np.isfinite(out))


@settings(max_examples=25, deadline=None)
@given(series_strategy, st.integers(0, 10_000))
def test_permutation_preserves_value_multiset(sample, seed):
    out = Permutation(max_segments=4, seed=seed)(sample)
    np.testing.assert_allclose(np.sort(out, axis=1), np.sort(sample, axis=1), atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(series_strategy, st.integers(0, 10_000))
def test_scaling_preserves_sign_pattern_per_variable(sample, seed):
    out = Scaling(sigma=0.1, seed=seed)(sample)
    # a positive multiplicative factor preserves each variable's zero crossings
    for original_row, scaled_row in zip(sample, out):
        factor = scaled_row[np.argmax(np.abs(original_row))] / (original_row[np.argmax(np.abs(original_row))] + 1e-12)
        if factor > 0:
            assert np.all(np.sign(original_row) * np.sign(scaled_row) >= -1e-12)


@settings(max_examples=20, deadline=None)
@given(series_strategy)
def test_bank_views_shapes(sample):
    bank = default_bank(seed=0)
    batch = sample[None, :, :]
    views_a, views_b = bank.two_views(batch)
    assert views_a.shape == (len(bank),) + batch.shape
    assert views_b.shape == views_a.shape


@settings(max_examples=20, deadline=None)
@given(series_strategy)
def test_rendered_images_stay_in_unit_range(sample):
    image = LineChartRenderer(panel_size=16).render(sample)
    assert image.min() >= 0.0 and image.max() <= 1.0
    assert np.all(np.isfinite(image))


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, shape=(3, 2, 1, 12), elements=finite),
    st.floats(min_value=0.05, max_value=1.0),
)
def test_adaptive_temperatures_bounded_by_tau0_plus_one(views, tau0):
    distances = pairwise_view_distances(views)
    temperatures = adaptive_temperatures(distances, tau0=tau0)
    assert np.all(temperatures >= tau0 - 1e-9)
    assert np.all(temperatures <= tau0 + 1.0 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, shape=(4, 6), elements=st.floats(-3, 3, allow_nan=False, width=64)),
    arrays(np.float64, shape=(4, 6), elements=st.floats(-3, 3, allow_nan=False, width=64)),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_geodesic_mixup_always_unit_norm(u, v, lam):
    # degenerate all-zero rows are nudged so the normalisation is well defined
    u = u + 1e-3
    v = v - 1e-3
    mixed = geodesic_mixup(Tensor(u), Tensor(v), lam)
    np.testing.assert_allclose(np.linalg.norm(mixed.data, axis=1), np.ones(4), atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 200), st.floats(min_value=0.05, max_value=5.0))
def test_mixup_coefficients_always_valid(n, gamma):
    lam = sample_mixup_coefficients(n, gamma=gamma, seed=0)
    assert lam.shape == (n,)
    assert np.all((lam >= 0) & (lam <= 1))
