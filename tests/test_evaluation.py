"""Tests for metrics, statistical ranking, protocols and efficiency probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FineTuneConfig
from repro.data.archives import make_dataset
from repro.encoders import TSEncoder
from repro.evaluation import (
    ComparisonResult,
    accuracy_score,
    average_accuracy,
    average_rank,
    critical_difference,
    friedman_test,
    measure_finetune_efficiency,
    nemenyi_groups,
    num_top1,
    rank_matrix,
    render_cd_diagram,
    summarize_methods,
)
from repro.evaluation.efficiency import count_parameters, estimate_activation_bytes, scalability_sweep


@pytest.fixture
def toy_results():
    """Three methods over four datasets with a clear winner."""
    return {
        "Best": {"d1": 0.95, "d2": 0.90, "d3": 0.85, "d4": 0.99},
        "Middle": {"d1": 0.90, "d2": 0.85, "d3": 0.86, "d4": 0.90},
        "Worst": {"d1": 0.50, "d2": 0.55, "d3": 0.60, "d4": 0.65},
    }


class TestMetrics:
    def test_accuracy_score(self):
        assert accuracy_score(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy_score(np.array([0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_average_accuracy(self, toy_results):
        avg = average_accuracy(toy_results)
        assert avg["Best"] == pytest.approx(0.9225)
        assert avg["Best"] > avg["Middle"] > avg["Worst"]

    def test_average_rank(self, toy_results):
        rank = average_rank(toy_results)
        assert rank["Best"] < rank["Middle"] < rank["Worst"]
        assert rank["Worst"] == pytest.approx(3.0)

    def test_average_rank_handles_ties(self):
        results = {"A": {"d1": 0.9, "d2": 0.8}, "B": {"d1": 0.9, "d2": 0.7}}
        rank = average_rank(results)
        assert rank["A"] == pytest.approx(1.25)
        assert rank["B"] == pytest.approx(1.75)

    def test_num_top1_excludes_ties(self):
        results = {
            "A": {"d1": 0.9, "d2": 0.8, "d3": 0.7},
            "B": {"d1": 0.9, "d2": 0.7, "d3": 0.6},
        }
        top1 = num_top1(results)
        assert top1["A"] == 2  # d1 is a tie, d2 and d3 are sole wins
        assert top1["B"] == 0

    def test_only_common_datasets_are_used(self):
        results = {"A": {"d1": 0.9, "d2": 0.8}, "B": {"d1": 0.5}}
        assert average_accuracy(results) == {"A": 0.9, "B": 0.5}

    def test_no_common_datasets_raises(self):
        with pytest.raises(ValueError):
            average_accuracy({"A": {"d1": 0.9}, "B": {"d2": 0.5}})

    def test_summarize_methods_keys(self, toy_results):
        summary = summarize_methods(toy_results)
        assert set(summary["Best"]) == {"avg_acc", "avg_rank", "num_top1"}


class TestRanking:
    def test_rank_matrix_shape(self, toy_results):
        methods, ranks = rank_matrix(toy_results)
        assert len(methods) == 3 and ranks.shape == (3, 4)
        np.testing.assert_allclose(ranks.sum(axis=0), np.full(4, 6.0))  # 1+2+3 per dataset

    def test_friedman_test_detects_differences(self, toy_results):
        outcome = friedman_test(toy_results)
        assert outcome["p_value"] < 0.1

    def test_friedman_two_methods_falls_back_to_wilcoxon(self):
        results = {
            "A": {f"d{i}": 0.9 - 0.01 * i for i in range(8)},
            "B": {f"d{i}": 0.7 - 0.01 * i for i in range(8)},
        }
        outcome = friedman_test(results)
        assert 0.0 <= outcome["p_value"] <= 1.0

    def test_critical_difference_grows_with_methods(self):
        assert critical_difference(8, 30) > critical_difference(3, 30)
        assert critical_difference(3, 10) > critical_difference(3, 100)
        with pytest.raises(ValueError):
            critical_difference(1, 10)
        with pytest.raises(ValueError):
            critical_difference(3, 10, alpha=0.01)

    def test_critical_difference_matches_demsar_table(self):
        # Demsar (2006): for k=8 methods and N=125 datasets CD ~ 0.94
        assert critical_difference(8, 125) == pytest.approx(0.94, abs=0.02)

    def test_nemenyi_groups_structure(self, toy_results):
        analysis = nemenyi_groups(toy_results)
        assert set(analysis) == {"average_ranks", "critical_difference", "groups"}
        assert analysis["critical_difference"] > 0

    def test_render_cd_diagram_contains_all_methods(self, toy_results):
        diagram = render_cd_diagram(toy_results)
        for method in toy_results:
            assert method in diagram
        assert "Critical difference" in diagram

    def test_rank_matrix_needs_two_datasets(self):
        with pytest.raises(ValueError):
            rank_matrix({"A": {"d1": 0.9}, "B": {"d1": 0.8}})


class TestComparisonResult:
    def test_summary_computed_automatically(self, toy_results):
        comparison = ComparisonResult(toy_results)
        assert comparison.best_method() == "Best"
        assert comparison.summary["Best"]["avg_acc"] > comparison.summary["Worst"]["avg_acc"]


class TestEfficiency:
    def test_count_parameters_matches_module(self):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        assert count_parameters(encoder) == encoder.num_parameters()

    def test_activation_estimate_scales_with_batch_and_length(self):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        small = estimate_activation_bytes(encoder, batch_size=4, n_variables=1, length=50)
        bigger_batch = estimate_activation_bytes(encoder, batch_size=8, n_variables=1, length=50)
        longer = estimate_activation_bytes(encoder, batch_size=4, n_variables=1, length=100)
        assert bigger_batch == 2 * small
        assert longer == 2 * small

    def test_measure_finetune_efficiency_report(self):
        dataset = make_dataset("eff", "ecg", n_classes=2, n_train=12, n_test=12, length=48, seed=0)
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        report = measure_finetune_efficiency(
            encoder, dataset, method="unit", finetune_config=FineTuneConfig(epochs=2, seed=0)
        )
        assert report.total_seconds > 0
        assert report.parameter_count > 0
        assert report.memory_megabytes > 0
        assert 0.0 <= report.accuracy <= 1.0

    def test_scalability_sweep_rows(self):
        def dataset_factory(value):
            return make_dataset(
                f"sweep_{value}", "ecg", n_classes=2, n_train=value, n_test=8, length=32, seed=0
            )

        rows = scalability_sweep(
            lambda: TSEncoder(hidden_channels=6, repr_dim=8, depth=1, rng=0),
            dataset_factory,
            [8, 16],
            vary="data_size",
            finetune_config=FineTuneConfig(epochs=1, seed=0),
        )
        assert len(rows) == 2
        assert rows[0]["vary"] == "data_size"
        assert all("total_seconds" in row for row in rows)
