"""Tests for the AimTS contrastive losses (Eqs. 4-12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import (
    inter_prototype_loss,
    intra_prototype_loss,
    prototype_loss,
    series_image_loss,
    series_image_mixup_loss,
    series_image_naive_loss,
)
from repro.core.mixup import geodesic_mixup
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def _unit(rng, *shape):
    x = rng.normal(size=shape)
    return x / np.linalg.norm(x, axis=-1, keepdims=True)


def _fixed_temperatures(B, G, tau=0.2):
    return np.full((B, G, G), tau)


class TestIntraPrototypeLoss:
    def test_scalar_and_finite(self, rng):
        views_a = Tensor(_unit(rng, 4, 5, 8), requires_grad=True)
        views_b = Tensor(_unit(rng, 4, 5, 8), requires_grad=True)
        loss = intra_prototype_loss(views_a, views_b, _fixed_temperatures(4, 5))
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_gradient_flows(self, rng):
        views_a = Tensor(_unit(rng, 3, 4, 8), requires_grad=True)
        views_b = Tensor(_unit(rng, 3, 4, 8), requires_grad=True)
        intra_prototype_loss(views_a, views_b, _fixed_temperatures(3, 4)).backward()
        assert views_a.grad is not None and views_b.grad is not None

    def test_aligned_views_give_lower_loss_than_random(self, rng):
        aligned = _unit(rng, 4, 5, 8)
        views_a = Tensor(aligned)
        views_b = Tensor(aligned)  # positive pairs perfectly aligned
        random_b = Tensor(_unit(rng, 4, 5, 8))
        temperatures = _fixed_temperatures(4, 5)
        aligned_loss = intra_prototype_loss(views_a, views_b, temperatures).item()
        random_loss = intra_prototype_loss(views_a, random_b, temperatures).item()
        assert aligned_loss < random_loss

    def test_temperature_shape_validation(self, rng):
        views = Tensor(_unit(rng, 2, 3, 4))
        with pytest.raises(ValueError):
            intra_prototype_loss(views, views, np.ones((2, 4, 4)))

    def test_shape_mismatch_rejected(self, rng):
        a = Tensor(_unit(rng, 2, 3, 4))
        b = Tensor(_unit(rng, 2, 4, 4))
        with pytest.raises(ValueError):
            intra_prototype_loss(a, b, _fixed_temperatures(2, 3))

    def test_higher_temperature_weakens_negative_separation(self, rng):
        views_a = Tensor(_unit(rng, 3, 4, 8))
        views_b = Tensor(_unit(rng, 3, 4, 8))
        sharp = intra_prototype_loss(views_a, views_b, _fixed_temperatures(3, 4, tau=0.1)).item()
        smooth = intra_prototype_loss(views_a, views_b, _fixed_temperatures(3, 4, tau=1.0)).item()
        assert sharp != pytest.approx(smooth)


class TestInterPrototypeLoss:
    def test_positive_alignment_reduces_loss(self, rng):
        aligned = _unit(rng, 6, 8)
        loss_aligned = inter_prototype_loss(Tensor(aligned), Tensor(aligned)).item()
        loss_random = inter_prototype_loss(Tensor(aligned), Tensor(_unit(rng, 6, 8))).item()
        assert loss_aligned < loss_random

    def test_gradient_flows(self, rng):
        a = Tensor(_unit(rng, 4, 8), requires_grad=True)
        b = Tensor(_unit(rng, 4, 8), requires_grad=True)
        inter_prototype_loss(a, b).backward()
        assert a.grad is not None and b.grad is not None

    def test_loss_is_bounded_below_by_zero_ish(self, rng):
        # InfoNCE with B-1 negatives can approach 0 only when positives dominate
        a = Tensor(_unit(rng, 4, 8))
        assert inter_prototype_loss(a, a).item() > 0

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            inter_prototype_loss(Tensor(_unit(rng, 4, 8)), Tensor(_unit(rng, 5, 8)))
        with pytest.raises(ValueError):
            inter_prototype_loss(Tensor(_unit(rng, 4, 8)), Tensor(_unit(rng, 4, 8)), tau=0.0)


class TestPrototypeLoss:
    def test_alpha_interpolates_between_terms(self, rng):
        views_a = Tensor(_unit(rng, 3, 4, 8))
        views_b = Tensor(_unit(rng, 3, 4, 8))
        prototypes_a = Tensor(_unit(rng, 3, 8))
        prototypes_b = Tensor(_unit(rng, 3, 8))
        temperatures = _fixed_temperatures(3, 4)
        inter_only = prototype_loss(
            views_a, views_b, prototypes_a, prototypes_b, temperatures, alpha=1.0
        ).item()
        pure_inter = inter_prototype_loss(prototypes_a, prototypes_b).item()
        assert inter_only == pytest.approx(pure_inter, rel=1e-9)

    def test_use_intra_false_matches_inter_only(self, rng):
        views = Tensor(_unit(rng, 3, 4, 8))
        prototypes_a = Tensor(_unit(rng, 3, 8))
        prototypes_b = Tensor(_unit(rng, 3, 8))
        loss = prototype_loss(
            views, views, prototypes_a, prototypes_b, _fixed_temperatures(3, 4), alpha=0.3, use_intra=False
        ).item()
        assert loss == pytest.approx(inter_prototype_loss(prototypes_a, prototypes_b).item())


class TestSeriesImageLosses:
    def test_naive_loss_prefers_alignment(self, rng):
        series = _unit(rng, 5, 8)
        aligned = series_image_naive_loss(Tensor(series), Tensor(series)).item()
        random = series_image_naive_loss(Tensor(series), Tensor(_unit(rng, 5, 8))).item()
        assert aligned < random

    def test_naive_loss_symmetric_in_batch(self, rng):
        series = Tensor(_unit(rng, 4, 8))
        image = Tensor(_unit(rng, 4, 8))
        loss_1 = series_image_naive_loss(series, image).item()
        loss_2 = series_image_naive_loss(image, series).item()
        assert loss_1 == pytest.approx(loss_2, rel=1e-9)

    def test_mixup_loss_finite_and_differentiable(self, rng):
        series = Tensor(_unit(rng, 4, 8), requires_grad=True)
        image = Tensor(_unit(rng, 4, 8), requires_grad=True)
        mixed = geodesic_mixup(image, series, 0.5)
        loss = series_image_mixup_loss(series, image, mixed)
        assert np.isfinite(loss.item())
        loss.backward()
        assert series.grad is not None and image.grad is not None

    def test_combined_loss_modes(self, rng):
        series = Tensor(_unit(rng, 4, 8))
        image = Tensor(_unit(rng, 4, 8))
        for mode in ("geodesic", "linear", "none"):
            loss = series_image_loss(series, image, mixup_mode=mode, rng=0)
            assert np.isfinite(loss.item())
        with pytest.raises(ValueError):
            series_image_loss(series, image, mixup_mode="bogus")

    def test_combined_loss_beta_one_equals_naive(self, rng):
        series = Tensor(_unit(rng, 4, 8))
        image = Tensor(_unit(rng, 4, 8))
        combined = series_image_loss(series, image, beta=1.0, mixup_mode="geodesic", rng=0).item()
        naive = series_image_naive_loss(series, image).item()
        assert combined == pytest.approx(naive, rel=1e-9)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            series_image_naive_loss(Tensor(_unit(rng, 4, 8)), Tensor(_unit(rng, 5, 8)))
        with pytest.raises(ValueError):
            series_image_mixup_loss(
                Tensor(_unit(rng, 4, 8)), Tensor(_unit(rng, 4, 8)), Tensor(_unit(rng, 3, 8))
            )

    def test_training_signal_improves_alignment(self, rng):
        """A few gradient steps on the naive loss should increase positive-pair similarity."""
        from repro.nn import Adam
        from repro.nn.module import Parameter

        series = Parameter(rng.normal(size=(6, 8)))
        image = Parameter(rng.normal(size=(6, 8)))
        optimizer = Adam([series, image], lr=0.05)

        def positive_similarity():
            s = series.data / np.linalg.norm(series.data, axis=1, keepdims=True)
            i = image.data / np.linalg.norm(image.data, axis=1, keepdims=True)
            return float((s * i).sum(axis=1).mean())

        before = positive_similarity()
        for _ in range(30):
            optimizer.zero_grad()
            loss = series_image_naive_loss(
                F.l2_normalize(series, axis=-1), F.l2_normalize(image, axis=-1)
            )
            loss.backward()
            optimizer.step()
        assert positive_similarity() > before
