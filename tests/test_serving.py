"""Tier-1 smoke suite for ``repro.serving`` (the micro-batching front door).

Covers the ISSUE 6 serving contract: responses bit-identical to direct
``predict`` / ``predict_proba`` / ``encode``, the deadline trigger flushing a
lone queued request, hot ``reload`` under load losing nothing, and the
batcher/transport mechanics (size flush, group keying, slab reuse, drain on
close).  A fake deterministic clock drives the pure-batcher tests so nothing
here sleeps for correctness.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import load_estimator, make_estimator, serve
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.serving import (
    MicroBatcher,
    ModelServer,
    SampleSlab,
    ServerStats,
    SlabPool,
)


# --------------------------------------------------------------------------- #
# shared fitted model (expensive: pretrain + fine-tune once per module)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    from repro.data.archives import make_dataset
    from repro.utils.seeding import seed_everything

    seed_everything(3407)
    config = AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=1,
        panel_size=16,
        series_length=48,
        n_variables=1,
        batch_size=8,
        epochs=1,
        seed=3407,
    )
    dataset = make_dataset(
        "serving_unit", "ecg", n_classes=2, n_train=16, n_test=12, length=48, n_variables=1, seed=0
    )
    model = make_estimator("aimts", config=config)
    model.pretrain(np.random.default_rng(0).normal(size=(16, 1, 48)))
    model.fine_tune(dataset, FineTuneConfig(epochs=1, batch_size=8, seed=3407))
    path = model.save(tmp_path_factory.mktemp("bundle") / "served.npz")
    return path


@pytest.fixture(scope="module")
def test_X(bundle_path):
    return np.random.default_rng(7).normal(size=(12, 1, 48))


@pytest.fixture(scope="module")
def direct(bundle_path, test_X):
    estimator = load_estimator(bundle_path)
    return {
        "predict": estimator.predict(test_X),
        "predict_proba": estimator.predict_proba(test_X),
        "encode": estimator.encode(test_X),
    }


# --------------------------------------------------------------------------- #
# micro-batcher mechanics (fake clock, no server)
# --------------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestMicroBatcher:
    def test_size_trigger_seals_at_max_batch(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch=3, max_wait_s=10.0, clock=clock)
        key = ("proba", (1, 8), "float64")
        for _ in range(3):
            batcher.submit(key, "predict", np.zeros((1, 8)))
        batch = batcher.next_batch()
        assert batch.trigger == "size"
        assert len(batch.requests) == 3
        assert batcher.stats.get("size_flushes") == 1

    def test_deadline_trigger_flushes_single_request(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch=256, max_wait_s=0.002, clock=clock)
        request = batcher.submit(("proba", (1, 8), "float64"), "predict", np.zeros((1, 8)))
        clock.now = 0.01  # past the deadline: next_batch seals without help
        batch = batcher.next_batch()
        assert batch.trigger == "deadline"
        assert batch.requests == [request]
        assert batcher.stats.get("deadline_flushes") == 1

    def test_group_key_separates_shapes_and_ops(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch=2, max_wait_s=10.0, clock=clock)
        batcher.submit(("proba", (1, 8), "float64"), "predict", np.zeros((1, 8)))
        batcher.submit(("encode", (1, 8), "float64"), "encode", np.zeros((1, 8)))
        batcher.submit(("proba", (2, 8), "float64"), "predict", np.zeros((2, 8)))
        assert batcher.pending_count() == 3
        batcher.submit(("proba", (1, 8), "float64"), "predict_proba", np.ones((1, 8)))
        batch = batcher.next_batch()  # only the (proba, (1,8)) group reached size 2
        assert batch.key == ("proba", (1, 8), "float64")
        assert [request.op for request in batch.requests] == ["predict", "predict_proba"]

    def test_batch_materializes_in_submission_order(self):
        clock = FakeClock()
        pool = SlabPool(2)
        batcher = MicroBatcher(max_batch=4, max_wait_s=10.0, slab_pool=pool, clock=clock)
        key = ("proba", (1, 4), "float64")
        samples = [np.full((1, 4), float(i)) for i in range(4)]
        for sample in samples:
            batcher.submit(key, "predict", sample)
        batch = batcher.next_batch()
        X = batch.materialize()
        np.testing.assert_array_equal(X, np.stack(samples))
        batch.release(pool)
        pool.close()

    def test_close_drains_pending_and_rejects_new(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch=256, max_wait_s=10.0, clock=clock)
        batcher.submit(("proba", (1, 8), "float64"), "predict", np.zeros((1, 8)))
        batcher.close()
        batch = batcher.next_batch()
        assert batch.trigger == "drain"
        assert len(batch.requests) == 1
        assert batcher.next_batch() is None  # closed + drained
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(("proba", (1, 8), "float64"), "predict", np.zeros((1, 8)))

    def test_worker_blocks_until_deadline_with_real_clock(self):
        # the one timed test: a lone request must come back within ~max_wait
        batcher = MicroBatcher(max_batch=256, max_wait_s=0.01)
        result = {}

        def worker():
            result["batch"] = batcher.next_batch()

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        batcher.submit(("proba", (1, 8), "float64"), "predict", np.zeros((1, 8)))
        thread.join(timeout=5.0)
        assert result["batch"] is not None
        assert result["batch"].trigger == "deadline"


# --------------------------------------------------------------------------- #
# slab transport
# --------------------------------------------------------------------------- #
class TestSlabTransport:
    def test_contiguous_appends_form_one_batch_view(self):
        slab = SampleSlab()
        samples = [np.full((2, 8), float(i)) for i in range(3)]
        descriptors = [slab.append(s, capacity_samples=4) for s in samples]
        assert all(d is not None for d in descriptors)
        batch = slab.batch_view(descriptors)
        assert batch is not None and batch.shape == (3, 2, 8)
        np.testing.assert_array_equal(batch, np.stack(samples))
        slab.close()

    def test_heterogeneous_descriptors_fall_back_to_none(self):
        slab = SampleSlab()
        a = slab.append(np.zeros((2, 8)), capacity_samples=4)
        b = slab.append(np.zeros((2, 8), dtype=np.float32), capacity_samples=4)
        assert slab.batch_view([a, b]) is None
        slab.close()

    def test_recycled_slab_reuses_storage(self):
        slab = SampleSlab()
        slab.append(np.zeros((2, 8)), capacity_samples=4)
        capacity = slab._arena.capacity
        slab.recycle()
        slab.append(np.ones((2, 8)), capacity_samples=4)
        assert slab._arena.capacity == capacity  # no regrow for like-sized batch
        slab.close()

    def test_pool_bounds_and_recycles(self):
        pool = SlabPool(1)
        first = pool.try_acquire()
        assert first is not None
        assert pool.try_acquire() is None  # exhausted: caller falls back to copies
        pool.release(first)
        assert pool.try_acquire() is first
        pool.release(first)
        pool.close()
        assert pool.try_acquire() is None  # closed pools hand out nothing


# --------------------------------------------------------------------------- #
# the server itself, against a real fitted bundle
# --------------------------------------------------------------------------- #
class TestModelServer:
    def test_responses_bit_identical_to_direct_calls(self, bundle_path, test_X, direct):
        with ModelServer.from_bundle(
            bundle_path, max_batch=4, max_wait_ms=5.0, n_workers=2
        ) as server:
            futures = {
                op: [server.submit(x, op=op) for x in test_X]
                for op in ("predict", "predict_proba", "encode")
            }
            got_predict = np.asarray([f.result(timeout=60) for f in futures["predict"]])
            got_proba = np.stack([f.result(timeout=60) for f in futures["predict_proba"]])
            got_encode = np.stack([f.result(timeout=60) for f in futures["encode"]])
        assert np.array_equal(got_predict, direct["predict"])
        assert np.array_equal(got_proba, direct["predict_proba"])
        assert np.array_equal(got_encode, direct["encode"])

    def test_concurrent_submitters_stay_bit_identical(self, bundle_path, test_X, direct):
        with ModelServer.from_bundle(
            bundle_path, max_batch=8, max_wait_ms=2.0, n_workers=2
        ) as server:
            results: dict[int, np.ndarray] = {}
            lock = threading.Lock()

            def submitter(offset: int) -> None:
                for index in range(offset, len(test_X), 3):
                    value = server.submit(test_X[index], op="predict_proba").result(timeout=60)
                    with lock:
                        results[index] = value

            threads = [threading.Thread(target=submitter, args=(o,)) for o in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        got = np.stack([results[i] for i in range(len(test_X))])
        assert np.array_equal(got, direct["predict_proba"])

    def test_deadline_flush_fires_for_single_queued_request(self, bundle_path, test_X, direct):
        # max_batch far above 1: only the deadline can flush a lone request
        with ModelServer.from_bundle(
            bundle_path, max_batch=256, max_wait_ms=5.0, n_workers=1
        ) as server:
            value = server.submit(test_X[0], op="predict").result(timeout=60)
            stats = server.stats()
        assert value == direct["predict"][0]
        assert stats["deadline_flushes"] >= 1
        assert stats.get("size_flushes", 0) == 0

    def test_reload_mid_stream_loses_no_requests(self, bundle_path, test_X, direct):
        with ModelServer.from_bundle(
            bundle_path, max_batch=4, max_wait_ms=1.0, n_workers=2
        ) as server:
            stop = threading.Event()
            failures: list[str] = []
            completed = [0]

            def hammer() -> None:
                index = 0
                while not stop.is_set():
                    i = index % len(test_X)
                    value = server.submit(test_X[i], op="predict").result(timeout=60)
                    if value != direct["predict"][i]:
                        failures.append(f"request {i}: got {value}")
                    completed[0] += 1
                    index += 1

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for thread in threads:
                thread.start()
            for _ in range(3):  # swap the bundle repeatedly under live traffic
                server.reload(bundle_path)
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            stats = server.stats()
        assert not failures
        assert server.model_version == 3
        assert completed[0] > 0
        assert stats["responses"] == stats["requests"]  # zero dropped
        assert stats.get("errors", 0) == 0

    def test_close_answers_accepted_requests_and_is_idempotent(self, bundle_path, test_X):
        server = ModelServer.from_bundle(
            bundle_path, max_batch=256, max_wait_ms=50.0, n_workers=1
        ).start()
        futures = [server.submit(x, op="predict") for x in test_X[:4]]
        server.close()  # drain flush: all four must resolve
        assert all(f.result(timeout=60) is not None for f in futures)
        server.close()  # second close: silent no-op
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(test_X[0])

    def test_submit_validates_op_and_shape(self, bundle_path):
        with ModelServer.from_bundle(bundle_path, n_workers=1) as server:
            with pytest.raises(ValueError, match="unknown op"):
                server.submit(np.zeros((1, 48)), op="classify")
            with pytest.raises(ValueError, match="sample"):
                server.submit(np.zeros((2, 1, 48)))
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(np.zeros((1, 48)))

    def test_univariate_1d_sample_promoted(self, bundle_path, test_X, direct):
        with ModelServer.from_bundle(bundle_path, max_wait_ms=2.0, n_workers=1) as server:
            value = server.submit(test_X[0][0], op="predict").result(timeout=60)
        assert value == direct["predict"][0]

    def test_worker_error_scatters_to_futures_and_server_survives(self, bundle_path, test_X):
        with ModelServer.from_bundle(
            bundle_path, max_batch=2, max_wait_ms=2.0, n_workers=1
        ) as server:
            bad = server.submit(np.zeros((3, 48)), op="predict")  # wrong n_variables
            with pytest.raises(Exception):
                bad.result(timeout=60)
            good = server.submit(test_X[0], op="predict").result(timeout=60)
            assert good is not None
            assert server.stats().get("errors", 0) >= 1

    def test_api_serve_builds_started_server(self, bundle_path, test_X, direct):
        with serve(bundle_path, max_wait_ms=2.0, n_workers=1) as server:
            assert isinstance(server, ModelServer)
            assert np.array_equal(server.predict(test_X), direct["predict"])
        unstarted = serve(bundle_path, start=False, n_workers=1)
        with pytest.raises(RuntimeError, match="not running"):
            unstarted.submit(test_X[0])
        unstarted.close()


class TestServerStats:
    def test_counters_and_maxima(self):
        stats = ServerStats()
        stats.increment("requests")
        stats.increment("requests", 4)
        stats.observe_max("pending", 3)
        stats.observe_max("pending", 2)
        snapshot = stats.snapshot()
        assert snapshot["requests"] == 5
        assert snapshot["max_pending"] == 3
        assert stats.get("missing") == 0
