"""Tests for functional primitives: convolutions, pooling, losses, similarity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.test_nn_tensor import numerical_gradient


def _numeric_check(build_scalar, array, autograd_grad, tolerance=1e-5):
    numeric = numerical_gradient(build_scalar, array)
    np.testing.assert_allclose(autograd_grad, numeric, atol=tolerance, rtol=1e-4)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        probs = F.softmax(x, axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-9)

    def test_cross_entropy_value(self):
        logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-3

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((5, 4)))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_gradient(self, rng):
        logits = rng.normal(size=(6, 3))
        targets = rng.integers(0, 3, size=6)
        t = Tensor(logits, requires_grad=True)
        F.cross_entropy(t, targets).backward()
        _numeric_check(
            lambda: float(F.cross_entropy(Tensor(logits), targets).data), logits, t.grad
        )

    def test_cross_entropy_sum_reduction(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        targets = np.array([0, 1, 2, 0])
        mean = F.cross_entropy(logits, targets, reduction="mean").item()
        total = F.cross_entropy(logits, targets, reduction="sum").item()
        assert total == pytest.approx(mean * 4)

    def test_cross_entropy_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1]), reduction="bogus")

    def test_nll_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]])
        assert F.nll_accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestNormalisation:
    def test_l2_normalize_unit_norm(self, rng):
        x = Tensor(rng.normal(size=(5, 8)))
        norms = np.linalg.norm(F.l2_normalize(x).data, axis=-1)
        np.testing.assert_allclose(norms, np.ones(5), atol=1e-9)

    def test_l2_normalize_zero_vector_is_finite(self):
        x = Tensor(np.zeros((1, 4)))
        assert np.all(np.isfinite(F.l2_normalize(x).data))

    def test_cosine_similarity_matrix_range(self, rng):
        a = Tensor(rng.normal(size=(4, 6)))
        b = Tensor(rng.normal(size=(3, 6)))
        sims = F.cosine_similarity_matrix(a, b).data
        assert sims.shape == (4, 3)
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)

    def test_cosine_self_similarity_is_one(self, rng):
        a = Tensor(rng.normal(size=(3, 5)))
        sims = F.cosine_similarity_matrix(a, a).data
        np.testing.assert_allclose(np.diag(sims), np.ones(3), atol=1e-9)

    def test_mse_loss(self, rng):
        pred = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        target = rng.normal(size=(4, 3))
        loss = F.mse_loss(pred, target)
        assert loss.item() == pytest.approx(((pred.data - target) ** 2).mean())
        loss.backward()
        assert pred.grad.shape == (4, 3)


class TestConvolutions:
    @pytest.mark.parametrize("stride,padding,dilation", [(1, 0, 1), (2, 1, 1), (1, 2, 2), (2, 2, 3)])
    def test_conv1d_gradients(self, rng, stride, padding, dilation):
        x = rng.normal(size=(2, 2, 13))
        w = rng.normal(size=(3, 2, 3))
        b = rng.normal(size=(3,))
        tx, tw, tb = (Tensor(a, requires_grad=True) for a in (x, w, b))
        out = F.conv1d(tx, tw, tb, stride=stride, padding=padding, dilation=dilation)
        (out**2).sum().backward()

        def scalar():
            return float(
                (
                    F.conv1d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding, dilation=dilation).data
                    ** 2
                ).sum()
            )

        _numeric_check(scalar, x, tx.grad)
        _numeric_check(scalar, w, tw.grad)
        _numeric_check(scalar, b, tb.grad)

    def test_conv1d_output_length(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 20)))
        w = Tensor(rng.normal(size=(4, 1, 3)))
        out = F.conv1d(x, w, None, stride=1, padding=1)
        assert out.shape == (1, 4, 20)

    def test_conv1d_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(rng.normal(size=(1, 2, 10))), Tensor(rng.normal(size=(4, 3, 3))))

    def test_conv1d_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(rng.normal(size=(2, 10))), Tensor(rng.normal(size=(4, 2, 3))))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_conv2d_gradients(self, rng, stride, padding):
        x = rng.normal(size=(2, 2, 7, 7))
        w = rng.normal(size=(3, 2, 3, 3))
        tx, tw = Tensor(x, requires_grad=True), Tensor(w, requires_grad=True)
        out = F.conv2d(tx, tw, None, stride=stride, padding=padding)
        (out**2).sum().backward()

        def scalar():
            return float((F.conv2d(Tensor(x), Tensor(w), None, stride=stride, padding=padding).data ** 2).sum())

        _numeric_check(scalar, x, tx.grad, tolerance=1e-4)
        _numeric_check(scalar, w, tw.grad, tolerance=1e-4)

    def test_conv2d_matches_manual_single_pixel(self):
        x = Tensor(np.ones((1, 1, 3, 3)))
        w = Tensor(np.ones((1, 1, 3, 3)))
        out = F.conv2d(x, w, None)
        assert out.shape == (1, 1, 1, 1)
        assert out.item() == pytest.approx(9.0)


class TestPoolingAndDropout:
    def test_max_pool2d_values(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool2d_gradient(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        t = Tensor(x, requires_grad=True)
        (F.max_pool2d(t, 2) ** 2).sum().backward()
        _numeric_check(lambda: float((F.max_pool2d(Tensor(x), 2).data ** 2).sum()), x, t.grad)

    def test_adaptive_avg_pool1d_global(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 10)))
        out = F.adaptive_avg_pool1d(x, 1)
        np.testing.assert_allclose(out.data.squeeze(-1), x.data.mean(axis=2))

    def test_adaptive_avg_pool1d_multiple_bins(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 12)))
        assert F.adaptive_avg_pool1d(x, 4).shape == (2, 3, 4)

    def test_adaptive_avg_pool2d(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        assert F.adaptive_avg_pool2d(x, 1).shape == (2, 3, 1, 1)
        assert F.adaptive_avg_pool2d(x, 2).shape == (2, 3, 2, 2)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_train_scales_surviving_units(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.35 < (out.data > 0).mean() < 0.65

    def test_dropout_rejects_p_one(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True, rng=rng)
